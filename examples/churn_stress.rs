//! Churn stress test: sweep the per-round edge-churn probability from "almost
//! static" to "extremely dynamic" and compare the combined algorithm of
//! Corollary 1.2 against the restart-from-scratch strawman on identical
//! schedules. Also demonstrates asynchronous wake-up: half the nodes join
//! the network late.
//!
//! ```text
//! cargo run --release -p dynnet --example churn_stress
//! ```

use dynnet::core::output_churn_series;
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

fn main() {
    let n = 120;
    let window = recommended_window(n);
    let rounds = 5 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(5, "stress"));
    let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    // Half the nodes wake up only after one full window.
    let wake = RandomWakeup::new(n, window as u64, 31);

    println!("churn stress test: n = {n}, T = {window}, {rounds} rounds, asynchronous wake-up\n");
    println!(
        "{:>7} | {:>14} {:>14} {:>12} | {:>14} {:>12}",
        "churn", "combined valid", "combined churn", "max conflict", "restart valid", "restart churn"
    );

    for churn in [0.0, 0.005, 0.01, 0.02, 0.05, 0.10] {
        // Combined algorithm run (records the schedule).
        let mut adv = FlipChurnAdversary::new(&footprint, churn, 1000 + (churn * 1e4) as u64);
        let mut sim = Simulator::new(n, dynamic_coloring(window), wake.clone(), SimConfig::sequential(1));
        let record = run(&mut sim, &mut adv, rounds);
        let graphs: Vec<Graph> = record.trace.iter().collect();
        let outputs: Vec<Vec<Option<ColorOutput>>> =
            (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
        let combined = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, 2 * window);
        let combined_churn: usize = output_churn_series(&outputs, &nodes)[2 * window..].iter().sum();

        // Longest streak of rounds with a conflict on the current graph.
        let mut longest = 0usize;
        let mut cur = 0usize;
        for r in 2 * window..rounds {
            let g = record.graph_at(r);
            let out: Vec<ColorOutput> = outputs[r].iter().map(|o| o.unwrap_or(ColorOutput::Undecided)).collect();
            if dynnet::core::coloring::conflict_edges(&g, &out) > 0 {
                cur += 1;
                longest = longest.max(cur);
            } else {
                cur = 0;
            }
        }

        // Restart baseline on the identical schedule.
        let mut replay = ScriptedAdversary::new(record.trace.clone());
        let period = window as u64;
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| RestartColoring::new(v, period),
            wake.clone(),
            SimConfig::sequential(2),
        );
        let record_restart = run(&mut sim, &mut replay, rounds);
        let outputs_restart: Vec<Vec<Option<ColorOutput>>> =
            (0..rounds).map(|r| record_restart.outputs_at(r).to_vec()).collect();
        let restart =
            verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs_restart, window, 2 * window);
        let restart_churn: usize =
            output_churn_series(&outputs_restart, &nodes)[2 * window..].iter().sum();

        println!(
            "{:>6.1}% | {:>13.1}% {:>14} {:>12} | {:>13.1}% {:>12}",
            100.0 * churn,
            100.0 * combined.valid_fraction(),
            combined_churn,
            longest,
            100.0 * restart.valid_fraction(),
            restart_churn
        );
    }

    println!(
        "\n'valid' = fraction of rounds whose output is a T-dynamic coloring; \
         'churn' = total output changes in the steady state; \
         'max conflict' = longest streak of rounds with a conflict on the current graph (must stay < T = {window})."
    );
}
