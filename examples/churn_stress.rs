//! Churn stress test: sweep the per-round edge-churn probability from "almost
//! static" to "extremely dynamic" and compare the combined algorithm of
//! Corollary 1.2 against the restart-from-scratch strawman on identical
//! schedules. Also demonstrates asynchronous wake-up (half the nodes join the
//! network late) and a custom streaming `RoundObserver` (the conflict-streak
//! tracker below).
//!
//! ```text
//! cargo run --release -p dynnet --example churn_stress
//! ```

use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

/// Custom observer: longest streak of consecutive rounds (after `from`) with
/// at least one conflict on the current graph — Corollary 1.2 bounds this by
/// the window size `T`.
struct ConflictStreak {
    from: u64,
    current: usize,
    longest: usize,
}

impl ConflictStreak {
    fn new(from: usize) -> Self {
        ConflictStreak {
            from: from as u64,
            current: 0,
            longest: 0,
        }
    }
}

impl RoundObserver<ColorOutput> for ConflictStreak {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        if view.round < self.from {
            return;
        }
        let g = view.current_graph();
        let out: Vec<ColorOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        if dynnet::core::coloring::conflict_edges(g, &out) > 0 {
            self.current += 1;
            self.longest = self.longest.max(self.current);
        } else {
            self.current = 0;
        }
    }
}

fn main() {
    let n = 120;
    let window = recommended_window(n);
    let rounds = 5 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(5, "stress"));
    // Half the nodes wake up only after one full window.
    let wake = RandomWakeup::new(n, window as u64, 31);

    println!("churn stress test: n = {n}, T = {window}, {rounds} rounds, asynchronous wake-up\n");
    println!(
        "{:>7} | {:>14} {:>14} {:>12} | {:>14} {:>12}",
        "churn",
        "combined valid",
        "combined churn",
        "max conflict",
        "restart valid",
        "restart churn"
    );

    for churn in [0.0, 0.005, 0.01, 0.02, 0.05, 0.10] {
        // Combined algorithm run: verifier + churn stats + conflict-streak
        // tracker stream over the execution; only the graph sequence is
        // retained (as deltas) so the restart baseline can replay it.
        let mut verifier = TDynamicVerifier::new(ColoringProblem, window).check_from(2 * window);
        let mut churn_stats = ChurnStats::new();
        let mut streak = ConflictStreak::new(2 * window);
        let mut recorder = TraceRecorder::graphs_only();
        Scenario::new(n)
            .algorithm(dynamic_coloring(window))
            .adversary(FlipChurnAdversary::new(
                &footprint,
                churn,
                1000 + (churn * 1e4) as u64,
            ))
            .wakeup(wake.clone())
            .seed(1)
            .rounds(rounds)
            .run(&mut [&mut verifier, &mut churn_stats, &mut streak, &mut recorder]);
        let combined = verifier.into_summary();
        let combined_churn = churn_stats.total_from(2 * window);

        // Restart baseline on the identical schedule.
        let period = window as u64;
        let mut restart_verifier =
            TDynamicVerifier::new(ColoringProblem, window).check_from(2 * window);
        let mut restart_stats = ChurnStats::new();
        Scenario::new(n)
            .algorithm(move |v: NodeId| RestartColoring::new(v, period))
            .adversary(ScriptedAdversary::new(
                recorder.into_trace().expect("recorded trace"),
            ))
            .wakeup(wake.clone())
            .seed(2)
            .rounds(rounds)
            .run(&mut [&mut restart_verifier, &mut restart_stats]);
        let restart = restart_verifier.into_summary();
        let restart_churn = restart_stats.total_from(2 * window);

        println!(
            "{:>6.1}% | {:>13.1}% {:>14} {:>12} | {:>13.1}% {:>12}",
            100.0 * churn,
            100.0 * combined.valid_fraction(),
            combined_churn,
            streak.longest,
            100.0 * restart.valid_fraction(),
            restart_churn
        );
    }

    println!(
        "\n'valid' = fraction of rounds whose output is a T-dynamic coloring; \
         'churn' = total output changes in the steady state; \
         'max conflict' = longest streak of rounds with a conflict on the current graph (must stay < T = {window})."
    );
}
