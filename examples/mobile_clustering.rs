//! Mobile clustering with a dynamic MIS — the classic use of an MIS as a set
//! of cluster heads / monitoring nodes in a wireless ad-hoc network
//! (Section 1.2 of the paper). Every node is either a cluster head (MIS
//! member) or is dominated by one within the recent union graph, and cluster
//! heads in stable regions do not change even though the rest of the network
//! keeps moving.
//!
//! The cluster statistics are gathered by a custom sampling `RoundObserver`,
//! so nothing of the execution is materialized: memory stays O(window) for
//! the verifier plus O(n) for the sampler.
//!
//! ```text
//! cargo run --release -p dynnet --example mobile_clustering
//! ```

use dynnet::core::mis::mis_size;
use dynnet::prelude::*;

/// Samples cluster statistics every `stride` rounds (starting at `from`).
struct ClusterSampler {
    from: u64,
    stride: u64,
    prev_heads: Option<Vec<bool>>,
    rows: Vec<(u64, usize, usize, f64, usize)>,
}

impl RoundObserver<MisOutput> for ClusterSampler {
    fn on_round(&mut self, view: &RoundView<'_, MisOutput>) {
        if view.round < self.from || !(view.round - self.from).is_multiple_of(self.stride) {
            return;
        }
        let n = view.outputs.len();
        let heads: Vec<bool> = view
            .outputs
            .iter()
            .map(|o| o.map(|s| s.in_mis()).unwrap_or(false))
            .collect();
        let out: Vec<MisOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        let head_count = mis_size(&out);
        let changes = self
            .prev_heads
            .as_ref()
            .map(|prev| (0..n).filter(|&i| prev[i] != heads[i]).count())
            .unwrap_or(0);
        self.rows.push((
            view.round,
            view.graph.num_edges(),
            head_count,
            n as f64 / head_count.max(1) as f64,
            changes,
        ));
        self.prev_heads = Some(heads);
    }
}

fn main() {
    let n = 180;
    let window = recommended_window(n);
    let rounds = 6 * window;

    let mut verifier = TDynamicVerifier::new(MisProblem, window);
    let mut sampler = ClusterSampler {
        from: window as u64,
        stride: (window / 2) as u64,
        prev_heads: None,
        rows: Vec::new(),
    };

    Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(MobilityAdversary::new(
            MobilityConfig {
                n,
                radius: 0.15,
                min_speed: 0.001,
                max_speed: 0.008,
            },
            17,
        ))
        .seed(23)
        .rounds(rounds)
        .run(&mut [&mut verifier, &mut sampler]);

    println!("mobile clustering: n = {n}, T = {window}, {rounds} rounds\n");

    // Per-sampled-round cluster statistics.
    println!(
        "{:>6} {:>8} {:>14} {:>16} {:>14}",
        "round", "edges", "cluster heads", "avg cluster size", "head changes"
    );
    for (round, edges, heads, avg_size, changes) in &sampler.rows {
        println!("{round:>6} {edges:>8} {heads:>14} {avg_size:>16.2} {changes:>14}");
    }

    // The headline guarantee over the whole run.
    let summary = verifier.summary();
    println!(
        "\nT-dynamic MIS valid in {}/{} checked rounds ({})",
        summary.rounds_valid,
        summary.rounds_checked,
        if summary.all_valid() { "✓" } else { "✗" }
    );
    println!(
        "every node is always a cluster head or dominated by one within the last T = {window} rounds"
    );
}
