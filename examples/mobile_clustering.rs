//! Mobile clustering with a dynamic MIS — the classic use of an MIS as a set
//! of cluster heads / monitoring nodes in a wireless ad-hoc network
//! (Section 1.2 of the paper). Every node is either a cluster head (MIS
//! member) or is dominated by one within the recent union graph, and cluster
//! heads in stable regions do not change even though the rest of the network
//! keeps moving.
//!
//! ```text
//! cargo run --release -p dynnet --example mobile_clustering
//! ```

use dynnet::core::mis::mis_size;
use dynnet::prelude::*;

fn main() {
    let n = 180;
    let window = recommended_window(n);
    let rounds = 6 * window;

    let mut adversary = MobilityAdversary::new(
        MobilityConfig { n, radius: 0.15, min_speed: 0.001, max_speed: 0.008 },
        17,
    );

    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(23));
    let record = run(&mut sim, &mut adversary, rounds);

    println!("mobile clustering: n = {n}, T = {window}, {rounds} rounds\n");

    // Per-sampled-round cluster statistics.
    println!(
        "{:>6} {:>8} {:>14} {:>16} {:>14}",
        "round", "edges", "cluster heads", "avg cluster size", "head changes"
    );
    let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let mut prev_heads: Option<Vec<bool>> = None;
    for r in (window..rounds).step_by(window / 2) {
        let g = record.graph_at(r);
        let out: Vec<MisOutput> = record
            .outputs_at(r)
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        let heads: Vec<bool> = out.iter().map(|o| o.in_mis()).collect();
        let head_count = mis_size(&out);
        let changes = prev_heads
            .as_ref()
            .map(|prev| nodes.iter().filter(|v| prev[v.index()] != heads[v.index()]).count())
            .unwrap_or(0);
        println!(
            "{:>6} {:>8} {:>14} {:>16.2} {:>14}",
            r,
            g.num_edges(),
            head_count,
            n as f64 / head_count.max(1) as f64,
            changes
        );
        prev_heads = Some(heads);
    }

    // Verify the headline guarantee over the whole run.
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs: Vec<Vec<Option<MisOutput>>> =
        (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
    let summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);
    println!(
        "\nT-dynamic MIS valid in {}/{} checked rounds ({})",
        summary.rounds_valid,
        summary.rounds_checked,
        if summary.all_valid() { "✓" } else { "✗" }
    );
    println!(
        "every node is always a cluster head or dominated by one within the last T = {window} rounds"
    );
}
