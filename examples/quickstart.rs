//! Quickstart: run the combined dynamic (degree+1)-coloring of Corollary 1.2
//! on a churning random network and verify, round by round, that the output
//! is a T-dynamic solution.
//!
//! ```text
//! cargo run --release -p dynnet --example quickstart
//! ```

use dynnet::core::coloring::{conflict_edges, max_color_used};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

fn main() {
    // 1. A network of n potential nodes whose footprint is a random
    //    geometric graph; every footprint edge flips with 2% probability per
    //    round — topology changes happen in *every* round.
    let n = 200;
    let window = recommended_window(n);
    let footprint = generators::random_geometric(n, 0.12, &mut experiment_rng(1, "quickstart"));
    let mut adversary = FlipChurnAdversary::new(&footprint, 0.02, 42);
    println!("n = {n} nodes, footprint edges = {}, window T = {window}", footprint.num_edges());

    // 2. The combined algorithm of Corollary 1.2: Concat(SColor, DColor).
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(7));

    // 3. Drive it for a few windows against the adversary.
    let rounds = 4 * window;
    let record = run(&mut sim, &mut adversary, rounds);

    // 4. Verify the headline guarantee: from round T-1 on, every round's
    //    output is a T-dynamic coloring (proper on G^∩T, degree-bounded on G^∪T).
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs: Vec<Vec<Option<ColorOutput>>> =
        (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
    let summary = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, window - 1);
    println!(
        "rounds checked: {}, valid: {} ({})",
        summary.rounds_checked,
        summary.rounds_valid,
        if summary.all_valid() { "all rounds valid ✓" } else { "violations found ✗" }
    );

    // 5. Peek at the final round.
    let final_graph = record.graph_at(rounds - 1);
    let final_out: Vec<ColorOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    let undecided = final_out.iter().filter(|o| o.is_bottom()).count();
    println!(
        "final round: {} colors in use (max degree {}), {} conflicts on the current graph, {} undecided nodes",
        max_color_used(&final_out),
        final_graph.max_degree(),
        conflict_edges(&final_graph, &final_out),
        undecided
    );

    // 6. Total topology churn the algorithm had to absorb.
    println!(
        "total edge changes over {} rounds: {}",
        rounds,
        record.trace.total_edge_changes()
    );
}
