//! Quickstart: run the combined dynamic (degree+1)-coloring of Corollary 1.2
//! on a churning random network and verify, round by round, that the output
//! is a T-dynamic solution — all through the unified `Scenario` API with
//! streaming observers.
//!
//! ```text
//! cargo run --release -p dynnet --example quickstart
//! ```

use dynnet::core::coloring::{conflict_edges, max_color_used};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

fn main() {
    // 1. A network of n potential nodes whose footprint is a random
    //    geometric graph; every footprint edge flips with 2% probability per
    //    round — topology changes happen in *every* round.
    let n = 200;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let footprint = generators::random_geometric(n, 0.12, &mut experiment_rng(1, "quickstart"));
    println!(
        "n = {n} nodes, footprint edges = {}, window T = {window}",
        footprint.num_edges()
    );

    // 2. Observers: the streaming T-dynamic verifier (holds only O(window)
    //    graphs) and a graphs-only trace recorder (stores per-round deltas,
    //    so memory is proportional to topology change).
    let mut verifier = TDynamicVerifier::new(ColoringProblem, window);
    let mut recorder = TraceRecorder::graphs_only();

    // 3. One Scenario wires the whole execution: the combined algorithm of
    //    Corollary 1.2 (Concat(SColor, DColor)), the churn adversary, the
    //    wake-up schedule, the seed, and the round budget.
    let runner = Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.02, 42))
        .wakeup(AllAtStart)
        .seed(7)
        .rounds(rounds)
        .run(&mut [&mut verifier, &mut recorder]);

    // 4. The headline guarantee: from round T-1 on, every round's output is
    //    a T-dynamic coloring (proper on G^∩T, degree-bounded on G^∪T).
    let summary = verifier.summary();
    println!(
        "rounds checked: {}, valid: {} ({})",
        summary.rounds_checked,
        summary.rounds_valid,
        if summary.all_valid() {
            "all rounds valid ✓"
        } else {
            "violations found ✗"
        }
    );

    // 5. Peek at the final round.
    let trace = recorder.into_trace().expect("recorded trace");
    let final_graph = trace.graph_at(rounds - 1);
    let final_out: Vec<ColorOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    let undecided = final_out.iter().filter(|o| o.is_bottom()).count();
    println!(
        "final round: {} colors in use (max degree {}), {} conflicts on the current graph, {} undecided nodes",
        max_color_used(&final_out),
        final_graph.max_degree(),
        conflict_edges(&final_graph, &final_out),
        undecided
    );

    // 6. Total topology churn the algorithm had to absorb.
    println!(
        "total edge changes over {} rounds: {}",
        rounds,
        trace.total_edge_changes()
    );
}
