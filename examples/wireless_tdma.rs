//! Wireless TDMA slot assignment — the paper's motivating application for
//! vertex coloring (Section 1.2): mobile nodes in the plane coordinate
//! access to a shared radio channel by transmitting in the slot given by
//! their current color. The dynamic coloring keeps the slot assignment
//! almost-always collision free even though links appear and disappear every
//! round; the residual collisions are handled by the simple randomized
//! contention-resolution strategy from the paper.
//!
//! ```text
//! cargo run --release -p dynnet --example wireless_tdma
//! ```

use dynnet::algorithms::apps::tdma;
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

fn main() {
    let n = 150;
    let window = recommended_window(n);
    let rounds = 6 * window;

    // Random-waypoint mobility: each node moves toward a waypoint in the
    // unit square; the communication graph is the unit-disk graph of the
    // current positions.
    let mut adversary = MobilityAdversary::new(
        MobilityConfig { n, radius: 0.14, min_speed: 0.002, max_speed: 0.01 },
        3,
    );

    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(11));
    let record = run(&mut sim, &mut adversary, rounds);

    println!("mobile wireless network: n = {n}, T = {window}, {rounds} rounds\n");
    println!("{:>6} {:>8} {:>10} {:>10} {:>9} {:>10}", "round", "edges", "frame len", "success", "collide", "recovered");

    let mut contention_rng = experiment_rng(99, "tdma-contention");
    let mut worst_success_rate: f64 = 1.0;
    for r in (window..rounds).step_by(window / 2) {
        let g = record.graph_at(r);
        let colors: Vec<ColorOutput> = record
            .outputs_at(r)
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        let frame = tdma::run_frame(&g, &colors);
        let recovered = tdma::resolve_contention(&g, &colors, &frame, 4, &mut contention_rng);
        worst_success_rate = worst_success_rate.min(frame.success_rate());
        println!(
            "{:>6} {:>8} {:>10} {:>10} {:>9} {:>10}",
            r,
            g.num_edges(),
            frame.frame_length,
            frame.successful,
            frame.collided,
            recovered
        );
    }
    println!(
        "\nworst per-frame success rate over the sampled rounds: {:.1}%",
        100.0 * worst_success_rate
    );
    println!(
        "(collisions can only involve edges that appeared within the last T = {window} rounds; \
         everything else is guaranteed collision free by Corollary 1.2)"
    );
}
