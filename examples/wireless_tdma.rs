//! Wireless TDMA slot assignment — the paper's motivating application for
//! vertex coloring (Section 1.2): mobile nodes in the plane coordinate
//! access to a shared radio channel by transmitting in the slot given by
//! their current color. The dynamic coloring keeps the slot assignment
//! almost-always collision free even though links appear and disappear every
//! round; the residual collisions are handled by the simple randomized
//! contention-resolution strategy from the paper.
//!
//! The TDMA frames are simulated inside a streaming `RoundObserver` at the
//! sampled rounds, so the execution is never materialized.
//!
//! ```text
//! cargo run --release -p dynnet --example wireless_tdma
//! ```

use dynnet::algorithms::apps::tdma;
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use rand_chacha::ChaCha8Rng;

/// Runs one TDMA frame (plus contention resolution) every `stride` rounds.
struct FrameSampler {
    from: u64,
    stride: u64,
    contention_rng: ChaCha8Rng,
    rows: Vec<(u64, usize, usize, usize, usize, usize)>,
    worst_success_rate: f64,
}

impl RoundObserver<ColorOutput> for FrameSampler {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        if view.round < self.from || !(view.round - self.from).is_multiple_of(self.stride) {
            return;
        }
        let g = view.current_graph();
        let colors: Vec<ColorOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        let frame = tdma::run_frame(g, &colors);
        let recovered = tdma::resolve_contention(g, &colors, &frame, 4, &mut self.contention_rng);
        self.worst_success_rate = self.worst_success_rate.min(frame.success_rate());
        self.rows.push((
            view.round,
            g.num_edges(),
            frame.frame_length,
            frame.successful,
            frame.collided,
            recovered,
        ));
    }
}

fn main() {
    let n = 150;
    let window = recommended_window(n);
    let rounds = 6 * window;

    // Random-waypoint mobility: each node moves toward a waypoint in the
    // unit square; the communication graph is the unit-disk graph of the
    // current positions.
    let mut sampler = FrameSampler {
        from: window as u64,
        stride: (window / 2) as u64,
        contention_rng: experiment_rng(99, "tdma-contention"),
        rows: Vec::new(),
        worst_success_rate: 1.0,
    };

    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(MobilityAdversary::new(
            MobilityConfig {
                n,
                radius: 0.14,
                min_speed: 0.002,
                max_speed: 0.01,
            },
            3,
        ))
        .seed(11)
        .rounds(rounds)
        .run(&mut [&mut sampler]);

    println!("mobile wireless network: n = {n}, T = {window}, {rounds} rounds\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>9} {:>10}",
        "round", "edges", "frame len", "success", "collide", "recovered"
    );
    for (round, edges, frame_len, success, collide, recovered) in &sampler.rows {
        println!(
            "{round:>6} {edges:>8} {frame_len:>10} {success:>10} {collide:>9} {recovered:>10}"
        );
    }
    println!(
        "\nworst per-frame success rate over the sampled rounds: {:.1}%",
        100.0 * sampler.worst_success_rate
    );
    println!(
        "(collisions can only involve edges that appeared within the last T = {window} rounds; \
         everything else is guaranteed collision free by Corollary 1.2)"
    );
}
