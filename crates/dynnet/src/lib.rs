//! # dynnet
//!
//! Facade crate for the `dynnet` workspace — a Rust reproduction of
//! *"Local Distributed Algorithms in Highly Dynamic Networks"* (Bamberger,
//! Kuhn, Maus; IPPS 2019 / arXiv:1802.10199).
//!
//! The workspace implements the paper's framework for local distributed
//! graph problems on synchronous round-based dynamic networks — packing and
//! covering problems, `T`-dynamic solutions over sliding windows of
//! intersection/union graphs, and the `Concat` combiner of Theorem 1.1 — and
//! instantiates it for (degree+1)-vertex coloring (Corollary 1.2) and MIS
//! (Corollary 1.3), together with the dynamic-graph simulator, adversaries,
//! baselines, verification harnesses, and an experiment suite.
//!
//! ## Quick example
//!
//! One `Scenario` wires the whole execution — algorithm, adversary, wake-up,
//! seed, rounds — and streams every round to pluggable observers (here the
//! streaming T-dynamic verifier, which patches a per-node verdict ledger
//! from each round's delta and output churn instead of re-checking the
//! whole window — `O(|δ| + churn)` per checked round):
//!
//! ```
//! use dynnet::prelude::*;
//!
//! // A 32-node random geometric network whose edges churn every round.
//! let n = 32;
//! let window = recommended_window(n);
//! let footprint = generators::random_geometric(
//!     n, 0.3, &mut dynnet::runtime::rng::experiment_rng(1, "doc"));
//!
//! // Verify that every round (after the first window) carries a T-dynamic
//! // coloring, while the execution streams by.
//! let mut verifier = TDynamicVerifier::new(ColoringProblem, window);
//! let runner = Scenario::new(n)
//!     .algorithm(dynamic_coloring(window))      // Corollary 1.2
//!     .adversary(FlipChurnAdversary::new(&footprint, 0.02, 7))
//!     .wakeup(AllAtStart)
//!     .seed(42)
//!     .rounds(3 * window)
//!     .run(&mut [&mut verifier]);
//! assert!(verifier.summary().all_valid());
//! assert!(runner.outputs().iter().all(|o| o.is_some()));
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the experiment harness that regenerates EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub use dynnet_adversary as adversary;
pub use dynnet_algorithms as algorithms;
pub use dynnet_core as core;
pub use dynnet_graph as graph;
pub use dynnet_metrics as metrics;
pub use dynnet_obs as obs;
pub use dynnet_runtime as runtime;
pub use dynnet_sweep as sweep;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use dynnet_adversary::{
        run, Adversary, BurstAdversary, ConflictSeekingAdversary, ExecutionRecord,
        FlipChurnAdversary, GrowthAdversary, LocallyStaticAdversary, MarkovChurnAdversary,
        MobilityAdversary, MobilityConfig, NodeChurnAdversary, OutputAdversary, PhaseAdversary,
        RateChurnAdversary, Runner, Scenario, ScriptedAdversary, StaticAdversary,
    };
    pub use dynnet_algorithms::apps::tdma;
    pub use dynnet_algorithms::coloring::{
        dynamic_coloring, oracle_coloring, BasicColoring, DColor, RestartColoring, SColor,
    };
    pub use dynnet_algorithms::mis::{
        dynamic_mis, oracle_mis, DMis, GhaffariMis, LubyMis, RestartMis, SMis,
    };
    pub use dynnet_core::{
        check_t_dynamic, node_verdict, recommended_window, verify_locally_static,
        verify_t_dynamic_run, ColorOutput, ColoringProblem, DynamicProblem, HasBottom,
        InvalidRounds, MisOutput, MisProblem, NodeVerdict, TDynamicReport, TDynamicVerifier,
        VerificationSummary, VerifyError, ViolationLedger,
    };
    pub use dynnet_graph::{
        generators, CodecError, CsrApplyOutcome, CsrGraph, DeltaLogReader, DeltaLogWriter, Edge,
        Graph, GraphDelta, GraphWindow, LogStats, NodeId, WindowUpdate,
    };
    pub use dynnet_metrics::{log_fit, RowSink, Series, Summary, Table};
    pub use dynnet_obs::{MetricSource, ProgressSink, Snapshot};
    pub use dynnet_runtime::{
        AllAtStart, ChurnStats, ConvergenceTracker, DeltaLogRecorder, DeltaStats, MetricsObserver,
        NodeAlgorithm, ObserverFactory, RandomWakeup, RoundObserver, RoundView, SimConfig,
        Simulator, Staggered, TraceRecorder, WakeupSchedule,
    };
    pub use dynnet_sweep::{
        run_observed, Aggregator, Cell, CellRows, CellValue, CheckpointStore, GroupedRun,
        GroupedSummary, KillSwitch, SweepEngine, SweepError, SweepReport, SweepRun, SweepSpec,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let w = recommended_window(128);
        assert!(w > 8);
        let g = generators::cycle(5);
        assert_eq!(g.num_edges(), 5);
    }
}
