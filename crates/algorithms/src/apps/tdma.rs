//! TDMA-style slot assignment on top of the dynamic coloring — the paper's
//! motivating application (Section 1.2): "the standard application of vertex
//! coloring is to assign frequencies or time slots to the nodes of a network
//! in order to coordinate the access to a shared channel."
//!
//! Every node transmits in the slot given by its current color. Two adjacent
//! nodes transmitting in the same slot collide. The (degree+1)-coloring
//! guarantees of Corollary 1.2 translate into: collisions only occur on
//! edges that appeared recently, and the frame length (number of slots)
//! stays bounded by the maximum union-degree + 1. When combined with the
//! simple randomized contention-resolution strategy implemented in
//! [`resolve_contention`], even those residual collisions are resolved with
//! constant probability per frame.

use dynnet_core::ColorOutput;
use dynnet_graph::{Edge, Graph};
use rand::Rng;

/// The outcome of one TDMA frame.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrameReport {
    /// Number of slots in the frame (= largest color in use).
    pub frame_length: usize,
    /// Number of nodes that transmitted successfully (no adjacent node in
    /// the same slot).
    pub successful: usize,
    /// Number of nodes whose transmission collided.
    pub collided: usize,
    /// Nodes without a slot (undecided color) that stayed silent.
    pub silent: usize,
    /// The edges on which a collision happened.
    pub collision_edges: Vec<Edge>,
}

impl FrameReport {
    /// Fraction of transmitting nodes that succeeded (1.0 if nobody transmitted).
    pub fn success_rate(&self) -> f64 {
        let tx = self.successful + self.collided;
        if tx == 0 {
            1.0
        } else {
            self.successful as f64 / tx as f64
        }
    }
}

/// Simulates one TDMA frame: every colored node transmits in the slot equal
/// to its color; adjacent nodes in the same slot collide.
pub fn run_frame(g: &Graph, colors: &[ColorOutput]) -> FrameReport {
    let mut report = FrameReport {
        frame_length: colors.iter().filter_map(|c| c.color()).max().unwrap_or(0),
        ..Default::default()
    };
    let mut collided = vec![false; g.num_nodes()];
    for e in g.edges() {
        if let (Some(a), Some(b)) = (colors[e.u.index()].color(), colors[e.v.index()].color()) {
            if a == b {
                collided[e.u.index()] = true;
                collided[e.v.index()] = true;
                report.collision_edges.push(e);
            }
        }
    }
    for v in g.active_nodes() {
        match colors[v.index()].color() {
            None => report.silent += 1,
            Some(_) if collided[v.index()] => report.collided += 1,
            Some(_) => report.successful += 1,
        }
    }
    report
}

/// The simple randomized contention-resolution strategy mentioned in the
/// paper: nodes involved in a collision retransmit in a uniformly random
/// sub-slot out of `subslots`; a retransmission succeeds if no colliding
/// neighbor picked the same sub-slot. Returns the number of nodes that
/// recovered their transmission this way.
pub fn resolve_contention<R: Rng + ?Sized>(
    g: &Graph,
    colors: &[ColorOutput],
    report: &FrameReport,
    subslots: usize,
    rng: &mut R,
) -> usize {
    assert!(subslots >= 1);
    assert_eq!(colors.len(), g.num_nodes(), "one color per node");
    let mut involved = vec![false; g.num_nodes()];
    for e in &report.collision_edges {
        involved[e.u.index()] = true;
        involved[e.v.index()] = true;
    }
    let choices: Vec<Option<usize>> = (0..g.num_nodes())
        // INVARIANT: `involved` was built with length num_nodes just above.
        .map(|i| involved[i].then(|| rng.gen_range(0..subslots)))
        .collect();
    let mut recovered = 0;
    for i in 0..g.num_nodes() {
        // INVARIANT: `choices` is num_nodes long (collected above) and
        // `colors` is the caller's per-node slice, asserted at entry.
        let Some(my_slot) = choices[i] else { continue };
        let my_color = colors[i].color();
        let conflict = g
            .neighbors(dynnet_graph::NodeId::new(i))
            .any(|w| choices[w.index()] == Some(my_slot) && colors[w.index()].color() == my_color);
        if !conflict {
            recovered += 1;
        }
    }
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::generators;
    use dynnet_graph::NodeId;

    fn colors(cs: &[usize]) -> Vec<ColorOutput> {
        cs.iter()
            .map(|&c| {
                if c == 0 {
                    ColorOutput::Undecided
                } else {
                    ColorOutput::Colored(c)
                }
            })
            .collect()
    }

    #[test]
    fn proper_coloring_has_no_collisions() {
        let g = generators::cycle(6);
        let report = run_frame(&g, &colors(&[1, 2, 1, 2, 1, 2]));
        assert_eq!(report.collided, 0);
        assert_eq!(report.successful, 6);
        assert_eq!(report.frame_length, 2);
        assert!((report.success_rate() - 1.0).abs() < 1e-12);
        assert!(report.collision_edges.is_empty());
    }

    #[test]
    fn conflicting_colors_collide() {
        let g = generators::path(3);
        let report = run_frame(&g, &colors(&[1, 1, 2]));
        assert_eq!(report.collided, 2);
        assert_eq!(report.successful, 1);
        assert_eq!(report.collision_edges, vec![Edge::of(0, 1)]);
        assert!(report.success_rate() < 0.5);
    }

    #[test]
    fn undecided_nodes_stay_silent() {
        let g = generators::path(3);
        let report = run_frame(&g, &colors(&[1, 0, 1]));
        assert_eq!(report.silent, 1);
        assert_eq!(report.successful, 2);
        assert_eq!(report.collided, 0);
    }

    #[test]
    fn inactive_nodes_are_not_counted() {
        let mut g = generators::path(3);
        g.deactivate(NodeId::new(2));
        let report = run_frame(&g, &colors(&[1, 2, 0]));
        assert_eq!(report.successful + report.collided + report.silent, 2);
    }

    #[test]
    fn contention_resolution_recovers_most_collisions() {
        let g = generators::complete(2);
        let cs = colors(&[1, 1]);
        let report = run_frame(&g, &cs);
        assert_eq!(report.collided, 2);
        let mut rng = dynnet_runtime::rng::experiment_rng(1, "tdma");
        let mut total = 0;
        let trials = 200;
        for _ in 0..trials {
            total += resolve_contention(&g, &cs, &report, 4, &mut rng);
        }
        // Each node succeeds with probability 3/4 per trial; expect ~1.5 * trials.
        let avg = total as f64 / trials as f64;
        assert!(avg > 1.2 && avg < 1.8, "avg recovered per frame = {avg}");
    }
}
