//! Corollary 1.2: the combined dynamic (degree+1)-coloring algorithm.
//!
//! `Concat` (Theorem 1.1) applied to the `(O(log n), 2)`-network-static
//! [`SColor`] and the `O(log n)`-dynamic [`DColor`]: in every round the
//! output is a `T`-dynamic coloring, and the output of a node whose
//! 2-neighborhood is static during `[r, r2]` does not change during
//! `[r + 2T, r2]`.

use crate::coloring::dcolor::DColor;
use crate::coloring::scolor::SColor;
use dynnet_core::concat::{Concat, ConcatFactory};
use dynnet_core::ColorOutput;
use dynnet_graph::NodeId;

/// Factory type for SColor instances.
pub type SColorFactory = fn(NodeId) -> SColor;
/// Factory type for DColor instances.
pub type DColorFactory = fn(NodeId, ColorOutput) -> DColor;

/// The combined algorithm's per-node type.
pub type DynamicColoring = Concat<SColor, DColor, DColorFactory>;

/// The simulator factory for the combined coloring algorithm of
/// Corollary 1.2 with window parameter `T1 = window`.
pub type DynamicColoringFactory = ConcatFactory<SColor, DColor, SColorFactory, DColorFactory>;

/// Builds the Corollary 1.2 algorithm with window size `window` (use
/// [`dynnet_core::recommended_window`] for the `Θ(log n)` default).
pub fn dynamic_coloring(window: usize) -> DynamicColoringFactory {
    ConcatFactory::new(
        window,
        SColor::new as SColorFactory,
        DColor::new as DColorFactory,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{
        drive, BurstAdversary, FlipChurnAdversary, LocallyStaticAdversary, StaticAdversary,
    };
    use dynnet_core::{
        coloring::conflict_edges, recommended_window, verify_t_dynamic_run, ColoringProblem,
        HasBottom,
    };
    use dynnet_graph::{generators, Graph, NodeId};
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    fn collect_outputs(
        record: &dynnet_adversary::ExecutionRecord<ColorOutput>,
    ) -> (Vec<Graph>, Vec<Vec<Option<ColorOutput>>>) {
        let graphs: Vec<Graph> = record.trace.iter().collect();
        let outputs = (0..record.num_rounds())
            .map(|r| record.outputs_at(r).to_vec())
            .collect();
        (graphs, outputs)
    }

    #[test]
    fn t_dynamic_in_every_round_under_churn() {
        let n = 48;
        let window = recommended_window(n);
        let footprint = generators::erdos_renyi_avg_degree(
            n,
            5.0,
            &mut dynnet_runtime::rng::experiment_rng(7, "combined-col"),
        );
        let mut sim = Simulator::new(
            n,
            dynamic_coloring(window),
            AllAtStart,
            SimConfig::sequential(3),
        );
        let mut adv = FlipChurnAdversary::new(&footprint, 0.03, 5);
        let rounds = window * 3;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let (graphs, outputs) = collect_outputs(&record);
        let summary = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, window - 1);
        assert!(
            summary.all_valid(),
            "invalid rounds: {:?}",
            summary.invalid_rounds
        );
    }

    #[test]
    fn static_graph_behaves_like_static_coloring() {
        let n = 40;
        let window = recommended_window(n);
        let g = generators::random_geometric(
            n,
            0.25,
            &mut dynnet_runtime::rng::experiment_rng(8, "combined-static"),
        );
        let mut sim = Simulator::new(
            n,
            dynamic_coloring(window),
            AllAtStart,
            SimConfig::sequential(4),
        );
        let mut adv = StaticAdversary::new(g.clone());
        let rounds = window * 3;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let out: Vec<ColorOutput> = record
            .outputs_at(rounds - 1)
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        assert!(out.iter().all(|o| o.is_decided()));
        assert_eq!(conflict_edges(&g, &out), 0);
        // Locally static everywhere ⇒ output frozen after 2 * window rounds.
        let freeze_from = 2 * window;
        let reference = record.outputs_at(freeze_from).to_vec();
        for r in freeze_from..rounds {
            assert_eq!(
                record.outputs_at(r),
                &reference[..],
                "output changed in round {r}"
            );
        }
    }

    #[test]
    fn conflicts_from_injected_edges_resolve_within_a_window() {
        let n = 36;
        let window = recommended_window(n);
        let base = generators::grid(6, 6);
        let mut sim = Simulator::new(
            n,
            dynamic_coloring(window),
            AllAtStart,
            SimConfig::sequential(5),
        );
        let mut adv = BurstAdversary::new(base, 2 * window as u64, 10 * window as u64, 4, 9);
        let rounds = window * 4;
        let record = drive::run(&mut sim, &mut adv, rounds);
        // Count, per round, conflicts on the *current* graph; they may appear
        // when a burst lands but must be gone again within `window` rounds.
        let mut conflict_rounds: Vec<usize> = Vec::new();
        for r in window..rounds {
            let g = record.graph_at(r);
            let out: Vec<ColorOutput> = record
                .outputs_at(r)
                .iter()
                .map(|o| o.unwrap_or(ColorOutput::Undecided))
                .collect();
            if conflict_edges(&g, &out) > 0 {
                conflict_rounds.push(r);
            }
        }
        // Conflicts are allowed only transiently: no run of `window`
        // consecutive conflict rounds.
        let mut longest = 0usize;
        let mut cur = 0usize;
        let mut prev: Option<usize> = None;
        for &r in &conflict_rounds {
            cur = match prev {
                Some(p) if r == p + 1 => cur + 1,
                _ => 1,
            };
            longest = longest.max(cur);
            prev = Some(r);
        }
        assert!(
            longest < window,
            "a conflict persisted for {longest} ≥ T = {window} rounds"
        );
    }

    #[test]
    fn locally_static_region_stabilizes_within_two_windows() {
        let n = 49;
        let window = recommended_window(n);
        let base = generators::grid(7, 7);
        let seed_node = NodeId::new(24);
        let mut adv = LocallyStaticAdversary::new(base, vec![seed_node], 2, 0.25, 31);
        let mut sim = Simulator::new(
            n,
            dynamic_coloring(window),
            AllAtStart,
            SimConfig::sequential(6),
        );
        let rounds = window * 4;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let stable_from = 2 * window;
        let reference = record.outputs_at(stable_from)[seed_node.index()].unwrap();
        assert!(reference.is_decided());
        for r in stable_from..rounds {
            assert_eq!(
                record.outputs_at(r)[seed_node.index()].unwrap(),
                reference,
                "protected node changed its color in round {r}"
            );
        }
    }
}
