//! Baseline coloring strategies used for comparison in the experiments.
//!
//! * [`RestartColoring`] — the strawman discussed in the introduction: run
//!   the basic static algorithm and simply restart it from scratch every
//!   `period` rounds (hoping the graph did not change too much in between).
//!   It provides no guarantee while a restart is in progress and its output
//!   churns heavily even on a static graph.
//! * [`oracle_coloring`] — a centralized greedy (degree+1)-coloring of a
//!   given snapshot (the "ideal" comparison point that a distributed
//!   algorithm cannot actually compute in a dynamic network).

use crate::coloring::basic::{BasicColoring, ColorMsg};
use dynnet_core::ColorOutput;
use dynnet_graph::{algo, Graph, NodeId};
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};

/// The restart-from-scratch baseline: a fresh [`BasicColoring`] instance is
/// started every `period` rounds and the previous one is thrown away.
#[derive(Clone, Debug)]
pub struct RestartColoring {
    node: NodeId,
    period: u64,
    rounds_since_restart: u64,
    inner: BasicColoring,
    /// Number of restarts performed so far.
    restarts: u64,
}

impl RestartColoring {
    /// Creates the baseline with the given restart period (≥ 1).
    pub fn new(node: NodeId, period: u64) -> Self {
        assert!(period >= 1);
        RestartColoring {
            node,
            period,
            rounds_since_restart: 0,
            inner: BasicColoring::new(node),
            restarts: 0,
        }
    }

    /// Number of restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

impl NodeAlgorithm for RestartColoring {
    type Msg = ColorMsg;
    type Output = ColorOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> ColorMsg {
        if self.rounds_since_restart == self.period {
            self.inner = BasicColoring::new(self.node);
            self.rounds_since_restart = 0;
            self.restarts += 1;
        }
        self.rounds_since_restart += 1;
        self.inner.send(ctx)
    }

    fn receive(&mut self, ctx: &mut NodeContext<'_>, inbox: &[Incoming<ColorMsg>]) {
        self.inner.receive(ctx, inbox);
    }

    fn output(&self) -> ColorOutput {
        self.inner.output()
    }
}

/// Centralized greedy (degree+1)-coloring of a snapshot, returned in the same
/// output format as the distributed algorithms (inactive nodes stay `⊥`).
pub fn oracle_coloring(g: &Graph) -> Vec<ColorOutput> {
    algo::greedy_coloring(g)
        .into_iter()
        .map(|c| {
            if c == 0 {
                ColorOutput::Undecided
            } else {
                ColorOutput::Colored(c)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{drive, StaticAdversary};
    use dynnet_core::{coloring::conflict_edges, output_churn_series, HasBottom};
    use dynnet_graph::generators;
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    #[test]
    fn restart_baseline_churns_even_on_static_graphs() {
        let n = 30;
        let g = generators::erdos_renyi_avg_degree(
            n,
            5.0,
            &mut dynnet_runtime::rng::experiment_rng(3, "restart"),
        );
        let period = 20u64;
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| RestartColoring::new(v, period),
            AllAtStart,
            SimConfig::sequential(1),
        );
        let mut adv = StaticAdversary::new(g);
        let rounds = 120;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let outputs: Vec<Vec<Option<ColorOutput>>> =
            (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let churn = output_churn_series(&outputs, &nodes);
        // The total churn over the run is large (way beyond the one-time
        // convergence churn of roughly n changes).
        let total: usize = churn.iter().sum();
        assert!(
            total > 2 * n,
            "restart baseline must keep churning, churn = {total}"
        );
        // And there are rounds in the steady state where some node is ⊥.
        let undecided_late_round = (rounds / 2..rounds).any(|r| {
            outputs[r]
                .iter()
                .any(|o| o.map(|c| c.is_bottom()).unwrap_or(true))
        });
        assert!(
            undecided_late_round,
            "restarting forces ⊥ outputs long after start"
        );
        assert!(sim.node(NodeId::new(0)).unwrap().restarts() >= 4);
    }

    #[test]
    fn restart_baseline_is_valid_right_before_a_restart() {
        let n = 20;
        let g = generators::cycle(n);
        let period = 40u64;
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| RestartColoring::new(v, period),
            AllAtStart,
            SimConfig::sequential(2),
        );
        let mut adv = StaticAdversary::new(g.clone());
        let record = drive::run(&mut sim, &mut adv, period as usize);
        let out: Vec<ColorOutput> = record
            .outputs_at(period as usize - 1)
            .iter()
            .map(|o| o.unwrap())
            .collect();
        assert!(out.iter().all(|o| o.is_decided()));
        assert_eq!(conflict_edges(&g, &out), 0);
    }

    #[test]
    fn oracle_coloring_is_proper() {
        let g = generators::erdos_renyi_avg_degree(
            50,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(4, "oracle"),
        );
        let out = oracle_coloring(&g);
        assert_eq!(conflict_edges(&g, &out), 0);
        assert!(out.iter().all(|o| o.is_decided()));
    }
}
