//! Algorithm 6: the basic randomized (degree+1)-coloring algorithm for
//! static graphs, in the paper's *pipelined* form where every round is
//! identical (so it also works with asynchronous wake-up).
//!
//! Per round, an uncolored node picks a tentative color uniformly at random
//! from its palette and keeps it permanently if no neighbor picked or owns
//! the same color; the palette is recomputed as `[d(v)+1]` minus the
//! neighbors' fixed colors. Lemma 6.2: all nodes are colored within
//! `O(log n)` rounds w.h.p.

use dynnet_core::{Color, ColorOutput};
use dynnet_graph::NodeId;
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};
use rand::Rng;
use std::collections::BTreeSet;

/// The message broadcast by a node running one of the coloring algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColorMsg {
    /// The sender's permanently chosen color.
    Fixed(Color),
    /// The sender's tentative color for this round.
    Tentative(Color),
    /// The sender's input value in an instance's start round (used by DColor).
    Input(ColorOutput),
}

/// Algorithm 6 (pipelined basic coloring) as a per-node algorithm.
#[derive(Clone, Debug)]
pub struct BasicColoring {
    output: ColorOutput,
    /// Color palette `P_v` (kept sorted for deterministic sampling).
    palette: Vec<Color>,
    /// Tentative color chosen in the current round's send phase.
    tentative: Option<Color>,
}

impl BasicColoring {
    /// Creates an uncolored node with the initial palette `{1}`.
    pub fn new(_v: NodeId) -> Self {
        BasicColoring {
            output: ColorOutput::Undecided,
            palette: vec![1],
            tentative: None,
        }
    }

    /// The current palette (for tests and analysis).
    pub fn palette(&self) -> &[Color] {
        &self.palette
    }
}

impl NodeAlgorithm for BasicColoring {
    type Msg = ColorMsg;
    type Output = ColorOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> ColorMsg {
        match self.output {
            ColorOutput::Colored(c) => {
                self.tentative = None;
                ColorMsg::Fixed(c)
            }
            ColorOutput::Undecided => {
                if self.palette.is_empty() {
                    // Cannot happen for valid inputs (the [d+1] palette loses
                    // at most d colors before the node decides); recover by
                    // extending the palette rather than panicking mid-round.
                    self.palette.push(1);
                }
                // Same draw sequence as `SliceRandom::choose` on a non-empty
                // slice, without the unreachable `None` arm.
                let c = self.palette[ctx.rng.gen_range(0..self.palette.len())];
                self.tentative = Some(c);
                ColorMsg::Tentative(c)
            }
        }
    }

    fn receive(&mut self, ctx: &mut NodeContext<'_>, inbox: &[Incoming<ColorMsg>]) {
        let mut fixed: BTreeSet<Color> = BTreeSet::new();
        let mut tentative: BTreeSet<Color> = BTreeSet::new();
        for (_, msg) in inbox {
            match msg {
                ColorMsg::Fixed(c) => {
                    fixed.insert(*c);
                }
                ColorMsg::Tentative(c) => {
                    tentative.insert(*c);
                }
                ColorMsg::Input(_) => {}
            }
        }
        // P_v = [d(v) + 1] \ F_v.
        let degree = ctx.degree();
        self.palette = (1..=degree + 1).filter(|c| !fixed.contains(c)).collect();
        if self.output == ColorOutput::Undecided {
            if let Some(c) = self.tentative {
                if self.palette.contains(&c) && !tentative.contains(&c) {
                    self.output = ColorOutput::Colored(c);
                }
            }
        }
    }

    fn output(&self) -> ColorOutput {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_core::{coloring::conflict_edges, ColoringProblem, DynamicProblem, HasBottom};
    use dynnet_graph::{generators, Graph};
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    fn run_basic(g: &Graph, rounds: usize, seed: u64) -> Vec<ColorOutput> {
        let mut sim = Simulator::new(
            g.num_nodes(),
            BasicColoring::new,
            AllAtStart,
            SimConfig::sequential(seed),
        );
        let reports = sim.run_static(g, rounds);
        reports
            .last()
            .unwrap()
            .outputs
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect()
    }

    #[test]
    fn colors_a_single_node_immediately() {
        let g = Graph::new(1);
        let out = run_basic(&g, 1, 0);
        assert_eq!(out[0], ColorOutput::Colored(1));
    }

    #[test]
    fn produces_a_proper_degree_plus_one_coloring_on_a_cycle() {
        let g = generators::cycle(20);
        let out = run_basic(&g, 60, 1);
        let p = ColoringProblem;
        assert!(
            out.iter().all(|o| o.is_decided()),
            "all colored after O(log n) rounds"
        );
        assert_eq!(conflict_edges(&g, &out), 0);
        for v in g.nodes() {
            assert!(
                p.covering_solution_ok_at(&g, v, &out),
                "color within degree+1 at {v}"
            );
        }
    }

    #[test]
    fn produces_proper_coloring_on_random_graphs_for_multiple_seeds() {
        for seed in 0..5u64 {
            let g = generators::erdos_renyi_avg_degree(
                60,
                6.0,
                &mut dynnet_runtime::rng::experiment_rng(seed, "basic-col"),
            );
            let out = run_basic(&g, 80, seed);
            assert!(out.iter().all(|o| o.is_decided()), "seed {seed}");
            assert_eq!(conflict_edges(&g, &out), 0, "seed {seed}");
        }
    }

    #[test]
    fn colored_nodes_never_change_color() {
        let g = generators::complete(8);
        let mut sim = Simulator::new(8, BasicColoring::new, AllAtStart, SimConfig::sequential(3));
        let mut last: Vec<Option<ColorOutput>> = vec![None; 8];
        for _ in 0..40 {
            let rep = sim.step(&g);
            #[allow(clippy::needless_range_loop)]
            for i in 0..8 {
                if let Some(ColorOutput::Colored(c)) = last[i] {
                    assert_eq!(
                        rep.outputs[i],
                        Some(ColorOutput::Colored(c)),
                        "node {i} changed color"
                    );
                }
            }
            last = rep.outputs;
        }
        assert!(last
            .iter()
            .all(|o| matches!(o, Some(ColorOutput::Colored(_)))));
    }

    #[test]
    fn palette_never_empty_while_uncolored() {
        let g = generators::complete(6);
        let mut sim = Simulator::new(6, BasicColoring::new, AllAtStart, SimConfig::sequential(7));
        for _ in 0..30 {
            sim.step(&g);
            for i in 0..6 {
                let node = sim.node(NodeId::new(i)).unwrap();
                if node.output() == ColorOutput::Undecided {
                    assert!(!node.palette().is_empty());
                }
            }
        }
    }
}
