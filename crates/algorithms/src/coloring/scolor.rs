//! Algorithm 3: **SColor**, the `(O(log n), α = 2)`-network-static coloring
//! algorithm.
//!
//! SColor runs forever on the *current* graph `G_r`. It differs from the
//! basic static algorithm in one crucial way: a colored node *uncolors
//! itself* whenever its color stops being valid — because a neighbor with
//! the same color appeared or because its degree dropped below its color.
//! This gives property B.1 (the output is a valid partial solution for `G_r`
//! in every round); if a node's 2-neighborhood stays static for `O(log n)`
//! rounds the node gets colored and keeps its color (property B.2,
//! Lemma 4.5).

use crate::coloring::basic::ColorMsg;
use dynnet_core::{Color, ColorOutput};
use dynnet_graph::NodeId;
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};
use rand::Rng;
use std::collections::BTreeSet;

/// One SColor node.
#[derive(Clone, Debug)]
pub struct SColor {
    output: ColorOutput,
    /// Color palette `P_v` (starts as `{1}`, recomputed every round).
    palette: Vec<Color>,
    /// Tentative color chosen in the current round.
    tentative: Option<Color>,
    /// Number of times this node has uncolored itself (analysis metric).
    uncolor_events: u64,
}

impl SColor {
    /// Creates an uncolored SColor node.
    pub fn new(_v: NodeId) -> Self {
        SColor {
            output: ColorOutput::Undecided,
            palette: vec![1],
            tentative: None,
            uncolor_events: 0,
        }
    }

    /// The current palette.
    pub fn palette(&self) -> &[Color] {
        &self.palette
    }

    /// How often the node has uncolored itself so far.
    pub fn uncolor_events(&self) -> u64 {
        self.uncolor_events
    }
}

impl NodeAlgorithm for SColor {
    type Msg = ColorMsg;
    type Output = ColorOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> ColorMsg {
        match self.output {
            ColorOutput::Colored(c) => {
                self.tentative = None;
                ColorMsg::Fixed(c)
            }
            ColorOutput::Undecided => {
                if self.palette.is_empty() {
                    self.palette.push(1);
                }
                // Same draw sequence as `SliceRandom::choose` on a non-empty
                // slice, without the unreachable `None` arm.
                let c = self.palette[ctx.rng.gen_range(0..self.palette.len())];
                self.tentative = Some(c);
                ColorMsg::Tentative(c)
            }
        }
    }

    fn receive(&mut self, ctx: &mut NodeContext<'_>, inbox: &[Incoming<ColorMsg>]) {
        let mut fixed: BTreeSet<Color> = BTreeSet::new();
        let mut tentative: BTreeSet<Color> = BTreeSet::new();
        for (_, msg) in inbox {
            match msg {
                ColorMsg::Fixed(c) => {
                    fixed.insert(*c);
                }
                ColorMsg::Tentative(c) => {
                    tentative.insert(*c);
                }
                ColorMsg::Input(_) => {}
            }
        }
        // P_v = [d_r(v) + 1] \ F_v — unlike DColor, colors may re-enter.
        let degree = ctx.degree();
        self.palette = (1..=degree + 1).filter(|c| !fixed.contains(c)).collect();

        match self.output {
            ColorOutput::Undecided => {
                if let Some(c) = self.tentative {
                    if self.palette.contains(&c) && !tentative.contains(&c) {
                        self.output = ColorOutput::Colored(c);
                    }
                }
            }
            ColorOutput::Colored(c) => {
                // Potential uncoloring: the color must still be in the
                // palette, i.e. within [d_r(v)+1] and not owned by a
                // neighbor.
                if !self.palette.contains(&c) {
                    self.output = ColorOutput::Undecided;
                    self.uncolor_events += 1;
                }
            }
        }
    }

    fn output(&self) -> ColorOutput {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{drive, FlipChurnAdversary, LocallyStaticAdversary, StaticAdversary};
    use dynnet_core::{ColoringProblem, DynamicProblem, HasBottom};
    use dynnet_graph::{generators, Graph};
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    #[test]
    fn every_round_is_a_valid_partial_solution_b1() {
        // Property B.1 must hold in *every* round, under arbitrary churn.
        let n = 40;
        let footprint = generators::erdos_renyi_avg_degree(
            n,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(4, "scolor"),
        );
        let mut sim = Simulator::new(n, SColor::new, AllAtStart, SimConfig::sequential(8));
        let mut adv = FlipChurnAdversary::new(&footprint, 0.08, 21);
        let rounds = 60;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let p = ColoringProblem;
        for r in 0..rounds {
            let g = record.graph_at(r);
            let out: Vec<ColorOutput> = record
                .outputs_at(r)
                .iter()
                .map(|o| o.unwrap_or(ColorOutput::Undecided))
                .collect();
            let nodes: Vec<NodeId> = g.nodes().collect();
            assert!(
                p.is_partial_solution(&g, &out, &nodes),
                "B.1 violated in round {r}"
            );
        }
    }

    #[test]
    fn converges_and_stays_fixed_on_a_static_graph() {
        let g = generators::erdos_renyi_avg_degree(
            60,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(5, "scolor-static"),
        );
        let mut sim = Simulator::new(60, SColor::new, AllAtStart, SimConfig::sequential(9));
        let mut adv = StaticAdversary::new(g.clone());
        let rounds = 100;
        let record = drive::run(&mut sim, &mut adv, rounds);
        // Everyone colored at the end…
        let final_out = record.outputs_at(rounds - 1);
        assert!(final_out.iter().all(|o| o.unwrap().is_decided()));
        // …and nobody changes output in the second half of the run.
        for r in (rounds / 2)..rounds {
            assert_eq!(
                record.outputs_at(r),
                final_out,
                "output changed in round {r}"
            );
        }
    }

    #[test]
    fn uncolors_on_conflict_and_recovers() {
        // Two nodes colored identically become adjacent: both must drop the
        // color at the end of that round (B.1) and then re-color properly.
        let n = 2;
        let empty = Graph::new(n);
        let joined = generators::path(2);
        let mut sim = Simulator::new(n, SColor::new, AllAtStart, SimConfig::sequential(13));
        // Run isolated until both are colored (necessarily color 1).
        for _ in 0..3 {
            sim.step(&empty);
        }
        assert_eq!(sim.outputs()[0], Some(ColorOutput::Colored(1)));
        assert_eq!(sim.outputs()[1], Some(ColorOutput::Colored(1)));
        // Join them: in the round the edge appears both see the conflict and uncolor.
        let rep = sim.step(&joined);
        let c0 = rep.outputs[0].unwrap();
        let c1 = rep.outputs[1].unwrap();
        assert!(
            c0.is_bottom() && c1.is_bottom(),
            "both uncolor on a same-color conflict: {c0:?} {c1:?}"
        );
        // Within O(log n) rounds they settle on different colors.
        let mut last = (c0, c1);
        for _ in 0..30 {
            let rep = sim.step(&joined);
            last = (rep.outputs[0].unwrap(), rep.outputs[1].unwrap());
        }
        assert!(last.0.is_decided() && last.1.is_decided());
        assert_ne!(last.0, last.1);
        assert!(sim.node(NodeId::new(0)).unwrap().uncolor_events() >= 1);
    }

    #[test]
    fn locally_static_nodes_keep_their_color_b2() {
        // Protect the 2-neighborhood of a seed node; churn the rest heavily.
        let base = generators::grid(7, 7);
        let seed_node = NodeId::new(24);
        let mut adv = LocallyStaticAdversary::new(base.clone(), vec![seed_node], 2, 0.3, 17);
        let mut sim = Simulator::new(49, SColor::new, AllAtStart, SimConfig::sequential(19));
        let rounds = 120;
        let record = drive::run(&mut sim, &mut adv, rounds);
        // After a logarithmic prefix the protected node must be colored and
        // never change again.
        let stable_from = 60;
        let reference = record.outputs_at(stable_from)[seed_node.index()].unwrap();
        assert!(reference.is_decided());
        for r in stable_from..rounds {
            assert_eq!(
                record.outputs_at(r)[seed_node.index()].unwrap(),
                reference,
                "protected node changed output in round {r}"
            );
        }
    }

    #[test]
    fn degree_drop_forces_uncoloring() {
        // A node colored with color 3 (legal at degree 2) must uncolor when
        // its degree drops to 0 (palette becomes {1}).
        let star = generators::star(3); // center 0 with neighbors 1, 2
        let empty = Graph::new(3);
        let p = ColoringProblem;
        let mut sim = Simulator::new(3, SColor::new, AllAtStart, SimConfig::sequential(23));
        let mut colored_center = ColorOutput::Undecided;
        for _ in 0..40 {
            let rep = sim.step(&star);
            colored_center = rep.outputs[0].unwrap();
            if colored_center.is_decided() {
                break;
            }
        }
        assert!(colored_center.is_decided());
        // Now isolate the center; within one round its color must be ≤ 1.
        let rep = sim.step(&empty);
        let out: Vec<ColorOutput> = rep.outputs.iter().map(|o| o.unwrap()).collect();
        assert!(p.partial_covering_ok_at(&empty, NodeId::new(0), &out));
    }
}
