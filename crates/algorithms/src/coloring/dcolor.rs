//! Algorithm 2: **DColor**, the `O(log n)`-dynamic coloring algorithm.
//!
//! DColor is started (as a fresh instance) with an input partial coloring
//! `φ`. Its communication is always restricted to the *intersection graph*
//! of all rounds since the instance started: messages from nodes that have
//! not been neighbors in every round since the start are ignored, so a newly
//! inserted edge can never create a conflict inside a running instance.
//!
//! * **Start round** (needs one communication round): broadcast the own
//!   input value, receive the neighbors' inputs, and initialize the palette
//!   `P_v = [d_j(v)+1] \ {φ_w}`.
//! * **Subsequent rounds**: uncolored nodes pick a tentative color uniformly
//!   at random from their palette and keep it if no (intersection-graph)
//!   neighbor picked or owns it; received fixed colors are removed from the
//!   palette (colors are never added back).
//!
//! Properties (Lemma 4.1): DColor is input-extending (A.1) and, w.h.p.,
//! colors all nodes within `T = O(log n)` rounds (A.2), yielding a solution
//! of the packing problem on `G^∩T` and of the covering problem on `G^∪T`.

use crate::coloring::basic::ColorMsg;
use dynnet_core::{Color, ColorOutput};
use dynnet_graph::NodeId;
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};
use rand::Rng;

/// One DColor instance at one node.
#[derive(Clone, Debug)]
pub struct DColor {
    output: ColorOutput,
    /// Color palette `P_v`; only meaningful once initialized in the start round.
    palette: Vec<Color>,
    /// Neighbors that have been present in *every* round since the instance
    /// started (the node's view of the intersection graph), sorted
    /// ascending; meaningful only once `started`. A sorted `Vec` instead of
    /// a `BTreeSet`: the set is rebuilt every round for every awake node,
    /// and the tree's per-insert allocations dominated the round kernel at
    /// large `n`.
    allowed: Vec<NodeId>,
    /// False exactly until the start round's messages have been received.
    started: bool,
    /// Double-buffer for rebuilding `allowed` while reading it.
    scratch: Vec<NodeId>,
    /// Reused per-round scratch: fixed colors heard this round.
    fixed_heard: Vec<Color>,
    /// Reused per-round scratch: tentative colors heard this round.
    tentative_heard: Vec<Color>,
    /// Tentative color chosen in the current round.
    tentative: Option<Color>,
}

impl DColor {
    /// Creates an instance for node `v` with input `φ_v` (property A.1: a
    /// decided input is never changed).
    pub fn new(_v: NodeId, input: ColorOutput) -> Self {
        DColor {
            output: input,
            palette: Vec::new(),
            allowed: Vec::new(),
            started: false,
            scratch: Vec::new(),
            fixed_heard: Vec::new(),
            tentative_heard: Vec::new(),
            tentative: None,
        }
    }

    /// The current palette (analysis/tests).
    pub fn palette(&self) -> &[Color] {
        &self.palette
    }

    /// The node's current view of its intersection-graph neighbors (sorted
    /// ascending); `None` until the start round's messages arrive.
    pub fn allowed_neighbors(&self) -> Option<&[NodeId]> {
        self.started.then_some(self.allowed.as_slice())
    }

    fn is_start_round(&self) -> bool {
        !self.started
    }
}

impl NodeAlgorithm for DColor {
    type Msg = ColorMsg;
    type Output = ColorOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> ColorMsg {
        if self.is_start_round() {
            // Start: broadcast the input value.
            self.tentative = None;
            return ColorMsg::Input(self.output);
        }
        match self.output {
            ColorOutput::Colored(c) => {
                self.tentative = None;
                ColorMsg::Fixed(c)
            }
            ColorOutput::Undecided => {
                if self.palette.is_empty() {
                    // Degenerate: an isolated node whose palette was emptied
                    // by the input neighborhood; [d+1] always contains an
                    // unused color, so this cannot happen for valid inputs —
                    // recover by extending to the next free color.
                    self.palette.push(1);
                }
                // Same draw sequence as `SliceRandom::choose` on a non-empty
                // slice, without the unreachable `None` arm.
                let c = self.palette[ctx.rng.gen_range(0..self.palette.len())];
                self.tentative = Some(c);
                ColorMsg::Tentative(c)
            }
        }
    }

    fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<ColorMsg>]) {
        if self.is_start_round() {
            // Receive the neighbors' inputs; initialize the allowed set and
            // the palette P_v = [d_j(v) + 1] \ {φ_w | w ∈ N_{G_j}(v)}.
            self.allowed.clear();
            let taken = &mut self.fixed_heard;
            taken.clear();
            for (from, msg) in inbox {
                self.allowed.push(*from);
                if let ColorMsg::Input(ColorOutput::Colored(c)) = msg {
                    taken.push(*c);
                }
                // A neighbor's Fixed/Tentative message can only originate
                // from a differently-timed instance; DColor instances inside
                // Concat are aligned, so this does not occur in practice.
            }
            self.allowed.sort_unstable();
            if self.output == ColorOutput::Undecided {
                let degree = inbox.len();
                self.palette = (1..=degree + 1).filter(|c| !taken.contains(c)).collect();
            }
            self.started = true;
            return;
        }

        // A colored node never changes its output (property A.1) and its
        // palette and intersection view are never consulted again, so skip
        // the per-round view maintenance: `allowed` freezes at its
        // decision-round snapshot. In a converged steady state this makes
        // receive O(1) for almost every node.
        if self.output != ColorOutput::Undecided {
            return;
        }

        // Restrict to the intersection graph: only neighbors that have been
        // present in every round since the start are heard; the allowed set
        // shrinks to the senders that are still present.
        let fixed = &mut self.fixed_heard;
        let tentative = &mut self.tentative_heard;
        fixed.clear();
        tentative.clear();
        self.scratch.clear();
        for (from, msg) in inbox {
            if self.allowed.binary_search(from).is_err() {
                continue;
            }
            self.scratch.push(*from);
            match msg {
                ColorMsg::Fixed(c) => {
                    fixed.push(*c);
                }
                ColorMsg::Tentative(c) => {
                    tentative.push(*c);
                }
                ColorMsg::Input(ColorOutput::Colored(c)) => {
                    // An instance-start message from a neighbor whose
                    // instance is aligned: treat a decided input as fixed.
                    fixed.push(*c);
                }
                ColorMsg::Input(ColorOutput::Undecided) => {}
            }
        }
        // Senders arrive in CSR row order, which need not be ascending.
        self.scratch.sort_unstable();
        std::mem::swap(&mut self.allowed, &mut self.scratch);

        // P_v = P_v \ F_v (colors are never added back — Lemma 4.1 relies on it).
        let fixed = &self.fixed_heard;
        self.palette.retain(|c| !fixed.contains(c));

        if self.output == ColorOutput::Undecided {
            if let Some(c) = self.tentative {
                if self.palette.contains(&c) && !self.tentative_heard.contains(&c) {
                    self.output = ColorOutput::Colored(c);
                }
            }
        }
    }

    fn output(&self) -> ColorOutput {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{drive, FlipChurnAdversary, StaticAdversary};
    use dynnet_core::HasBottom;
    use dynnet_core::{coloring::conflict_edges, verify_t_dynamic_run, ColoringProblem};
    use dynnet_graph::{generators, Graph};
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    fn fresh(v: NodeId) -> DColor {
        DColor::new(v, ColorOutput::Undecided)
    }

    #[test]
    fn input_extending_property_a1() {
        // Nodes with a decided input never change it, whatever happens.
        let g = generators::complete(5);
        let factory = |v: NodeId| {
            if v.index() == 0 {
                DColor::new(v, ColorOutput::Colored(7))
            } else {
                fresh(v)
            }
        };
        let mut sim = Simulator::new(5, factory, AllAtStart, SimConfig::sequential(2));
        for _ in 0..30 {
            let rep = sim.step(&g);
            assert_eq!(rep.outputs[0], Some(ColorOutput::Colored(7)));
        }
    }

    #[test]
    fn colors_everyone_on_a_static_graph() {
        let g = generators::erdos_renyi_avg_degree(
            80,
            8.0,
            &mut dynnet_runtime::rng::experiment_rng(1, "dcolor"),
        );
        let mut sim = Simulator::new(80, fresh, AllAtStart, SimConfig::sequential(5));
        let mut adv = StaticAdversary::new(g.clone());
        let record = drive::run(&mut sim, &mut adv, 80);
        let final_out: Vec<ColorOutput> = record
            .outputs_at(79)
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        assert!(final_out.iter().all(|o| o.is_decided()));
        assert_eq!(conflict_edges(&g, &final_out), 0);
    }

    #[test]
    fn t_dynamic_solution_under_churn() {
        // Run a single DColor instance from round 0 under churn; after
        // T rounds the output must satisfy packing on G^∩T and covering on
        // G^∪T — i.e. it is a T-dynamic solution where T is the full
        // execution length (this exercises exactly property A.2 with
        // j = T - 1 and an empty input).
        let n = 50;
        let footprint = generators::erdos_renyi_avg_degree(
            n,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(2, "dcolor-churn"),
        );
        let rounds = 70;
        let mut sim = Simulator::new(n, fresh, AllAtStart, SimConfig::sequential(6));
        let mut adv = FlipChurnAdversary::new(&footprint, 0.02, 3);
        let record = drive::run(&mut sim, &mut adv, rounds);
        let graphs: Vec<Graph> = record.trace.iter().collect();
        let outputs: Vec<Vec<Option<ColorOutput>>> =
            (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
        let summary = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, rounds, rounds - 1);
        assert!(summary.all_valid(), "{:?}", summary.invalid_rounds);
    }

    #[test]
    fn ignores_messages_from_late_edges() {
        // Nodes 0 and 1 are joined only from round 3 on; since DColor
        // restricts communication to the intersection graph since its start,
        // they may both keep color 1 without ever seeing a conflict.
        let n = 2;
        let empty = Graph::new(n);
        let joined = Graph::from_edges(n, [dynnet_graph::Edge::of(0, 1)]);
        let mut sim = Simulator::new(n, fresh, AllAtStart, SimConfig::sequential(0));
        for _ in 0..3 {
            sim.step(&empty);
        }
        let mut last = None;
        for _ in 0..10 {
            last = Some(sim.step(&joined));
        }
        let outs = last.unwrap().outputs;
        assert_eq!(outs[0], Some(ColorOutput::Colored(1)));
        assert_eq!(outs[1], Some(ColorOutput::Colored(1)));
        // And the allowed sets stay empty: the edge appeared after the start.
        assert!(sim
            .node(NodeId::new(0))
            .unwrap()
            .allowed_neighbors()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn palette_initialized_from_input_neighborhood() {
        // Node 1 starts colored 2; node 0 must exclude 2 from its palette.
        let g = generators::path(2);
        let factory = |v: NodeId| {
            if v.index() == 1 {
                DColor::new(v, ColorOutput::Colored(2))
            } else {
                fresh(v)
            }
        };
        let mut sim = Simulator::new(2, factory, AllAtStart, SimConfig::sequential(1));
        sim.step(&g);
        let node0 = sim.node(NodeId::new(0)).unwrap();
        assert_eq!(node0.palette(), &[1], "palette [d+1]\\{{2}} = {{1}}");
        // Within a couple more rounds node 0 takes color 1.
        let mut out = ColorOutput::Undecided;
        for _ in 0..5 {
            out = sim.step(&g).outputs[0].unwrap();
        }
        assert_eq!(out, ColorOutput::Colored(1));
    }

    #[test]
    fn colors_never_exceed_union_degree_plus_one() {
        let n = 40;
        let footprint = generators::erdos_renyi_avg_degree(
            n,
            5.0,
            &mut dynnet_runtime::rng::experiment_rng(9, "dcolor-deg"),
        );
        let mut sim = Simulator::new(n, fresh, AllAtStart, SimConfig::sequential(11));
        let mut adv = FlipChurnAdversary::new(&footprint, 0.05, 12);
        let rounds = 60;
        let record = drive::run(&mut sim, &mut adv, rounds);
        // The union over the whole execution bounds every legal color.
        let mut union = record.graph_at(0);
        for r in 1..rounds {
            union = union.union(&record.graph_at(r));
        }
        for (i, o) in record.outputs_at(rounds - 1).iter().enumerate() {
            if let Some(ColorOutput::Colored(c)) = o {
                assert!(*c <= union.degree(NodeId::new(i)) + 1);
            }
        }
    }
}
