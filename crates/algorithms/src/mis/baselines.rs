//! Baseline MIS strategies for comparison experiments.
//!
//! * [`RestartMis`] — restart Luby from scratch every `period` rounds (the
//!   recovery-period strawman from the introduction).
//! * [`oracle_mis`] — centralized greedy MIS of a snapshot.

use crate::mis::luby::{LubyMis, LubyMsg};
use dynnet_core::MisOutput;
use dynnet_graph::{algo, Graph, NodeId};
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};

/// Restart-from-scratch baseline: a fresh [`LubyMis`] instance every
/// `period` rounds.
#[derive(Clone, Debug)]
pub struct RestartMis {
    node: NodeId,
    period: u64,
    rounds_since_restart: u64,
    inner: LubyMis,
    restarts: u64,
}

impl RestartMis {
    /// Creates the baseline with the given restart period (≥ 1).
    pub fn new(node: NodeId, period: u64) -> Self {
        assert!(period >= 1);
        RestartMis {
            node,
            period,
            rounds_since_restart: 0,
            inner: LubyMis::new(node),
            restarts: 0,
        }
    }

    /// Number of restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

impl NodeAlgorithm for RestartMis {
    type Msg = LubyMsg;
    type Output = MisOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> LubyMsg {
        if self.rounds_since_restart == self.period {
            self.inner = LubyMis::new(self.node);
            self.rounds_since_restart = 0;
            self.restarts += 1;
        }
        self.rounds_since_restart += 1;
        self.inner.send(ctx)
    }

    fn receive(&mut self, ctx: &mut NodeContext<'_>, inbox: &[Incoming<LubyMsg>]) {
        self.inner.receive(ctx, inbox);
    }

    fn output(&self) -> MisOutput {
        self.inner.output()
    }
}

/// Centralized greedy MIS of a snapshot, in the distributed output format.
pub fn oracle_mis(g: &Graph) -> Vec<MisOutput> {
    let mis = algo::greedy_mis(g);
    (0..g.num_nodes())
        .map(|i| {
            // INVARIANT: greedy_mis returns one flag per node of `g`.
            if mis[i] {
                MisOutput::InMis
            } else if g.is_active(NodeId::new(i)) {
                MisOutput::Dominated
            } else {
                MisOutput::Undecided
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{drive, StaticAdversary};
    use dynnet_core::mis::{domination_violations, independence_violations};
    use dynnet_core::output_churn_series;
    use dynnet_graph::generators;
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    #[test]
    fn restart_baseline_churns_on_static_graphs() {
        let n = 30;
        let g = generators::erdos_renyi_avg_degree(
            n,
            5.0,
            &mut dynnet_runtime::rng::experiment_rng(5, "restart-mis"),
        );
        let period = 20u64;
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| RestartMis::new(v, period),
            AllAtStart,
            SimConfig::sequential(1),
        );
        let mut adv = StaticAdversary::new(g);
        let rounds = 120;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let outputs: Vec<Vec<Option<MisOutput>>> =
            (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
        let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let total_churn: usize = output_churn_series(&outputs, &nodes).iter().sum();
        assert!(total_churn > 2 * n, "got churn {total_churn}");
        assert!(sim.node(NodeId::new(0)).unwrap().restarts() >= 4);
    }

    #[test]
    fn restart_baseline_valid_right_before_restart() {
        let n = 24;
        let g = generators::cycle(n);
        let period = 40u64;
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| RestartMis::new(v, period),
            AllAtStart,
            SimConfig::sequential(2),
        );
        let mut adv = StaticAdversary::new(g.clone());
        let record = drive::run(&mut sim, &mut adv, period as usize);
        let out: Vec<MisOutput> = record
            .outputs_at(period as usize - 1)
            .iter()
            .map(|o| o.unwrap())
            .collect();
        assert_eq!(independence_violations(&g, &out), 0);
        assert_eq!(domination_violations(&g, &out), 0);
    }

    #[test]
    fn oracle_mis_is_maximal() {
        let g = generators::erdos_renyi_avg_degree(
            50,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(6, "oracle-mis"),
        );
        let out = oracle_mis(&g);
        assert_eq!(independence_violations(&g, &out), 0);
        assert_eq!(domination_violations(&g, &out), 0);
        assert!(out.iter().all(|o| *o != MisOutput::Undecided));
    }
}
