//! Algorithm 4: **DMis**, the `O(log n)`-dynamic MIS algorithm (a pipelined
//! Luby variant restricted to the intersection graph).
//!
//! A DMis instance is started with an input configuration `(M, D)` — an
//! independent set plus nodes it dominates — and extends it: nodes never
//! leave `M` or `D` (property A.1). All communication is restricted to the
//! intersection graph of the rounds since the instance started, so edges
//! inserted later can never invalidate the independence of `M` on `G^∩T`
//! (Lemma 5.1, shown deterministically). W.h.p. every node is decided within
//! `T = O(log n)` rounds (Lemma 5.4), which requires a 2-oblivious adversary
//! (Lemma 5.2's remark); see experiment E9 for what an adaptive adversary
//! does to the *running time* (correctness of `M`'s independence is never
//! affected).

use crate::mis::luby::LubyMsg;
use dynnet_core::MisOutput;
use dynnet_graph::NodeId;
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};
use rand::Rng;

/// One DMis instance at one node.
#[derive(Clone, Debug)]
pub struct DMis {
    state: MisOutput,
    /// Neighbors present in every round since the instance started (the
    /// node's view of the intersection graph), sorted ascending; meaningful
    /// only once `started`. A sorted `Vec` instead of a `BTreeSet`: the set
    /// is rebuilt every round for every awake node, and the tree's
    /// per-insert allocations dominated the round kernel at large `n` —
    /// binary-search membership plus a reused double-buffer does the same
    /// job with zero steady-state allocation.
    allowed: Vec<NodeId>,
    /// False exactly until the first round's messages arrive (where everyone
    /// is accepted: `G^{1∩} = G_j`).
    started: bool,
    /// Double-buffer for rebuilding `allowed` while reading it.
    scratch: Vec<NodeId>,
    /// The random number drawn this round (undecided nodes only).
    drawn: Option<f64>,
    /// True while a `Dominated` *input* still has to be re-confirmed by a
    /// mark in the instance's first round (see the robustness note below).
    dominated_unconfirmed: bool,
}

impl DMis {
    /// Creates an instance for node `v` with input state `input`
    /// (`Undecided`, `InMis`, or `Dominated`).
    ///
    /// **Robustness note (documented deviation).** The paper assumes the
    /// input `(M, D)` is a partial solution of the graph one round before
    /// the instance starts; the SMis output can, for exactly one round,
    /// contain a dominated node whose dominators all left `M` in the same
    /// round (possible only when the adversary inserts an edge between two
    /// `M` nodes). To keep the combined algorithm's covering guarantee
    /// airtight, a node whose *input* is `Dominated` re-confirms its
    /// domination in the instance's first round: if it receives no mark it
    /// downgrades itself to `Undecided` and participates normally. In a
    /// locally static neighborhood the dominator is present and marks the
    /// node, so the downgrade never fires there and the locally-static
    /// stability of Theorem 1.1 is unaffected. See DESIGN.md §"Deviations".
    pub fn new(_v: NodeId, input: MisOutput) -> Self {
        DMis {
            state: input,
            allowed: Vec::new(),
            started: false,
            scratch: Vec::new(),
            drawn: None,
            dominated_unconfirmed: input == MisOutput::Dominated,
        }
    }

    /// The node's current view of its intersection-graph neighborhood
    /// (sorted ascending); `None` before the first round's messages arrive.
    pub fn allowed_neighbors(&self) -> Option<&[NodeId]> {
        self.started.then_some(self.allowed.as_slice())
    }
}

impl NodeAlgorithm for DMis {
    type Msg = LubyMsg;
    type Output = MisOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> LubyMsg {
        match self.state {
            MisOutput::InMis => LubyMsg::Mark,
            MisOutput::Dominated => LubyMsg::Silent,
            MisOutput::Undecided => {
                let x: f64 = ctx.rng.gen();
                self.drawn = Some(x);
                LubyMsg::Number(x)
            }
        }
    }

    fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<LubyMsg>]) {
        // A decided node's state is final (nodes never leave `M` or `D` —
        // property A.1) and its intersection view is never consulted again,
        // so skip the per-round view maintenance: `allowed` freezes at its
        // decision-round snapshot. In a converged steady state this makes
        // receive O(1) for almost every node.
        if self.started && self.state != MisOutput::Undecided && !self.dominated_unconfirmed {
            return;
        }

        // Restrict to the intersection graph since the instance's start: the
        // first round accepts everyone (G^{1∩} = G_j), afterwards only nodes
        // that have been neighbors in every round so far.
        self.scratch.clear();
        let mut marked = false;
        let mut min_neighbor = f64::INFINITY;
        for (from, msg) in inbox {
            if self.started && self.allowed.binary_search(from).is_err() {
                continue;
            }
            self.scratch.push(*from);
            match msg {
                LubyMsg::Mark => marked = true,
                LubyMsg::Number(x) => min_neighbor = min_neighbor.min(*x),
                LubyMsg::Silent => {}
            }
        }
        // Senders arrive in CSR row order, which need not be ascending.
        self.scratch.sort_unstable();
        std::mem::swap(&mut self.allowed, &mut self.scratch);
        self.started = true;

        if self.dominated_unconfirmed {
            // First round of an instance started with a `Dominated` input:
            // without a confirming mark the domination is stale, so the node
            // rejoins the undecided pool (see the robustness note on `new`).
            self.dominated_unconfirmed = false;
            if !marked && self.state == MisOutput::Dominated {
                self.state = MisOutput::Undecided;
            }
            if self.state == MisOutput::Dominated {
                return;
            }
        }

        if self.state == MisOutput::Undecided {
            if marked {
                self.state = MisOutput::Dominated;
            } else if let Some(mine) = self.drawn {
                if mine < min_neighbor {
                    self.state = MisOutput::InMis;
                }
            }
        }
    }

    fn output(&self) -> MisOutput {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{drive, FlipChurnAdversary, StaticAdversary};
    use dynnet_core::mis::{domination_violations, independence_violations};
    use dynnet_core::{verify_t_dynamic_run, HasBottom, MisProblem};
    use dynnet_graph::{generators, Graph};
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    fn fresh(v: NodeId) -> DMis {
        DMis::new(v, MisOutput::Undecided)
    }

    #[test]
    fn input_extending_property_a1() {
        let g = generators::complete(6);
        let factory = |v: NodeId| match v.index() {
            0 => DMis::new(v, MisOutput::InMis),
            1 => DMis::new(v, MisOutput::Dominated),
            _ => fresh(v),
        };
        let mut sim = Simulator::new(6, factory, AllAtStart, SimConfig::sequential(1));
        for _ in 0..25 {
            let rep = sim.step(&g);
            assert_eq!(rep.outputs[0], Some(MisOutput::InMis));
            assert_eq!(rep.outputs[1], Some(MisOutput::Dominated));
        }
    }

    #[test]
    fn computes_an_mis_on_a_static_graph() {
        let g = generators::erdos_renyi_avg_degree(
            70,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(2, "dmis"),
        );
        let mut sim = Simulator::new(70, fresh, AllAtStart, SimConfig::sequential(2));
        let mut adv = StaticAdversary::new(g.clone());
        let record = drive::run(&mut sim, &mut adv, 80);
        let out: Vec<MisOutput> = record.outputs_at(79).iter().map(|o| o.unwrap()).collect();
        assert!(out.iter().all(|o| o.is_decided()));
        assert_eq!(independence_violations(&g, &out), 0);
        assert_eq!(domination_violations(&g, &out), 0);
    }

    #[test]
    fn t_dynamic_solution_under_oblivious_churn() {
        let n = 50;
        let footprint = generators::erdos_renyi_avg_degree(
            n,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(3, "dmis-churn"),
        );
        let rounds = 80;
        let mut sim = Simulator::new(n, fresh, AllAtStart, SimConfig::sequential(4));
        let mut adv = FlipChurnAdversary::new(&footprint, 0.02, 7);
        let record = drive::run(&mut sim, &mut adv, rounds);
        let graphs: Vec<Graph> = record.trace.iter().collect();
        let outputs: Vec<Vec<Option<MisOutput>>> =
            (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
        let summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, rounds, rounds - 1);
        assert!(summary.all_valid(), "{:?}", summary.invalid_rounds);
    }

    #[test]
    fn independence_on_persistent_edges_is_deterministic() {
        // Even if the adversary is wildly dynamic, two nodes joined by an
        // edge present since the instance start can never both be in M.
        let n = 30;
        let footprint = generators::complete(n);
        let mut sim = Simulator::new(n, fresh, AllAtStart, SimConfig::sequential(5));
        let mut adv = FlipChurnAdversary::new(&footprint, 0.3, 8);
        let rounds = 40;
        let record = drive::run(&mut sim, &mut adv, rounds);
        // Intersection over the whole run.
        let mut inter = record.graph_at(0);
        for r in 1..rounds {
            inter = inter.intersection(&record.graph_at(r));
        }
        let out: Vec<MisOutput> = record
            .outputs_at(rounds - 1)
            .iter()
            .map(|o| o.unwrap())
            .collect();
        assert_eq!(independence_violations(&inter, &out), 0);
    }

    #[test]
    fn late_edges_are_ignored() {
        // Two nodes that become adjacent after the start can both be in M —
        // the intersection-graph restriction ignores the new edge.
        let n = 2;
        let empty = Graph::new(n);
        let joined = generators::path(2);
        let mut sim = Simulator::new(n, fresh, AllAtStart, SimConfig::sequential(6));
        sim.step(&empty);
        assert_eq!(sim.outputs()[0], Some(MisOutput::InMis));
        assert_eq!(sim.outputs()[1], Some(MisOutput::InMis));
        for _ in 0..5 {
            sim.step(&joined);
        }
        assert_eq!(sim.outputs()[0], Some(MisOutput::InMis));
        assert_eq!(sim.outputs()[1], Some(MisOutput::InMis));
        assert!(sim
            .node(NodeId::new(0))
            .unwrap()
            .allowed_neighbors()
            .unwrap()
            .is_empty());
    }
}
