//! The pipelined variant of Luby's classic MIS algorithm for static graphs
//! (Section 5.1 describes DMis as a modification of it).
//!
//! In every round each undecided node draws a uniform random number and
//! broadcasts it; MIS members broadcast a mark. An undecided node that
//! receives a mark becomes dominated; an undecided node whose number is
//! strictly smaller than all numbers received from undecided neighbors joins
//! the MIS. All rounds are identical, so the algorithm works under
//! asynchronous wake-up.

use dynnet_core::MisOutput;
use dynnet_graph::NodeId;
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};
use rand::Rng;

/// The message broadcast by nodes of the MIS algorithms based on Luby.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LubyMsg {
    /// Sent by MIS members.
    Mark,
    /// Sent by undecided nodes: their random value of this round.
    Number(f64),
    /// Sent by dominated nodes (carries no information).
    Silent,
}

/// Pipelined Luby MIS for static graphs.
#[derive(Clone, Debug)]
pub struct LubyMis {
    state: MisOutput,
    /// The random number drawn in the current round (undecided nodes only).
    drawn: Option<f64>,
}

impl LubyMis {
    /// Creates an undecided node.
    pub fn new(_v: NodeId) -> Self {
        LubyMis {
            state: MisOutput::Undecided,
            drawn: None,
        }
    }

    /// Creates a node with a given initial state (used by tests and by the
    /// restart baseline to warm-start from a previous solution).
    pub fn with_state(_v: NodeId, state: MisOutput) -> Self {
        LubyMis { state, drawn: None }
    }
}

impl NodeAlgorithm for LubyMis {
    type Msg = LubyMsg;
    type Output = MisOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> LubyMsg {
        match self.state {
            MisOutput::InMis => LubyMsg::Mark,
            MisOutput::Dominated => LubyMsg::Silent,
            MisOutput::Undecided => {
                let x: f64 = ctx.rng.gen();
                self.drawn = Some(x);
                LubyMsg::Number(x)
            }
        }
    }

    fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<LubyMsg>]) {
        if self.state != MisOutput::Undecided {
            return;
        }
        let mut marked = false;
        let mut min_neighbor = f64::INFINITY;
        for (_, msg) in inbox {
            match msg {
                LubyMsg::Mark => marked = true,
                LubyMsg::Number(x) => min_neighbor = min_neighbor.min(*x),
                LubyMsg::Silent => {}
            }
        }
        if marked {
            self.state = MisOutput::Dominated;
        } else if let Some(mine) = self.drawn {
            if mine < min_neighbor {
                self.state = MisOutput::InMis;
            }
        }
    }

    fn output(&self) -> MisOutput {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_core::mis::{domination_violations, independence_violations};
    use dynnet_core::HasBottom;
    use dynnet_graph::generators;
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    #[test]
    fn isolated_node_joins_the_mis() {
        let g = dynnet_graph::Graph::new(1);
        let mut sim = Simulator::new(1, LubyMis::new, AllAtStart, SimConfig::sequential(0));
        let rep = sim.step(&g);
        assert_eq!(rep.outputs[0], Some(MisOutput::InMis));
    }

    #[test]
    fn computes_an_mis_on_random_graphs() {
        for seed in 0..5u64 {
            let g = generators::erdos_renyi_avg_degree(
                70,
                7.0,
                &mut dynnet_runtime::rng::experiment_rng(seed, "luby"),
            );
            let mut sim = Simulator::new(70, LubyMis::new, AllAtStart, SimConfig::sequential(seed));
            let reports = sim.run_static(&g, 80);
            let out: Vec<MisOutput> = reports
                .last()
                .unwrap()
                .outputs
                .iter()
                .map(|o| o.unwrap())
                .collect();
            assert!(out.iter().all(|o| o.is_decided()), "seed {seed}");
            assert_eq!(independence_violations(&g, &out), 0, "seed {seed}");
            assert_eq!(domination_violations(&g, &out), 0, "seed {seed}");
        }
    }

    #[test]
    fn decided_nodes_never_change() {
        let g = generators::cycle(15);
        let mut sim = Simulator::new(15, LubyMis::new, AllAtStart, SimConfig::sequential(1));
        let mut prev: Vec<Option<MisOutput>> = vec![None; 15];
        for _ in 0..40 {
            let rep = sim.step(&g);
            #[allow(clippy::needless_range_loop)]
            for i in 0..15 {
                if let Some(s) = prev[i] {
                    if s != MisOutput::Undecided {
                        assert_eq!(rep.outputs[i], Some(s));
                    }
                }
            }
            prev = rep.outputs;
        }
    }

    #[test]
    fn with_state_preserves_initial_configuration() {
        let g = generators::path(3);
        let factory = |v: NodeId| {
            LubyMis::with_state(
                v,
                if v.index() == 0 {
                    MisOutput::InMis
                } else {
                    MisOutput::Undecided
                },
            )
        };
        let mut sim = Simulator::new(3, factory, AllAtStart, SimConfig::sequential(2));
        for _ in 0..15 {
            sim.step(&g);
        }
        assert_eq!(sim.outputs()[0], Some(MisOutput::InMis));
        assert_eq!(sim.outputs()[1], Some(MisOutput::Dominated));
    }
}
