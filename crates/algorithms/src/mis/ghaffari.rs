//! The classic (static-graph) version of Ghaffari's MIS algorithm, pipelined
//! so that every round is identical.
//!
//! This is the algorithm SMis (Algorithm 5) is derived from: the only
//! difference is that here decided nodes never become undecided again —
//! which is correct on a static graph but would violate property B.1 on a
//! dynamic one. It serves as the static baseline for experiment E7 and as a
//! reference implementation for the desire-level dynamics.

use crate::mis::smis::GhaffariMsg;
use dynnet_core::MisOutput;
use dynnet_graph::NodeId;
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};
use rand::Rng;

/// One node of the classic Ghaffari MIS algorithm.
#[derive(Clone, Debug)]
pub struct GhaffariMis {
    state: MisOutput,
    p: f64,
    p_floor: f64,
    candidate: bool,
}

impl GhaffariMis {
    /// Creates an undecided node; `n` is the global node-count upper bound.
    pub fn new(_v: NodeId, n: usize) -> Self {
        GhaffariMis {
            state: MisOutput::Undecided,
            p: 0.5,
            p_floor: 1.0 / (5.0 * n.max(1) as f64),
            candidate: false,
        }
    }

    /// The node's current desire-level.
    pub fn desire_level(&self) -> f64 {
        self.p
    }
}

impl NodeAlgorithm for GhaffariMis {
    type Msg = GhaffariMsg;
    type Output = MisOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> GhaffariMsg {
        match self.state {
            MisOutput::InMis => GhaffariMsg::Mark,
            MisOutput::Dominated => GhaffariMsg::Silent,
            MisOutput::Undecided => {
                self.candidate = ctx.rng.gen_bool(self.p);
                GhaffariMsg::Undecided {
                    p: self.p,
                    candidate: self.candidate,
                }
            }
        }
    }

    fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<GhaffariMsg>]) {
        if self.state != MisOutput::Undecided {
            return;
        }
        let mut mark_received = false;
        let mut candidate_note_received = false;
        let mut effective_degree = 0.0f64;
        for (_, msg) in inbox {
            match msg {
                GhaffariMsg::Mark => mark_received = true,
                GhaffariMsg::Undecided { p, candidate } => {
                    effective_degree += p;
                    if *candidate {
                        candidate_note_received = true;
                    }
                }
                GhaffariMsg::Silent => {}
            }
        }
        self.p = if effective_degree >= 2.0 {
            (self.p / 2.0).max(self.p_floor)
        } else {
            (2.0 * self.p).min(0.5)
        };
        if mark_received {
            self.state = MisOutput::Dominated;
        } else if self.candidate && !candidate_note_received {
            self.state = MisOutput::InMis;
        }
        self.candidate = false;
    }

    fn output(&self) -> MisOutput {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_core::mis::{domination_violations, independence_violations};
    use dynnet_core::HasBottom;
    use dynnet_graph::generators;
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    #[test]
    fn computes_an_mis_on_random_graphs() {
        for seed in 0..4u64 {
            let n = 80;
            let g = generators::erdos_renyi_avg_degree(
                n,
                8.0,
                &mut dynnet_runtime::rng::experiment_rng(seed, "ghaffari"),
            );
            let mut sim = Simulator::new(
                n,
                move |v: NodeId| GhaffariMis::new(v, n),
                AllAtStart,
                SimConfig::sequential(seed),
            );
            let reports = sim.run_static(&g, 120);
            let out: Vec<MisOutput> = reports
                .last()
                .unwrap()
                .outputs
                .iter()
                .map(|o| o.unwrap())
                .collect();
            assert!(out.iter().all(|o| o.is_decided()), "seed {seed}");
            assert_eq!(independence_violations(&g, &out), 0, "seed {seed}");
            assert_eq!(domination_violations(&g, &out), 0, "seed {seed}");
        }
    }

    #[test]
    fn decided_nodes_never_revert() {
        let n = 30;
        let g = generators::complete(n);
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| GhaffariMis::new(v, n),
            AllAtStart,
            SimConfig::sequential(9),
        );
        let mut prev: Vec<Option<MisOutput>> = vec![None; n];
        for _ in 0..80 {
            let rep = sim.step(&g);
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                if let Some(s) = prev[i] {
                    if s != MisOutput::Undecided {
                        assert_eq!(rep.outputs[i], Some(s));
                    }
                }
            }
            prev = rep.outputs;
        }
    }

    #[test]
    fn desire_levels_decay_in_dense_graphs() {
        let n = 40;
        let g = generators::complete(n);
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| GhaffariMis::new(v, n),
            AllAtStart,
            SimConfig::sequential(10),
        );
        for _ in 0..6 {
            sim.step(&g);
        }
        // In K_40 the effective degree starts near 20, so undecided nodes
        // must have halved their desire-level several times by now.
        let some_undecided_low = (0..n).any(|i| {
            let node = sim.node(NodeId::new(i)).unwrap();
            node.output() == MisOutput::Undecided && node.desire_level() < 0.2
        });
        let all_decided =
            (0..n).all(|i| sim.node(NodeId::new(i)).unwrap().output() != MisOutput::Undecided);
        assert!(some_undecided_low || all_decided);
    }
}
