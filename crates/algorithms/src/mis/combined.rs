//! Corollary 1.3: the combined dynamic MIS algorithm.
//!
//! `Concat` (Theorem 1.1) applied to the `(O(log n), 2)`-network-static
//! [`SMis`] and the `O(log n)`-dynamic [`DMis`]: in every round the output is
//! a `T`-dynamic MIS (independent on `G^∩T`, dominating on `G^∪T`), and the
//! output of a node whose 2-neighborhood is static during `[r, r2]` does not
//! change during `[r + 2T, r2]`.

use crate::mis::dmis::DMis;
use crate::mis::smis::SMis;
use dynnet_core::concat::{Concat, ConcatFactory};
use dynnet_core::MisOutput;
use dynnet_graph::NodeId;

/// Factory closure type for SMis instances (captures `n`).
pub type SMisFactory = Box<dyn Fn(NodeId) -> SMis + Send + Sync>;
/// Factory type for DMis instances.
pub type DMisFactory = fn(NodeId, MisOutput) -> DMis;

/// The combined algorithm's per-node type.
pub type DynamicMis = Concat<SMis, DMis, DMisFactory>;

/// The simulator factory for the combined MIS algorithm of Corollary 1.3.
pub type DynamicMisFactory = ConcatFactory<SMis, DMis, SMisFactory, DMisFactory>;

/// Builds the Corollary 1.3 algorithm for a universe of `n` nodes with window
/// size `window` (use [`dynnet_core::recommended_window`] for the default).
pub fn dynamic_mis(n: usize, window: usize) -> DynamicMisFactory {
    let sfactory: SMisFactory = Box::new(move |v: NodeId| SMis::new(v, n));
    ConcatFactory::new(window, sfactory, DMis::new as DMisFactory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{
        drive, FlipChurnAdversary, LocallyStaticAdversary, MobilityAdversary, MobilityConfig,
        StaticAdversary,
    };
    use dynnet_core::mis::{domination_violations, independence_violations};
    use dynnet_core::{recommended_window, verify_t_dynamic_run, HasBottom, MisProblem};
    use dynnet_graph::{generators, Graph};
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    #[test]
    fn t_dynamic_mis_in_every_round_under_churn() {
        let n = 48;
        let window = recommended_window(n);
        let footprint = generators::erdos_renyi_avg_degree(
            n,
            5.0,
            &mut dynnet_runtime::rng::experiment_rng(11, "combined-mis"),
        );
        let mut sim = Simulator::new(
            n,
            dynamic_mis(n, window),
            AllAtStart,
            SimConfig::sequential(7),
        );
        let mut adv = FlipChurnAdversary::new(&footprint, 0.03, 13);
        let rounds = window * 3;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let graphs: Vec<Graph> = record.trace.iter().collect();
        let outputs: Vec<Vec<Option<MisOutput>>> =
            (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
        let summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);
        assert!(
            summary.all_valid(),
            "invalid rounds: {:?}",
            summary.invalid_rounds
        );
    }

    #[test]
    fn static_graph_yields_a_plain_mis_that_freezes() {
        let n = 42;
        let window = recommended_window(n);
        let g = generators::random_geometric(
            n,
            0.25,
            &mut dynnet_runtime::rng::experiment_rng(12, "combined-mis-static"),
        );
        let mut sim = Simulator::new(
            n,
            dynamic_mis(n, window),
            AllAtStart,
            SimConfig::sequential(8),
        );
        let mut adv = StaticAdversary::new(g.clone());
        let rounds = window * 3;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let out: Vec<MisOutput> = record
            .outputs_at(rounds - 1)
            .iter()
            .map(|o| o.unwrap())
            .collect();
        assert!(out.iter().all(|o| o.is_decided()));
        assert_eq!(independence_violations(&g, &out), 0);
        assert_eq!(domination_violations(&g, &out), 0);
        let freeze_from = 2 * window;
        let reference = record.outputs_at(freeze_from).to_vec();
        for r in freeze_from..rounds {
            assert_eq!(record.outputs_at(r), &reference[..], "changed in round {r}");
        }
    }

    #[test]
    fn locally_static_region_stabilizes_within_two_windows() {
        let n = 49;
        let window = recommended_window(n);
        let base = generators::grid(7, 7);
        let seed_node = dynnet_graph::NodeId::new(24);
        let mut adv = LocallyStaticAdversary::new(base, vec![seed_node], 2, 0.25, 37);
        let mut sim = Simulator::new(
            n,
            dynamic_mis(n, window),
            AllAtStart,
            SimConfig::sequential(9),
        );
        let rounds = window * 4;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let stable_from = 2 * window;
        let reference = record.outputs_at(stable_from)[seed_node.index()].unwrap();
        assert!(reference.is_decided());
        for r in stable_from..rounds {
            assert_eq!(record.outputs_at(r)[seed_node.index()].unwrap(), reference);
        }
    }

    #[test]
    fn works_under_mobility() {
        let n = 40;
        let window = recommended_window(n);
        let mut adv = MobilityAdversary::new(
            MobilityConfig {
                n,
                radius: 0.25,
                min_speed: 0.002,
                max_speed: 0.01,
            },
            41,
        );
        let mut sim = Simulator::new(
            n,
            dynamic_mis(n, window),
            AllAtStart,
            SimConfig::sequential(10),
        );
        let rounds = window * 3;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let graphs: Vec<Graph> = record.trace.iter().collect();
        let outputs: Vec<Vec<Option<MisOutput>>> =
            (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
        let summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);
        assert!(
            summary.all_valid(),
            "invalid rounds: {:?}",
            summary.invalid_rounds
        );
    }
}
