//! Algorithm 5: **SMis**, the `(O(log n), α = 2)`-network-static MIS
//! algorithm — a modified, pipelined version of Ghaffari's algorithm in
//! which nodes can *leave* the MIS or the dominated set again when the
//! dynamic topology invalidates their state.
//!
//! Every node keeps a desire-level `p(v) ∈ [1/(5n), 1/2]` (initially `1/2`).
//! Per round: MIS members broadcast a mark; undecided nodes become a
//! candidate with probability `p(v)` and broadcast `(p(v), candidate?)`.
//! After receiving, an undecided node updates `p(v)` based on its effective
//! degree `δ(v) = Σ_{undecided neighbors} p(u)`, joins `D` if it was marked,
//! joins `M` if it is an unchallenged candidate; an MIS member that receives
//! a mark leaves `M`, and a dominated node that receives no mark leaves `D`.
//!
//! Properties: B.1 — the output is a valid partial solution for the current
//! graph in every round; B.2 — if a node's 2-neighborhood is static for
//! `O(log n)` rounds it is decided and never changes again (Lemma 5.6,
//! golden-round argument).

use dynnet_core::MisOutput;
use dynnet_graph::NodeId;
use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};
use rand::Rng;

/// The message broadcast by SMis / Ghaffari nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GhaffariMsg {
    /// Sent by MIS members.
    Mark,
    /// Sent by undecided nodes: desire-level and whether the node is a
    /// candidate this round.
    Undecided {
        /// The sender's current desire-level `p(u)`.
        p: f64,
        /// Whether the sender became a candidate this round.
        candidate: bool,
    },
    /// Sent by dominated nodes.
    Silent,
}

/// One SMis node.
#[derive(Clone, Debug)]
pub struct SMis {
    state: MisOutput,
    /// Desire-level `p(v)`, bounded to `[1/(5n), 1/2]`.
    p: f64,
    /// Lower bound `1/(5n)`.
    p_floor: f64,
    /// Whether this node became a candidate in the current round.
    candidate: bool,
    /// Number of state changes M→U / D→U (analysis metric).
    undo_events: u64,
}

impl SMis {
    /// Creates an undecided SMis node; `n` is the global upper bound on the
    /// number of nodes (needed for the `1/(5n)` desire-level floor).
    pub fn new(_v: NodeId, n: usize) -> Self {
        SMis {
            state: MisOutput::Undecided,
            p: 0.5,
            p_floor: 1.0 / (5.0 * n.max(1) as f64),
            candidate: false,
            undo_events: 0,
        }
    }

    /// Creates a node with a given initial state (e.g. to warm-start from a
    /// previous configuration, as allowed by the algorithm's input).
    pub fn with_state(v: NodeId, n: usize, state: MisOutput) -> Self {
        let mut s = SMis::new(v, n);
        s.state = state;
        s
    }

    /// The node's current desire-level.
    pub fn desire_level(&self) -> f64 {
        self.p
    }

    /// How often the node has left `M` or `D` again.
    pub fn undo_events(&self) -> u64 {
        self.undo_events
    }
}

impl NodeAlgorithm for SMis {
    type Msg = GhaffariMsg;
    type Output = MisOutput;

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> GhaffariMsg {
        match self.state {
            MisOutput::InMis => GhaffariMsg::Mark,
            MisOutput::Dominated => GhaffariMsg::Silent,
            MisOutput::Undecided => {
                self.candidate = ctx.rng.gen_bool(self.p);
                GhaffariMsg::Undecided {
                    p: self.p,
                    candidate: self.candidate,
                }
            }
        }
    }

    fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<GhaffariMsg>]) {
        let mut mark_received = false;
        let mut candidate_note_received = false;
        let mut effective_degree = 0.0f64;
        for (_, msg) in inbox {
            match msg {
                GhaffariMsg::Mark => mark_received = true,
                GhaffariMsg::Undecided { p, candidate } => {
                    effective_degree += p;
                    if *candidate {
                        candidate_note_received = true;
                    }
                }
                GhaffariMsg::Silent => {}
            }
        }

        match self.state {
            MisOutput::Undecided => {
                // Update the desire-level from the effective degree δ(v).
                self.p = if effective_degree >= 2.0 {
                    (self.p / 2.0).max(self.p_floor)
                } else {
                    (2.0 * self.p).min(0.5)
                };
                if mark_received {
                    self.state = MisOutput::Dominated;
                } else if self.candidate && !candidate_note_received {
                    self.state = MisOutput::InMis;
                }
            }
            MisOutput::InMis => {
                // Two adjacent MIS members mark each other and both step back.
                if mark_received {
                    self.state = MisOutput::Undecided;
                    self.undo_events += 1;
                }
            }
            MisOutput::Dominated => {
                // Domination lost (the dominating neighbor vanished or left M).
                if !mark_received {
                    self.state = MisOutput::Undecided;
                    self.undo_events += 1;
                }
            }
        }
        self.candidate = false;
    }

    fn output(&self) -> MisOutput {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{drive, FlipChurnAdversary, LocallyStaticAdversary, StaticAdversary};
    use dynnet_core::{DynamicProblem, HasBottom, MisProblem};
    use dynnet_graph::{generators, Graph};
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    fn factory(n: usize) -> impl Fn(NodeId) -> SMis + Copy {
        move |v: NodeId| SMis::new(v, n)
    }

    #[test]
    fn every_round_is_a_valid_partial_solution_b1() {
        // Property B.1: in every round, the decided part of the output is a
        // valid partial solution of the current graph. The *packing* part
        // (no two adjacent MIS members) holds strictly. For the *covering*
        // part the provable guarantee is that every dominated node had an
        // MIS neighbor at the beginning of the round — when the adversary
        // inserts an edge between two MIS members, their dominated neighbors
        // can be orphaned for exactly one round before they notice (see the
        // robustness note on `DMis::new`). The check below therefore accepts
        // a dominator from either the current or the previous round.
        let n = 40;
        let footprint = generators::erdos_renyi_avg_degree(
            n,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(5, "smis"),
        );
        let mut sim = Simulator::new(n, factory(n), AllAtStart, SimConfig::sequential(3));
        let mut adv = FlipChurnAdversary::new(&footprint, 0.08, 11);
        let rounds = 70;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let p = MisProblem;
        let mut orphan_rounds = 0usize;
        for r in 0..rounds {
            let g = record.graph_at(r);
            let out: Vec<MisOutput> = record
                .outputs_at(r)
                .iter()
                .map(|o| o.unwrap_or(MisOutput::Undecided))
                .collect();
            let prev: Vec<MisOutput> = if r == 0 {
                vec![MisOutput::Undecided; n]
            } else {
                record
                    .outputs_at(r - 1)
                    .iter()
                    .map(|o| o.unwrap_or(MisOutput::Undecided))
                    .collect()
            };
            for v in g.nodes() {
                // Packing: strict.
                assert!(
                    p.partial_packing_ok_at(&g, v, &out),
                    "packing part of B.1 violated at {v} in round {r}"
                );
                // Covering: current-or-previous-round dominator.
                if out[v.index()] == MisOutput::Dominated {
                    let dominated_now = p.partial_covering_ok_at(&g, v, &out);
                    let dominated_before = g.neighbors(v).any(|w| prev[w.index()].in_mis());
                    assert!(
                        dominated_now || dominated_before,
                        "covering part of B.1 violated at {v} in round {r}"
                    );
                    if !dominated_now {
                        orphan_rounds += 1;
                    }
                }
            }
        }
        // Orphaned domination must be rare (it needs an adversarial M–M edge).
        assert!(
            orphan_rounds < rounds,
            "orphaned domination should be transient"
        );
    }

    #[test]
    fn converges_to_an_mis_on_a_static_graph_and_freezes() {
        let n = 60;
        let g = generators::erdos_renyi_avg_degree(
            n,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(6, "smis-static"),
        );
        let mut sim = Simulator::new(n, factory(n), AllAtStart, SimConfig::sequential(4));
        let mut adv = StaticAdversary::new(g.clone());
        let rounds = 150;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let final_out: Vec<MisOutput> = record
            .outputs_at(rounds - 1)
            .iter()
            .map(|o| o.unwrap())
            .collect();
        assert!(final_out.iter().all(|o| o.is_decided()));
        assert_eq!(dynnet_core::mis::independence_violations(&g, &final_out), 0);
        assert_eq!(dynnet_core::mis::domination_violations(&g, &final_out), 0);
        // Frozen over the last third of the run.
        let reference = record.outputs_at(2 * rounds / 3);
        for r in (2 * rounds / 3)..rounds {
            assert_eq!(record.outputs_at(r), reference, "changed in round {r}");
        }
    }

    #[test]
    fn adjacent_mis_members_step_back() {
        // Force two adjacent nodes into M and check that both leave it within
        // one round and that domination repair follows.
        let g = generators::path(2);
        let factory = |v: NodeId| SMis::with_state(v, 2, MisOutput::InMis);
        let mut sim = Simulator::new(2, factory, AllAtStart, SimConfig::sequential(5));
        let rep = sim.step(&g);
        assert_eq!(rep.outputs[0], Some(MisOutput::Undecided));
        assert_eq!(rep.outputs[1], Some(MisOutput::Undecided));
        assert!(sim.node(NodeId::new(0)).unwrap().undo_events() >= 1);
        // Eventually exactly one of them is in M and the other dominated.
        let mut last = (MisOutput::Undecided, MisOutput::Undecided);
        for _ in 0..50 {
            let rep = sim.step(&g);
            last = (rep.outputs[0].unwrap(), rep.outputs[1].unwrap());
        }
        assert!(matches!(
            last,
            (MisOutput::InMis, MisOutput::Dominated) | (MisOutput::Dominated, MisOutput::InMis)
        ));
    }

    #[test]
    fn dominated_node_recovers_when_dominator_disappears() {
        // Node 1 dominated by node 0; remove the edge: node 1 must become
        // undecided and then (isolated) join M itself.
        let joined = generators::path(2);
        let empty = Graph::new(2);
        let factory = |v: NodeId| {
            SMis::with_state(
                v,
                2,
                if v.index() == 0 {
                    MisOutput::InMis
                } else {
                    MisOutput::Dominated
                },
            )
        };
        let mut sim = Simulator::new(2, factory, AllAtStart, SimConfig::sequential(6));
        sim.step(&joined);
        assert_eq!(sim.outputs()[1], Some(MisOutput::Dominated));
        sim.step(&empty);
        assert_eq!(sim.outputs()[1], Some(MisOutput::Undecided));
        let mut last = MisOutput::Undecided;
        for _ in 0..30 {
            last = sim.step(&empty).outputs[1].unwrap();
        }
        assert_eq!(last, MisOutput::InMis);
    }

    #[test]
    fn desire_level_stays_within_bounds() {
        let n = 25;
        let g = generators::complete(n);
        let mut sim = Simulator::new(n, factory(n), AllAtStart, SimConfig::sequential(7));
        for _ in 0..60 {
            sim.step(&g);
            for i in 0..n {
                let p = sim.node(NodeId::new(i)).unwrap().desire_level();
                assert!(p >= 1.0 / (5.0 * n as f64) - 1e-12 && p <= 0.5 + 1e-12);
            }
        }
    }

    #[test]
    fn locally_static_nodes_decide_and_freeze_b2() {
        let base = generators::grid(7, 7);
        let seed_node = NodeId::new(24);
        let n = 49;
        let mut adv = LocallyStaticAdversary::new(base, vec![seed_node], 2, 0.3, 23);
        let mut sim = Simulator::new(n, factory(n), AllAtStart, SimConfig::sequential(8));
        let rounds = 160;
        let record = drive::run(&mut sim, &mut adv, rounds);
        let stable_from = 80;
        let reference = record.outputs_at(stable_from)[seed_node.index()].unwrap();
        assert!(
            reference.is_decided(),
            "protected node decided after O(log n) rounds"
        );
        for r in stable_from..rounds {
            assert_eq!(record.outputs_at(r)[seed_node.index()].unwrap(), reference);
        }
    }
}
