//! # dynnet-algorithms
//!
//! The concrete algorithms of *"Local Distributed Algorithms in Highly
//! Dynamic Networks"* plus static baselines and an application layer:
//!
//! **Coloring** (Section 4):
//! * [`coloring::BasicColoring`] — Algorithm 6, the pipelined basic
//!   randomized (degree+1)-coloring for static graphs.
//! * [`coloring::DColor`] — Algorithm 2, the `O(log n)`-dynamic coloring
//!   algorithm (communication restricted to the intersection graph).
//! * [`coloring::SColor`] — Algorithm 3, the `(O(log n), 2)`-network-static
//!   coloring algorithm (nodes uncolor themselves when invalidated).
//! * [`coloring::dynamic_coloring`] — Corollary 1.2: `Concat(SColor, DColor)`.
//! * [`coloring::RestartColoring`], [`coloring::oracle_coloring`] — baselines.
//!
//! **MIS** (Section 5):
//! * [`mis::LubyMis`] — pipelined Luby for static graphs.
//! * [`mis::DMis`] — Algorithm 4, the `O(log n)`-dynamic MIS algorithm.
//! * [`mis::GhaffariMis`] — classic pipelined Ghaffari for static graphs.
//! * [`mis::SMis`] — Algorithm 5, the `(O(log n), 2)`-network-static MIS
//!   algorithm (nodes may leave `M`/`D` again).
//! * [`mis::dynamic_mis`] — Corollary 1.3: `Concat(SMis, DMis)`.
//! * [`mis::RestartMis`], [`mis::oracle_mis`] — baselines.
//!
//! **Applications**:
//! * [`apps::tdma`] — TDMA slot assignment and contention resolution built on
//!   the coloring output (the paper's motivating application).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Application layer built on the algorithms (TDMA slot assignment).
pub mod apps {
    pub mod tdma;
}

/// Vertex-coloring algorithms (Section 4 of the paper).
pub mod coloring {
    pub mod baselines;
    pub mod basic;
    pub mod combined;
    pub mod dcolor;
    pub mod scolor;

    pub use baselines::{oracle_coloring, RestartColoring};
    pub use basic::{BasicColoring, ColorMsg};
    pub use combined::{dynamic_coloring, DynamicColoring, DynamicColoringFactory};
    pub use dcolor::DColor;
    pub use scolor::SColor;
}

/// MIS algorithms (Section 5 of the paper).
pub mod mis {
    pub mod baselines;
    pub mod combined;
    pub mod dmis;
    pub mod ghaffari;
    pub mod luby;
    pub mod smis;

    pub use baselines::{oracle_mis, RestartMis};
    pub use combined::{dynamic_mis, DynamicMis, DynamicMisFactory};
    pub use dmis::DMis;
    pub use ghaffari::GhaffariMis;
    pub use luby::{LubyMis, LubyMsg};
    pub use smis::{GhaffariMsg, SMis};
}

pub use coloring::{BasicColoring, DColor, SColor};
pub use mis::{DMis, GhaffariMis, LubyMis, SMis};
