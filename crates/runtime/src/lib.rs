//! # dynnet-runtime
//!
//! Synchronous round-based distributed simulation engine for the `dynnet`
//! reproduction of *"Local Distributed Algorithms in Highly Dynamic
//! Networks"*.
//!
//! The engine implements the paper's execution model (Section 2): in every
//! round the adversary supplies a communication graph, every awake node
//! broadcasts one message to its current neighbors, receives its neighbors'
//! messages, performs local computation, and produces an output. Nodes may
//! wake up asynchronously and never need a common round counter.
//!
//! * [`NodeAlgorithm`] — the per-node algorithm abstraction (send → receive →
//!   output per round).
//! * [`Simulator`] — drives one algorithm over a dynamic graph; sequential or
//!   rayon-parallel per-node phases with bit-identical results. The
//!   delta-native round primitive (`Simulator::step_delta`) patches a
//!   persistent effective CSR in `O(|δ|)` per round; counters
//!   (`Simulator::delta_stats`) pin the zero-clone/zero-rebuild invariant.
//!   Each round's [`StepSummary`] also carries the exact *output churn*
//!   (`changed_outputs`), tracked at publication time, which downstream
//!   incremental consumers (the `O(|δ| + churn)` T-dynamic verifier in
//!   `dynnet-core`) rely on to skip full output scans.
//! * [`observer`] — streaming [`RoundObserver`]s fed a borrowed [`RoundView`]
//!   per round (trace recording, churn stats, convergence tracking) instead
//!   of materializing `O(n · rounds)` report vectors.
//! * [`rng`] — deterministic per-(seed, node, round) randomness.
//! * [`wakeup`] — asynchronous wake-up schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod node_state;
pub mod observer;
pub mod rng;
pub mod simulator;
pub mod wakeup;

pub use algorithm::{AlgorithmFactory, Incoming, NodeAlgorithm, NodeContext};
pub use observer::{
    ChurnStats, ConvergenceTracker, DeltaLogRecorder, ExecutionRecord, MetricsObserver,
    ObserverFactory, RoundObserver, RoundView, TraceRecorder,
};
pub use simulator::{DeltaStats, RoundReport, SimConfig, Simulator, StepSummary};
pub use wakeup::{AllAtStart, RandomWakeup, ScriptedWakeup, Staggered, WakeupSchedule};
