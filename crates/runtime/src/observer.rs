//! Streaming round observers.
//!
//! The paper's guarantees are statements about *whole executions*; the
//! original API forced callers to materialize every round (`Vec<RoundReport>`
//! with a full graph + output clone per round, `O(n · rounds)` memory) and
//! run verification as a post-hoc pass. A [`RoundObserver`] instead receives
//! a borrowed [`RoundView`] right after each round executes, so metrics,
//! T-dynamic verification, and trace recording run *while* the execution
//! streams by, each keeping only the state it actually needs (an `O(window)`
//! ring of graphs for verification, `O(n)` for churn tracking, deltas for
//! trace recording).
//!
//! Built-in observers:
//!
//! * [`TraceRecorder`] — records the dynamic graph sequence (and, unless
//!   constructed with [`TraceRecorder::graphs_only`], the per-round reports)
//!   into an [`ExecutionRecord`].
//! * [`DeltaLogRecorder`] — streams the graph sequence to an on-disk delta
//!   log (`dynnet_graph::codec`) in `O(1)` memory in the number of rounds,
//!   for million-round traces that must survive the process.
//! * [`ChurnStats`] — per-round and per-node output-change counters.
//! * [`ConvergenceTracker`] — per-node wake-up and first-decision rounds.
//! * [`MetricsObserver`] — mirrors round/churn/awake/delta counters into the
//!   unified `dynnet-obs` metric registry (`sim.*`), and stamps pool and
//!   trace-buffer totals (`pool.*`, `obs.*`) at the end of the execution.
//!
//! The streaming T-dynamic verifier lives in `dynnet-core`
//! (`TDynamicVerifier`) because it needs the problem definitions.

use crate::simulator::RoundReport;
use dynnet_graph::{
    CodecError, CsrGraph, DeltaLogWriter, DynamicGraphTrace, Graph, GraphDelta, LogStats, NodeId,
};
use std::cell::OnceCell;
use std::sync::Arc;

/// Borrowed view of one executed round, handed to [`RoundObserver::on_round`].
pub struct RoundView<'a, O> {
    /// The round that was executed (0-based).
    pub round: u64,
    /// The effective communication graph `G_r` over `V_r` (shared snapshot;
    /// clone the `Arc` to retain it beyond the callback).
    pub graph: &'a Arc<CsrGraph>,
    /// The change of the effective graph relative to the previous round,
    /// when the round was driven by a delta (`None` on round 0 and on
    /// whole-graph rounds; still `Some`, with valid data, when a dense
    /// delta fell back to a full CSR rebuild). Delta-aware observers —
    /// trace recording, window maintenance — consume this instead of
    /// diffing or converting whole graphs.
    pub delta: Option<&'a GraphDelta>,
    /// Output of every node at the end of the round (`None` = still asleep).
    pub outputs: &'a [Option<O>],
    /// Nodes whose output changed this round (the round's *output churn*),
    /// when the producer tracked it — the simulator always does
    /// ([`crate::StepSummary::changed_outputs`]). `None` means "unknown":
    /// consumers must diff `outputs` themselves. When `Some`, the list is
    /// exact — every node not listed has the same output as last round — so
    /// churn-driven consumers (e.g. the incremental T-dynamic verifier) can
    /// skip the `O(n)` scan.
    pub changed_outputs: Option<&'a [NodeId]>,
    /// Nodes that woke up in this round.
    pub newly_awake: &'a [NodeId],
    /// Number of awake nodes at the end of the round.
    pub num_awake: usize,
    /// Round-scoped cache behind [`RoundView::current_graph`]: the adjacency
    /// [`Graph`] form of `graph` is built at most once per round no matter
    /// how many observers ask for it. Callers constructing a view supply a
    /// fresh (empty) cell per round.
    pub graph_cell: &'a OnceCell<Graph>,
}

impl<O> RoundView<'_, O> {
    /// The round's communication graph in mutable-adjacency [`Graph`] form
    /// (what [`dynnet_graph::GraphWindow::push`] and most checkers take).
    ///
    /// The conversion from the CSR snapshot is done lazily on first call and
    /// shared across all observers of the round, so any number of observers
    /// cost one conversion total — and rounds nobody inspects cost none.
    pub fn current_graph(&self) -> &Graph {
        self.graph_cell.get_or_init(|| self.graph.to_graph())
    }
}

/// A streaming consumer of an execution, invoked once per round.
///
/// Implementations must not assume the borrowed data outlives the callback;
/// anything worth keeping must be copied out (cheaply, e.g. by cloning the
/// graph `Arc`).
pub trait RoundObserver<O> {
    /// Called after every executed round with a borrowed view of its results.
    fn on_round(&mut self, view: &RoundView<'_, O>);

    /// Called once after the last round of the execution.
    fn finish(&mut self) {}
}

/// Observer pairs observe jointly: each round is streamed to both elements
/// in order. Nest pairs for larger sets. This lets sweep cells hand a whole
/// observer set to a factory-based runner as one value.
impl<O, A: RoundObserver<O>, B: RoundObserver<O>> RoundObserver<O> for (A, B) {
    fn on_round(&mut self, view: &RoundView<'_, O>) {
        self.0.on_round(view);
        self.1.on_round(view);
    }

    fn finish(&mut self) {
        self.0.finish();
        self.1.finish();
    }
}

/// Builds a fresh observer for each scenario of a multi-scenario sweep.
///
/// A sweep executes many scenarios concurrently; observers are stateful and
/// cannot be shared across them, so the sweep engine takes a factory and
/// constructs one observer per scenario on the worker thread that runs it.
/// Blanket-implemented for `Fn() -> Obs` closures:
///
/// ```
/// use dynnet_runtime::observer::{ChurnStats, ObserverFactory};
/// let factory = || ChurnStats::<u32>::new();
/// let _fresh = factory.create();
/// ```
pub trait ObserverFactory<O>: Sync {
    /// The observer type this factory builds.
    type Observer: RoundObserver<O> + Send;

    /// Creates a fresh observer (called once per scenario).
    fn create(&self) -> Self::Observer;
}

impl<O, Obs, F> ObserverFactory<O> for F
where
    Obs: RoundObserver<O> + Send,
    F: Fn() -> Obs + Sync,
{
    type Observer = Obs;

    fn create(&self) -> Obs {
        self()
    }
}

/// The full record of one execution: the dynamic graph sequence plus
/// (optionally) the per-round reports. Produced by [`TraceRecorder`].
pub struct ExecutionRecord<O> {
    /// The dynamic graph sequence of the execution (effective graphs `G_r`).
    pub trace: DynamicGraphTrace,
    /// Per-round reports (same length as the trace; empty if the recorder was
    /// constructed with [`TraceRecorder::graphs_only`]).
    pub reports: Vec<RoundReport<O>>,
}

impl<O> ExecutionRecord<O> {
    /// Number of executed rounds.
    pub fn num_rounds(&self) -> usize {
        self.trace.num_rounds()
    }

    /// The outputs at the end of round `r`.
    ///
    /// Panics if the recorder did not record reports.
    pub fn outputs_at(&self, r: usize) -> &[Option<O>] {
        // INVARIANT: documented caller contract — one report was recorded
        // per executed round, so r must be < num_rounds().
        &self.reports[r].outputs
    }

    /// The communication graph of round `r`.
    pub fn graph_at(&self, r: usize) -> Graph {
        self.trace.graph_at(r)
    }
}

/// Records the execution into an [`ExecutionRecord`].
///
/// By default both the graph sequence and the full per-round reports
/// (including an `O(n)` output clone per round) are recorded — this is the
/// legacy "materialize everything" behavior that `adversary::run` exposes.
/// Use [`TraceRecorder::graphs_only`] to record just the graph sequence
/// (stored as per-round deltas, so memory is proportional to topology change,
/// not `n · rounds`).
pub struct TraceRecorder<O> {
    trace: Option<DynamicGraphTrace>,
    reports: Vec<RoundReport<O>>,
    record_reports: bool,
}

impl<O: Clone> TraceRecorder<O> {
    /// Records the graph sequence and every per-round report.
    pub fn new() -> Self {
        TraceRecorder {
            trace: None,
            reports: Vec::new(),
            record_reports: true,
        }
    }

    /// Records only the graph sequence (no output clones).
    pub fn graphs_only() -> Self {
        TraceRecorder {
            trace: None,
            reports: Vec::new(),
            record_reports: false,
        }
    }

    /// Number of rounds recorded so far.
    pub fn num_rounds(&self) -> usize {
        self.trace.as_ref().map_or(0, |t| t.num_rounds())
    }

    /// The recorded graph sequence, or `None` if no round was recorded.
    pub fn trace(&self) -> Option<&DynamicGraphTrace> {
        self.trace.as_ref()
    }

    /// Consumes the recorder into the graph sequence alone, or `None` if no
    /// round was recorded.
    pub fn into_trace(self) -> Option<DynamicGraphTrace> {
        self.trace
    }

    /// Consumes the recorder into an [`ExecutionRecord`].
    ///
    /// A recorder that never saw a round yields the empty record (a
    /// zero-node, single-round trace with no reports) rather than
    /// panicking — `num_rounds() >= 1` distinguishes a real recording.
    pub fn into_record(self) -> ExecutionRecord<O> {
        ExecutionRecord {
            trace: self
                .trace
                .unwrap_or_else(|| DynamicGraphTrace::new(Graph::new(0))),
            reports: self.reports,
        }
    }
}

impl<O: Clone> Default for TraceRecorder<O> {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl<O: Clone> RoundObserver<O> for TraceRecorder<O> {
    fn on_round(&mut self, view: &RoundView<'_, O>) {
        match (&mut self.trace, view.delta) {
            // Delta path: record the handed delta as-is — no graph
            // conversion, no `GraphDelta::between` recomputation.
            (Some(t), Some(d)) => t.push_delta(d.clone()),
            // Full-rebuild round mid-trace: fall back to diffing.
            (Some(t), None) => t.push(view.current_graph()),
            (None, _) => self.trace = Some(DynamicGraphTrace::new(view.current_graph().clone())),
        }
        if self.record_reports {
            self.reports.push(RoundReport {
                round: view.round,
                graph: Arc::clone(view.graph),
                outputs: view.outputs.to_vec(),
                newly_awake: view.newly_awake.to_vec(),
                num_awake: view.num_awake,
            });
        }
    }
}

/// Streams the dynamic graph sequence to an on-disk delta log instead of
/// RAM, so million-round traces record in `O(1)` memory in the number of
/// rounds.
///
/// Rounds append one framed [`GraphDelta`] record each to the log at the
/// given path (see [`dynnet_graph::codec`] for the wire format): record 0
/// is the initial state expressed as a delta from the all-asleep empty
/// graph, so `dynnet_graph::codec::replay_log` reconstructs the final
/// recorded graph without any side information. A small mirror [`Graph`]
/// (`O(n + m)`, *not* `O(rounds)`) tracks the current topology so rounds
/// that arrive without a delta (full CSR rebuilds) can be diffed.
///
/// IO and encode failures are sticky: the first [`CodecError`] stops the
/// recording and is surfaced by [`DeltaLogRecorder::close`] — observers
/// cannot return errors from `on_round`, and a durability layer must never
/// panic the simulation it records. On success `close` fsyncs the log,
/// bumps the `store.bytes_written` / `store.fsync_count` counters in the
/// unified metric registry, and returns the write-side [`LogStats`]
/// (whose `max_buffered` high-water mark is the bounded-memory evidence
/// the integration tests pin).
pub struct DeltaLogRecorder {
    path: std::path::PathBuf,
    writer: Option<DeltaLogWriter>,
    mirror: Option<Graph>,
    rounds: u64,
    error: Option<CodecError>,
}

impl DeltaLogRecorder {
    /// Creates a recorder that will write (truncating) the delta log at
    /// `path`. The file itself is created on the first observed round,
    /// when the universe size is known.
    pub fn create(path: impl Into<std::path::PathBuf>) -> Self {
        DeltaLogRecorder {
            path: path.into(),
            writer: None,
            mirror: None,
            rounds: 0,
            error: None,
        }
    }

    /// Number of rounds recorded so far.
    pub fn num_rounds(&self) -> u64 {
        self.rounds
    }

    /// The graph after the last recorded round (the mirror the log's
    /// replay must match), or `None` before the first round.
    pub fn final_graph(&self) -> Option<&Graph> {
        self.mirror.as_ref()
    }

    /// Current write-side statistics, if the log was opened.
    pub fn stats(&self) -> Option<LogStats> {
        self.writer.as_ref().map(DeltaLogWriter::stats)
    }

    fn append(&mut self, mut delta: GraphDelta) {
        if self.error.is_some() {
            return;
        }
        delta.normalize();
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.append(&delta) {
                self.error = Some(e);
                return;
            }
        }
        if let Some(m) = &mut self.mirror {
            delta.apply(m);
        }
        self.rounds += 1;
    }

    /// Finishes the log: flushes, fsyncs, stamps the `store.*` counters,
    /// and returns the final statistics — or the first error the recording
    /// hit (a recorder that saw no rounds returns empty stats and writes
    /// nothing).
    pub fn close(mut self) -> Result<LogStats, CodecError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let Some(writer) = self.writer.take() else {
            return Ok(LogStats::default());
        };
        let stats = writer.finish()?;
        let reg = dynnet_obs::registry();
        reg.counter("store.bytes_written").add(stats.bytes_written);
        reg.counter("store.fsync_count").add(stats.fsyncs);
        Ok(stats)
    }
}

impl<O> RoundObserver<O> for DeltaLogRecorder {
    fn on_round(&mut self, view: &RoundView<'_, O>) {
        if self.error.is_some() {
            return;
        }
        if self.writer.is_none() {
            // First round: open the log and write the initial state as a
            // delta from the all-asleep empty graph.
            let g = view.current_graph().clone();
            match DeltaLogWriter::create(&self.path, g.num_nodes()) {
                Ok(w) => self.writer = Some(w),
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
            let initial = GraphDelta::between(&Graph::new_all_asleep(g.num_nodes()), &g);
            self.mirror = Some(Graph::new_all_asleep(g.num_nodes()));
            self.append(initial);
            return;
        }
        match view.delta {
            // Delta path: the handed delta applies to the mirror exactly
            // as it applied to the simulator's graph.
            Some(d) => self.append(d.clone()),
            // Full-rebuild round mid-trace: diff against the mirror.
            None => {
                let delta = match &self.mirror {
                    Some(m) => GraphDelta::between(m, view.current_graph()),
                    None => GraphDelta::default(),
                };
                self.append(delta);
            }
        }
    }
}

/// Streaming output-churn statistics: per round, how many nodes changed their
/// output relative to the previous round (the series starts with a `0` for
/// round 0, matching `output_churn_series`), plus per-node change counters
/// and last-change rounds.
pub struct ChurnStats<O> {
    prev: Option<Vec<Option<O>>>,
    series: Vec<usize>,
    per_node: Vec<usize>,
    last_change: Vec<Option<usize>>,
}

impl<O: Clone + PartialEq> ChurnStats<O> {
    /// Creates an empty churn tracker.
    pub fn new() -> Self {
        ChurnStats {
            prev: None,
            series: Vec::new(),
            per_node: Vec::new(),
            last_change: Vec::new(),
        }
    }

    /// Output changes per round (index 0 is round 0 and always `0`).
    pub fn series(&self) -> &[usize] {
        &self.series
    }

    /// Number of output changes of each node over the whole execution.
    pub fn per_node(&self) -> &[usize] {
        &self.per_node
    }

    /// The last round in which node `v` changed its output, if any.
    pub fn last_change_round(&self, v: NodeId) -> Option<usize> {
        self.last_change.get(v.index()).copied().flatten()
    }

    /// Total output changes from round `from` (inclusive) to the end.
    pub fn total_from(&self, from: usize) -> usize {
        self.series.iter().skip(from).sum()
    }

    /// Mean output changes per round from round `from` (inclusive).
    pub fn rate_from(&self, from: usize) -> f64 {
        let rounds = self.series.len().saturating_sub(from);
        if rounds == 0 {
            0.0
        } else {
            self.total_from(from) as f64 / rounds as f64
        }
    }
}

impl<O: Clone + PartialEq> Default for ChurnStats<O> {
    fn default() -> Self {
        ChurnStats::new()
    }
}

impl<O: Clone + PartialEq> RoundObserver<O> for ChurnStats<O> {
    fn on_round(&mut self, view: &RoundView<'_, O>) {
        if self.per_node.is_empty() {
            self.per_node = vec![0; view.outputs.len()];
            self.last_change = vec![None; view.outputs.len()];
        }
        let changed = match &self.prev {
            None => 0,
            Some(prev) => {
                let mut count = 0;
                for (i, (a, b)) in prev.iter().zip(view.outputs).enumerate() {
                    if a != b {
                        count += 1;
                        self.per_node[i] += 1;
                        self.last_change[i] = Some(view.round as usize);
                    }
                }
                count
            }
        };
        self.series.push(changed);
        self.prev = Some(view.outputs.to_vec());
    }
}

/// Mirrors per-round simulator signals into the unified metric registry
/// ([`dynnet_obs::registry()`]): `sim.rounds`, `sim.output_churn`,
/// `sim.delta_edges`, `sim.newly_awake` accumulate across the execution,
/// `sim.num_awake` is a gauge of the latest round. At
/// [`RoundObserver::finish`] it additionally stamps the worker-pool totals
/// (`pool.*`, from [`rayon::pool_stats`]) and the trace-buffer state
/// (`obs.trace_events` / `obs.trace_dropped`).
///
/// Handles are resolved once at construction, so the per-round path is a
/// handful of relaxed atomic adds — cheap enough to leave attached even in
/// benchmarks. Like every observer, it only reads the round view; it is
/// deterministically inert.
pub struct MetricsObserver {
    rounds: dynnet_obs::CounterHandle,
    output_churn: dynnet_obs::CounterHandle,
    delta_edges: dynnet_obs::CounterHandle,
    newly_awake: dynnet_obs::CounterHandle,
    num_awake: dynnet_obs::CounterHandle,
}

impl MetricsObserver {
    /// Creates an observer bound to the process-wide registry.
    pub fn new() -> Self {
        let reg = dynnet_obs::registry();
        MetricsObserver {
            rounds: reg.counter("sim.rounds"),
            output_churn: reg.counter("sim.output_churn"),
            delta_edges: reg.counter("sim.delta_edges"),
            newly_awake: reg.counter("sim.newly_awake"),
            num_awake: reg.counter("sim.num_awake"),
        }
    }
}

impl Default for MetricsObserver {
    fn default() -> Self {
        MetricsObserver::new()
    }
}

impl<O> RoundObserver<O> for MetricsObserver {
    fn on_round(&mut self, view: &RoundView<'_, O>) {
        self.rounds.inc();
        if let Some(changed) = view.changed_outputs {
            self.output_churn.add(changed.len() as u64);
        }
        if let Some(delta) = view.delta {
            self.delta_edges
                .add((delta.inserted.len() + delta.removed.len()) as u64);
        }
        self.newly_awake.add(view.newly_awake.len() as u64);
        self.num_awake.set(view.num_awake as u64);
    }

    fn finish(&mut self) {
        let reg = dynnet_obs::registry();
        let stats = rayon::pool_stats();
        reg.counter("pool.budget").set(stats.budget as u64);
        reg.counter("pool.workers_spawned")
            .set(stats.workers_spawned as u64);
        reg.counter("pool.tasks_pooled").set(stats.tasks_pooled);
        reg.counter("pool.calls_inline").set(stats.calls_inline);
        reg.counter("pool.peak_active")
            .set(stats.peak_active as u64);
        reg.counter("obs.trace_events")
            .set(dynnet_obs::events_len() as u64);
        reg.counter("obs.trace_dropped")
            .set(dynnet_obs::dropped_events());
    }
}

/// Tracks, per node, the round it woke up and the first round its output
/// satisfied a "decided" predicate, yielding wake-to-decision latencies and
/// the round in which the whole network was first done.
pub struct ConvergenceTracker<O> {
    decided: Box<dyn Fn(&O) -> bool + Send>,
    wake_round: Vec<Option<u64>>,
    decided_round: Vec<Option<u64>>,
    all_done_round: Option<u64>,
}

impl<O> ConvergenceTracker<O> {
    /// Creates a tracker with the given "is this output decided?" predicate.
    pub fn new(decided: impl Fn(&O) -> bool + Send + 'static) -> Self {
        ConvergenceTracker {
            decided: Box::new(decided),
            wake_round: Vec::new(),
            decided_round: Vec::new(),
            all_done_round: None,
        }
    }

    /// The round in which node `v` woke, if observed.
    pub fn wake_round(&self, v: NodeId) -> Option<u64> {
        self.wake_round.get(v.index()).copied().flatten()
    }

    /// The first round in which node `v`'s output was decided, if any.
    pub fn decided_round(&self, v: NodeId) -> Option<u64> {
        self.decided_round.get(v.index()).copied().flatten()
    }

    /// The first round after which every node (the whole universe) was awake
    /// and decided, if that ever happened.
    pub fn all_done_round(&self) -> Option<u64> {
        self.all_done_round
    }

    /// Wake-to-first-decision latency (in rounds) of every node that reached
    /// a decision.
    pub fn latencies(&self) -> Vec<u64> {
        self.wake_round
            .iter()
            .zip(&self.decided_round)
            .filter_map(|(w, d)| Some(d.as_ref()? - w.as_ref()?))
            .collect()
    }
}

impl<O> RoundObserver<O> for ConvergenceTracker<O> {
    fn on_round(&mut self, view: &RoundView<'_, O>) {
        if self.wake_round.is_empty() {
            self.wake_round = vec![None; view.outputs.len()];
            self.decided_round = vec![None; view.outputs.len()];
        }
        for v in view.newly_awake {
            self.wake_round[v.index()] = Some(view.round);
        }
        let mut all_done = true;
        for (i, out) in view.outputs.iter().enumerate() {
            match out {
                Some(o) if (self.decided)(o) => {
                    if self.decided_round[i].is_none() {
                        self.decided_round[i] = Some(view.round);
                    }
                }
                _ => all_done = false,
            }
        }
        if all_done && self.all_done_round.is_none() {
            self.all_done_round = Some(view.round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::{Edge, Graph};

    fn send_round(
        obs: &mut dyn RoundObserver<u32>,
        round: u64,
        graph: &Arc<CsrGraph>,
        outputs: &[Option<u32>],
        newly_awake: &[NodeId],
    ) {
        let graph_cell = OnceCell::new();
        obs.on_round(&RoundView {
            round,
            graph,
            delta: None,
            outputs,
            changed_outputs: None,
            newly_awake,
            num_awake: outputs.len(),
            graph_cell: &graph_cell,
        });
    }

    #[test]
    fn trace_recorder_builds_record() {
        let g0 = Arc::new(CsrGraph::from_graph(&Graph::from_edges(
            3,
            [Edge::of(0, 1)],
        )));
        let g1 = Arc::new(CsrGraph::from_graph(&Graph::from_edges(
            3,
            [Edge::of(1, 2)],
        )));
        let mut rec = TraceRecorder::new();
        send_round(&mut rec, 0, &g0, &[Some(1), None, None], &[NodeId::new(0)]);
        send_round(
            &mut rec,
            1,
            &g1,
            &[Some(1), Some(2), None],
            &[NodeId::new(1)],
        );
        rec.finish();
        assert_eq!(rec.num_rounds(), 2);
        let record = rec.into_record();
        assert_eq!(record.num_rounds(), 2);
        assert_eq!(record.graph_at(1).edge_vec(), vec![Edge::of(1, 2)]);
        assert_eq!(record.outputs_at(1)[1], Some(2));
        assert_eq!(record.reports[0].newly_awake, vec![NodeId::new(0)]);
    }

    #[test]
    fn graphs_only_skips_reports() {
        let g0 = Arc::new(CsrGraph::from_graph(&Graph::from_edges(
            2,
            [Edge::of(0, 1)],
        )));
        let mut rec: TraceRecorder<u32> = TraceRecorder::graphs_only();
        send_round(&mut rec, 0, &g0, &[Some(1), Some(2)], &[]);
        let record = rec.into_record();
        assert_eq!(record.trace.num_rounds(), 1);
        assert!(record.reports.is_empty());
    }

    #[test]
    fn churn_stats_counts_changes() {
        let g = Arc::new(CsrGraph::from_graph(&Graph::new(2)));
        let mut churn = ChurnStats::new();
        send_round(&mut churn, 0, &g, &[Some(0), Some(0)], &[]);
        send_round(&mut churn, 1, &g, &[Some(1), Some(0)], &[]);
        send_round(&mut churn, 2, &g, &[Some(1), Some(2)], &[]);
        send_round(&mut churn, 3, &g, &[Some(1), Some(2)], &[]);
        assert_eq!(churn.series(), &[0, 1, 1, 0]);
        assert_eq!(churn.total_from(0), 2);
        assert_eq!(churn.total_from(2), 1);
        assert_eq!(churn.per_node(), &[1, 1]);
        assert_eq!(churn.last_change_round(NodeId::new(0)), Some(1));
        assert_eq!(churn.last_change_round(NodeId::new(1)), Some(2));
        assert!(churn.rate_from(0) > 0.49 && churn.rate_from(0) < 0.51);
    }

    #[test]
    fn convergence_tracker_latencies() {
        let g = Arc::new(CsrGraph::from_graph(&Graph::new(2)));
        let mut conv = ConvergenceTracker::new(|&o: &u32| o > 0);
        send_round(&mut conv, 0, &g, &[Some(0), None], &[NodeId::new(0)]);
        send_round(&mut conv, 1, &g, &[Some(5), Some(0)], &[NodeId::new(1)]);
        assert_eq!(conv.all_done_round(), None);
        send_round(&mut conv, 2, &g, &[Some(5), Some(7)], &[]);
        assert_eq!(conv.wake_round(NodeId::new(1)), Some(1));
        assert_eq!(conv.decided_round(NodeId::new(0)), Some(1));
        assert_eq!(conv.decided_round(NodeId::new(1)), Some(2));
        assert_eq!(conv.all_done_round(), Some(2));
        assert_eq!(conv.latencies(), vec![1, 1]);
    }
}
