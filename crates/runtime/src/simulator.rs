//! The synchronous round-based simulator.
//!
//! One [`Simulator`] drives one distributed algorithm (one [`NodeAlgorithm`]
//! instance per awake node) over a dynamic graph supplied round-by-round by
//! the caller (usually an adversary from `dynnet-adversary`). Each call to
//! [`Simulator::step`] executes one round of the paper's model:
//!
//! 1. the caller passes the adversary's graph `G_r`,
//! 2. nodes that become active wake up,
//! 3. every awake node broadcasts one message to its current neighbors,
//! 4. every awake node receives its neighbors' messages and updates state,
//! 5. every awake node returns its output.
//!
//! The per-node send and receive phases are embarrassingly parallel; with
//! [`SimConfig::parallel`] enabled they run on rayon. Because node randomness
//! is derived from `(seed, node, round)` (see [`crate::rng`]), sequential and
//! parallel execution produce bit-identical results.
//!
//! ## The cache-conscious round kernel
//!
//! Node state is laid out structure-of-arrays (see [`crate::node_state`]):
//! awake flags in a packed bitset, wake rounds in a dense `u64` array, and
//! the algorithm instances / outputs / round messages in three contiguous
//! arenas indexed by node. The send phase writes each node's message into a
//! **persistent** message buffer in place (no per-round allocation); the
//! receive phase walks `(nodes, outputs)` shard by shard with one reusable
//! shard-local inbox scratch vector, so the hot loops stream linearly and
//! parallel shards never bounce cache lines. Work distribution and the
//! budget-aware parallel threshold are described on
//! [`SimConfig::budget_aware_threshold`].
//!
//! Two round entry points exist: [`Simulator::step_streaming`] takes the
//! whole graph and rebuilds the effective (awake-restricted) CSR snapshot,
//! while [`Simulator::step_delta`] takes the round's [`GraphDelta`] and
//! patches a persistent effective CSR in `O(|δ|)` — the fast path of the
//! delta-native `Scenario` pipeline. Both paths produce identical executions.

use crate::algorithm::{AlgorithmFactory, NodeAlgorithm, NodeContext};
use crate::node_state::AwakeSet;
use crate::rng::node_round_rng;
use crate::wakeup::WakeupSchedule;
use dynnet_graph::{CsrApplyOutcome, CsrGraph, DynamicGraphTrace, Edge, Graph, GraphDelta, NodeId};
use std::sync::Arc;

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Experiment seed; all node randomness derives from it.
    pub seed: u64,
    /// Execute the per-node phases on the rayon thread pool.
    pub parallel: bool,
    /// Minimum number of awake nodes before the parallel path is used
    /// (below this the sequential path is faster).
    pub parallel_threshold: usize,
    /// Scale [`SimConfig::parallel_threshold`] by the thread-budget pressure
    /// (default `true`).
    ///
    /// Per-round parallel setup (chunk planning, pool wakeups, the atomic
    /// ticket) amortizes over the threads a call actually fans out to.
    /// When an outer scheduler — e.g. a sharded sweep — has claimed part of
    /// the budget via `rayon::claim_threads`, the effective width
    /// (`budget / claimed`) shrinks and the same `parallel_threshold` would
    /// let cells pay full setup for a fraction of the fan-out. With this
    /// flag set, the threshold is multiplied by `budget / effective_width`,
    /// and a width of 1 (budget fully claimed, or a single-core budget)
    /// skips the parallel path outright. Purely a scheduling decision:
    /// results are bit-identical either way.
    pub budget_aware_threshold: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            parallel: false,
            parallel_threshold: 512,
            budget_aware_threshold: true,
        }
    }
}

impl SimConfig {
    /// Sequential execution with the given seed.
    pub fn sequential(seed: u64) -> Self {
        SimConfig {
            seed,
            parallel: false,
            ..Default::default()
        }
    }

    /// Rayon-parallel execution with the given seed.
    pub fn parallel(seed: u64) -> Self {
        SimConfig {
            seed,
            parallel: true,
            ..Default::default()
        }
    }
}

/// The result of executing one round, including a full clone of the output
/// vector (the legacy "materialize everything" shape; streaming consumers use
/// [`Simulator::step_streaming`] + [`crate::observer::RoundObserver`] and
/// avoid the per-round `O(n)` output copy).
#[derive(Clone, Debug)]
pub struct RoundReport<O> {
    /// The round that was executed (0-based).
    pub round: u64,
    /// Snapshot of the communication graph `G_r` used in this round (shared,
    /// not cloned: every consumer of the same round sees the same `Arc`).
    pub graph: Arc<CsrGraph>,
    /// Output of every node (`None` for nodes that have not woken up yet —
    /// the paper's nodes outside `V_r`).
    pub outputs: Vec<Option<O>>,
    /// Nodes that woke up in this round.
    pub newly_awake: Vec<NodeId>,
    /// Number of awake nodes at the end of the round.
    pub num_awake: usize,
}

/// The lightweight result of [`Simulator::step_streaming`] /
/// [`Simulator::step_delta`]: everything a
/// [`crate::observer::RoundObserver`] needs that is not borrowed directly
/// from the simulator. Outputs are *not* cloned — observers read them through
/// [`crate::observer::RoundView::outputs`].
#[derive(Clone, Debug)]
pub struct StepSummary {
    /// The round that was executed (0-based).
    pub round: u64,
    /// Snapshot of the effective communication graph `G_r` over `V_r`.
    pub graph: Arc<CsrGraph>,
    /// The change of the *effective* graph relative to the previous round —
    /// `Some` whenever the round went through [`Simulator::step_delta`]
    /// (valid even when a dense delta fell back to a full CSR rebuild),
    /// `None` when no previous-round basis exists: round 0 and the
    /// whole-graph [`Simulator::step_streaming`] entry point.
    pub delta: Option<GraphDelta>,
    /// Nodes that woke up in this round.
    pub newly_awake: Vec<NodeId>,
    /// Number of awake nodes at the end of the round.
    pub num_awake: usize,
    /// Nodes whose published output changed this round (ascending), the
    /// round's *output churn*. A node appears on its wake-up round (its
    /// output goes from `None` to `Some`) and in every round its algorithm
    /// returns a different output than before. Tracked at publication time,
    /// so consumers that only care about the changed nodes — e.g. the
    /// incremental T-dynamic verifier — run in `O(|churn|)` instead of
    /// re-scanning all `n` outputs.
    pub changed_outputs: Vec<NodeId>,
}

/// Counters for the round pipeline's incremental fast path, exposed through
/// [`Simulator::delta_stats`]. A steady-state sparse-churn run performs one
/// full build (round 0) and patches every further round:
/// `full_csr_builds == 1` and `rounds_patched == rounds - 1`. The simulator
/// contains no whole-`Graph` clone site at all — sleeper pruning builds the
/// CSR directly from the adversary graph ([`CsrGraph::from_graph_filtered`])
/// and the delta path only patches — so "zero graph clones" holds by
/// construction, and these counters pin the remaining build/copy events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Rounds whose effective CSR was patched in place from a delta.
    pub rounds_patched: usize,
    /// Full effective-CSR builds: round 0, whole-graph steps, and
    /// dense-delta fallbacks.
    pub full_csr_builds: usize,
    /// Copy-on-write clones of the effective CSR, forced when an observer
    /// retained the previous round's snapshot `Arc` across rounds.
    pub cow_clones: usize,
    /// Arena compactions of the effective CSR (amortized maintenance after
    /// many row relocations; the round itself was still patched in place).
    pub compactions: usize,
}

/// Drives one [`NodeAlgorithm`] over a dynamic graph, one round per
/// [`Simulator::step`] call.
pub struct Simulator<A, F, W>
where
    A: NodeAlgorithm,
    F: AlgorithmFactory<A>,
    W: WakeupSchedule,
{
    n: usize,
    factory: F,
    wakeup: W,
    config: SimConfig,
    /// Per-node algorithm instances, a contiguous arena indexed by node
    /// (`None` = asleep; the niche-optimized `Option` adds no indirection).
    nodes: Vec<Option<A>>,
    /// Published outputs, dense and indexed by node.
    outputs: Vec<Option<A::Output>>,
    /// Persistent send-phase buffer: slot `v` holds the message node `v`
    /// broadcast this round (`None` while `v` is asleep). Filled in place
    /// every round — the kernel performs no per-round `O(n)` allocation.
    messages: Vec<Option<A::Msg>>,
    /// Awake flags, one packed bit per node (SoA hot field).
    awake: AwakeSet,
    /// Round in which each node woke; valid only where the `awake` bit is
    /// set, read only when a `NodeContext` is built (never scanned).
    wake_round: Vec<u64>,
    /// Incrementally maintained count of awake nodes (avoids the per-round
    /// `O(n)` rescans of the awake set in the send/receive phases).
    num_awake: usize,
    /// Nodes that have not woken yet, ascending. The wake-up scan walks this
    /// shrinking list instead of all `n` nodes, so rounds late in a run cost
    /// `O(|sleepers|)` — zero once everyone is awake, and small even when a
    /// few nodes never wake.
    pending_sleepers: Vec<NodeId>,
    /// The effective communication graph of the last executed round (`G_r`
    /// restricted to awake nodes), maintained incrementally across rounds on
    /// the delta path. Shared with observers; copy-on-write if retained.
    effective: Arc<CsrGraph>,
    /// Whether `effective` reflects the previous round (false before round 0).
    effective_valid: bool,
    stats: DeltaStats,
    next_round: u64,
}

impl<A, F, W> Simulator<A, F, W>
where
    A: NodeAlgorithm,
    F: AlgorithmFactory<A>,
    W: WakeupSchedule,
{
    /// Creates a simulator over a universe of `n` nodes.
    pub fn new(n: usize, factory: F, wakeup: W, config: SimConfig) -> Self {
        Simulator {
            n,
            factory,
            wakeup,
            config,
            nodes: (0..n).map(|_| None).collect(),
            outputs: vec![None; n],
            messages: (0..n).map(|_| None).collect(),
            awake: AwakeSet::new(n),
            wake_round: vec![0; n],
            num_awake: 0,
            pending_sleepers: (0..n).map(NodeId::new).collect(),
            effective: Arc::new(CsrGraph::empty(n)),
            effective_valid: false,
            stats: DeltaStats::default(),
            next_round: 0,
        }
    }

    /// The universe size `n`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The next round to be executed.
    pub fn round(&self) -> u64 {
        self.next_round
    }

    /// Returns `true` if node `v` has woken up.
    pub fn is_awake(&self, v: NodeId) -> bool {
        self.awake.contains(v.index())
    }

    /// The round in which node `v` woke, if it has.
    pub fn woke_at(&self, v: NodeId) -> Option<u64> {
        let i = v.index();
        self.awake.contains(i).then(|| self.wake_round[i])
    }

    /// The most recent outputs (as of the last executed round).
    pub fn outputs(&self) -> &[Option<A::Output>] {
        &self.outputs
    }

    /// Number of nodes that have woken up so far.
    pub fn num_awake(&self) -> usize {
        self.num_awake
    }

    /// Immutable access to a node's algorithm instance (testing/inspection).
    pub fn node(&self, v: NodeId) -> Option<&A> {
        self.nodes[v.index()].as_ref()
    }

    /// Executes one round on the communication graph `graph` (the adversary's
    /// `G_r` for `r = self.round()`).
    ///
    /// Nodes that have not woken up yet (because their wake-up schedule has
    /// not fired) are not part of `V_r` in the paper's model; they are pruned
    /// from the *effective* communication graph of the round, which is the
    /// graph reported in [`RoundReport::graph`] and used for message
    /// delivery.
    pub fn step(&mut self, graph: &Graph) -> RoundReport<A::Output> {
        let summary = self.step_streaming(graph);
        RoundReport {
            round: summary.round,
            graph: summary.graph,
            outputs: self.outputs.clone(),
            newly_awake: summary.newly_awake,
            num_awake: summary.num_awake,
        }
    }

    /// Executes one round like [`Simulator::step`], but without cloning the
    /// output vector into the result: consumers read the outputs in place via
    /// [`Simulator::outputs`]. The effective graph (the adversary's graph
    /// restricted to awake nodes) is built directly from `graph` — the old
    /// per-round "clone the whole `Graph`, deactivate the sleepers" dance is
    /// gone. Streaming callers that hold the round's [`GraphDelta`] should
    /// use [`Simulator::step_delta`], which patches the effective graph
    /// incrementally instead of rebuilding it.
    pub fn step_streaming(&mut self, graph: &Graph) -> StepSummary {
        assert_eq!(graph.num_nodes(), self.n, "graph universe mismatch");
        let round = self.next_round;
        let newly_awake = {
            let _span = dynnet_obs::phase_span("round", "wakeup");
            self.run_wakeups(graph, round)
        };
        {
            let _span = dynnet_obs::phase_span("round", "csr_rebuild");
            self.rebuild_effective(graph);
        }
        self.finish_round(round, newly_awake, None)
    }

    /// Executes one round on the graph `graph` (the adversary's `G_r`),
    /// where `delta` is the change from the previous round's adversary graph
    /// to `graph`. The persistent effective CSR is patched in `O(|δ|)`: the
    /// adversary's delta is filtered to awake endpoints, the edges of nodes
    /// waking this round are folded in, and the result is applied in place —
    /// no `Graph` clone, no full CSR rebuild (unless the delta is dense or
    /// no previous state exists). This is the round primitive of the
    /// delta-native `Scenario` pipeline.
    pub fn step_delta(&mut self, graph: &Graph, delta: &GraphDelta) -> StepSummary {
        assert_eq!(graph.num_nodes(), self.n, "graph universe mismatch");
        let round = self.next_round;
        let newly_awake = {
            let _span = dynnet_obs::phase_span("round", "wakeup");
            self.run_wakeups(graph, round)
        };

        if !self.effective_valid {
            {
                let _span = dynnet_obs::phase_span("round", "csr_rebuild");
                self.rebuild_effective(graph);
            }
            return self.finish_round(round, newly_awake, None);
        }

        let mut patch_span = dynnet_obs::phase_span("round", "csr_patch");
        // Translate the adversary's delta into the *effective* delta: the
        // change of the awake-restricted graph relative to last round.
        let prev_csr = &self.effective;
        let awake_set = &self.awake;
        let awake = |v: NodeId| awake_set.contains(v.index());
        let mut eff = GraphDelta::new();
        // Nodes waking this round join the effective graph with their
        // current edges to other awake nodes.
        for &v in &newly_awake {
            eff.woken.push(v);
            for u in graph.neighbors(v) {
                if awake(u) && !prev_csr.has_edge(v, u) {
                    eff.insert(v, u);
                }
            }
        }
        // Adversary re-activations of nodes that are already awake.
        for &v in &delta.woken {
            if awake(v) {
                eff.woken.push(v);
            }
        }
        // An edge listed in both `inserted` and `removed` nets to absent
        // ([`GraphDelta::apply`] inserts before it removes); its insertion
        // must not leak into the effective delta, where the removal half
        // would be dropped by the `prev_csr.has_edge` tightening below.
        let netted_out: Option<std::collections::HashSet<Edge>> =
            if delta.inserted.is_empty() || delta.removed.is_empty() {
                None
            } else {
                Some(delta.removed.iter().copied().collect())
            };
        for e in &delta.inserted {
            // An insertion implicitly activates both endpoints in the
            // adversary graph (`Graph::insert_edge` semantics — and the
            // activation survives even a same-round removal of the edge);
            // propagate it to awake endpoints even when the edge itself is
            // filtered out because its other endpoint is still asleep.
            for w in [e.u, e.v] {
                if awake(w) && !prev_csr.is_active(w) {
                    eff.woken.push(w);
                }
            }
            if netted_out.as_ref().is_some_and(|r| r.contains(e)) {
                continue;
            }
            if awake(e.u) && awake(e.v) && !prev_csr.has_edge(e.u, e.v) {
                eff.inserted.push(*e);
            }
        }
        for e in &delta.removed {
            if prev_csr.has_edge(e.u, e.v) {
                eff.removed.push(*e);
            }
        }
        for &v in &delta.deactivated {
            if prev_csr.is_active(v) {
                eff.deactivated.push(v);
            }
        }
        eff.normalize();
        patch_span.set_arg(
            "delta_edges",
            (eff.inserted.len() + eff.removed.len()) as u64,
        );

        if Arc::strong_count(&self.effective) > 1 {
            // An observer retained last round's snapshot: copy-on-write.
            self.stats.cow_clones += 1;
        }
        let outcome = Arc::make_mut(&mut self.effective).apply_delta(&eff);
        match outcome {
            CsrApplyOutcome::Patched => self.stats.rounds_patched += 1,
            CsrApplyOutcome::Compacted => {
                self.stats.rounds_patched += 1;
                self.stats.compactions += 1;
            }
            CsrApplyOutcome::Rebuilt => self.stats.full_csr_builds += 1,
        }
        drop(patch_span);
        self.finish_round(round, newly_awake, Some(eff))
    }

    /// Wake-up phase: a node wakes in the first round where it is active in
    /// the adversary's graph and its wake-up schedule permits. Walks the
    /// shrinking pending-sleepers list, so the scan is `O(|sleepers|)` and
    /// free once everyone is awake.
    fn run_wakeups(&mut self, graph: &Graph, round: u64) -> Vec<NodeId> {
        let mut newly_awake = Vec::new();
        if !self.pending_sleepers.is_empty() {
            let awake = &mut self.awake;
            let wake_round = &mut self.wake_round;
            let wakeup = &self.wakeup;
            self.pending_sleepers.retain(|&v| {
                if graph.is_active(v) && round >= wakeup.wake_round(v) {
                    awake.insert(v.index());
                    wake_round[v.index()] = round;
                    newly_awake.push(v);
                    false
                } else {
                    true
                }
            });
            self.num_awake += newly_awake.len();
        }
        newly_awake
    }

    /// Full build of the effective CSR (round 0 and the whole-graph path):
    /// constructed directly from `graph` with asleep nodes filtered out — no
    /// intermediate `Graph` clone.
    fn rebuild_effective(&mut self, graph: &Graph) {
        let csr = if self.num_awake == self.n {
            CsrGraph::from_graph(graph)
        } else {
            CsrGraph::from_graph_filtered(graph, |v| self.awake.contains(v.index()))
        };
        self.effective = Arc::new(csr);
        self.effective_valid = true;
        self.stats.full_csr_builds += 1;
    }

    /// Phases 3–7 of the round, common to both step paths: instantiate the
    /// newly awake nodes, run send/deliver/receive, publish outputs. Output
    /// publication (and churn detection) is fused into the receive phase —
    /// per shard on the parallel path — so no separate `O(n)` scan runs.
    fn finish_round(
        &mut self,
        round: u64,
        newly_awake: Vec<NodeId>,
        delta: Option<GraphDelta>,
    ) -> StepSummary {
        let csr = Arc::clone(&self.effective);
        for &v in &newly_awake {
            let mut alg = self.factory.create(v);
            let mut ctx = self.context(v, round, &csr, 0);
            alg.on_wake(&mut ctx);
            self.nodes[v.index()] = Some(alg);
        }

        {
            let _span = dynnet_obs::phase_span("round", "send");
            self.run_send_phase(round, &csr);
        }
        let changed_outputs = {
            let mut span = dynnet_obs::phase_span("round", "receive");
            let changed = self.run_receive_phase(round, &csr);
            span.set_arg("churn", changed.len() as u64);
            changed
        };

        self.next_round += 1;
        StepSummary {
            round,
            graph: csr,
            delta,
            newly_awake,
            num_awake: self.num_awake,
            changed_outputs,
        }
    }

    /// Perf counters of the incremental round pipeline.
    pub fn delta_stats(&self) -> DeltaStats {
        self.stats
    }

    /// Runs the simulator over every graph of a recorded trace and returns
    /// the per-round reports.
    pub fn run_trace(&mut self, trace: &DynamicGraphTrace) -> Vec<RoundReport<A::Output>> {
        trace.iter().map(|g| self.step(&g)).collect()
    }

    /// Runs `rounds` rounds on a static graph.
    pub fn run_static(&mut self, graph: &Graph, rounds: usize) -> Vec<RoundReport<A::Output>> {
        (0..rounds).map(|_| self.step(graph)).collect()
    }

    fn context<'a>(
        &self,
        v: NodeId,
        round: u64,
        csr: &'a CsrGraph,
        stream: u64,
    ) -> NodeContext<'a> {
        let i = v.index();
        let local_round = if self.awake.contains(i) {
            round - self.wake_round[i]
        } else {
            0
        };
        NodeContext {
            node: v,
            n: self.n,
            round,
            local_round,
            graph: csr,
            rng: node_round_rng(self.config.seed, v.0, round, stream),
        }
    }

    /// Whether this round's phases run on the pool. Purely a scheduling
    /// decision — sequential and parallel execution are bit-identical — so
    /// it may consult the live thread-budget state: with
    /// [`SimConfig::budget_aware_threshold`] the awake-node threshold scales
    /// with `budget / effective_width`, and an effective width of 1 (budget
    /// fully claimed, or a single-core budget) skips parallel setup that
    /// could never be amortized.
    fn use_parallel(&self, awake: usize) -> bool {
        if !self.config.parallel {
            return false;
        }
        if !self.config.budget_aware_threshold {
            return awake >= self.config.parallel_threshold;
        }
        let width = rayon::effective_width();
        if width <= 1 {
            return false;
        }
        let pressure = (rayon::max_threads() / width).max(1);
        awake >= self.config.parallel_threshold.saturating_mul(pressure)
    }

    /// Send phase: every awake node's message is written into the persistent
    /// [`Self::messages`] buffer in place (slot `v` stays `None` while `v`
    /// sleeps and is overwritten every round once awake — no clears, no
    /// per-round allocation). The parallel path walks aligned shards of
    /// `(nodes, messages)`.
    fn run_send_phase(&mut self, round: u64, csr: &CsrGraph) {
        let awake = self.num_awake;
        let seed = self.config.seed;
        let n = self.n;
        let wake_round = &self.wake_round;
        // HOT: per-node send closure — runs once per awake node per round
        // on every worker; must stay allocation-free.
        let send_one = |i: usize, alg: &mut A| {
            let v = NodeId::new(i);
            let mut ctx = NodeContext {
                node: v,
                n,
                round,
                local_round: round - wake_round[i],
                graph: csr,
                rng: node_round_rng(seed, v.0, round, 0),
            };
            alg.send(&mut ctx)
        };
        if self.use_parallel(awake) {
            rayon::par_zip_shards(
                &mut self.nodes,
                &mut self.messages,
                |offset, slots, msgs| {
                    for (k, (slot, msg)) in slots.iter_mut().zip(msgs.iter_mut()).enumerate() {
                        if let Some(alg) = slot.as_mut() {
                            *msg = Some(send_one(offset + k, alg));
                        }
                    }
                },
            );
        } else {
            for (i, (slot, msg)) in self.nodes.iter_mut().zip(&mut self.messages).enumerate() {
                if let Some(alg) = slot.as_mut() {
                    *msg = Some(send_one(i, alg));
                }
            }
        }
    }

    /// Receive phase fused with output publication: every awake node
    /// consumes its inbox, then its (possibly changed) output is published
    /// immediately, and the node is appended to the round's churn list if
    /// the published value differs from last round's.
    ///
    /// Returns the round's exact output churn, ascending. On the parallel
    /// path each worker shard processes an aligned contiguous slice of
    /// `(nodes, outputs)` and produces its own shard-local changed list;
    /// the shards are contiguous and in index order, so concatenating the
    /// per-shard lists is the node-order merge — byte-identical to the
    /// sequential pass, with no per-round `O(n)` publication scan anywhere.
    ///
    /// Each shard builds its nodes' inboxes in one reusable shard-local
    /// scratch vector (cleared per node, capacity retained across the
    /// shard), so inbox assembly performs no steady-state allocation and the
    /// scratch stays L2-resident while the shard streams its node range.
    fn run_receive_phase(&mut self, round: u64, csr: &CsrGraph) -> Vec<NodeId> {
        let awake = self.num_awake;
        let seed = self.config.seed;
        let n = self.n;
        let wake_round = &self.wake_round;
        let messages = &self.messages;
        // HOT: per-node receive closure — the inbox scratch is reused
        // across nodes; the only allocation is the per-message clone below.
        let receive_and_publish = |i: usize,
                                   slot: &mut Option<A>,
                                   out: &mut Option<A::Output>,
                                   inbox: &mut Vec<(NodeId, A::Msg)>,
                                   changed: &mut Vec<NodeId>| {
            if let Some(alg) = slot.as_mut() {
                let v = NodeId::new(i);
                inbox.clear();
                inbox.extend(
                    csr.neighbors(v)
                        .iter()
                        // ALLOC: delivery semantics — each neighbor gets its
                        // own copy of the payload; `A::Msg` is small by
                        // contract, so the clone is a memcpy, not a malloc.
                        .filter_map(|&u| messages[u.index()].clone().map(|m| (u, m))),
                );
                let mut ctx = NodeContext {
                    node: v,
                    n,
                    round,
                    local_round: round - wake_round[i],
                    graph: csr,
                    rng: node_round_rng(seed, v.0, round, 1),
                };
                alg.receive(&mut ctx, inbox);
                let published = alg.output();
                if out.as_ref() != Some(&published) {
                    *out = Some(published);
                    changed.push(v);
                }
            }
        };
        if self.use_parallel(awake) {
            let shard_lists =
                rayon::par_zip_shards(&mut self.nodes, &mut self.outputs, |offset, slots, outs| {
                    let mut changed = Vec::new();
                    let mut inbox: Vec<(NodeId, A::Msg)> = Vec::new();
                    for (k, (slot, out)) in slots.iter_mut().zip(outs.iter_mut()).enumerate() {
                        receive_and_publish(offset + k, slot, out, &mut inbox, &mut changed);
                    }
                    changed
                });
            let mut changed = Vec::with_capacity(shard_lists.iter().map(Vec::len).sum());
            for list in shard_lists {
                changed.extend(list);
            }
            changed
        } else {
            let mut changed = Vec::new();
            let mut inbox: Vec<(NodeId, A::Msg)> = Vec::new();
            for (i, (slot, out)) in self.nodes.iter_mut().zip(&mut self.outputs).enumerate() {
                receive_and_publish(i, slot, out, &mut inbox, &mut changed);
            }
            changed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Incoming;
    use crate::wakeup::{AllAtStart, ScriptedWakeup};
    use dynnet_graph::{generators, Edge, Graph};
    use rand::Rng;

    /// Every node outputs the maximum id it has heard of (including itself):
    /// classic flooding; on a connected static graph of diameter D all nodes
    /// converge to the global maximum after D rounds.
    #[derive(Clone)]
    struct MaxFlood {
        best: u32,
    }

    impl NodeAlgorithm for MaxFlood {
        type Msg = u32;
        type Output = u32;

        fn send(&mut self, _ctx: &mut NodeContext<'_>) -> u32 {
            self.best
        }

        fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<u32>]) {
            for (_, m) in inbox {
                self.best = self.best.max(*m);
            }
        }

        fn output(&self) -> u32 {
            self.best
        }
    }

    fn max_flood_factory(v: NodeId) -> MaxFlood {
        MaxFlood { best: v.0 }
    }

    /// Outputs one random draw per round; used to check RNG determinism.
    struct RandomDraw {
        last: u64,
    }

    impl NodeAlgorithm for RandomDraw {
        type Msg = ();
        type Output = u64;

        fn send(&mut self, ctx: &mut NodeContext<'_>) {
            self.last = ctx.rng.gen();
        }

        fn receive(&mut self, _ctx: &mut NodeContext<'_>, _inbox: &[Incoming<()>]) {}

        fn output(&self) -> u64 {
            self.last
        }
    }

    #[test]
    fn flooding_converges_on_a_path() {
        let n = 8;
        let g = generators::path(n);
        let mut sim = Simulator::new(n, max_flood_factory, AllAtStart, SimConfig::sequential(1));
        let reports = sim.run_static(&g, n);
        let last = reports.last().unwrap();
        for i in 0..n {
            assert_eq!(last.outputs[i], Some((n - 1) as u32));
        }
        // After a single round only direct neighbors of the max know it.
        assert_eq!(reports[0].outputs[0], Some(1));
    }

    #[test]
    fn outputs_are_none_before_wakeup() {
        let n = 3;
        let g = generators::complete(n);
        let wake = ScriptedWakeup {
            rounds: vec![0, 2, 5],
        };
        let mut sim = Simulator::new(n, max_flood_factory, wake, SimConfig::sequential(0));
        let r0 = sim.step(&g);
        assert!(r0.outputs[0].is_some());
        assert!(r0.outputs[1].is_none());
        assert_eq!(r0.newly_awake, vec![NodeId::new(0)]);
        let _r1 = sim.step(&g);
        let r2 = sim.step(&g);
        assert!(r2.outputs[1].is_some());
        assert!(r2.outputs[2].is_none());
        assert_eq!(r2.num_awake, 2);
        assert_eq!(sim.woke_at(NodeId::new(1)), Some(2));
    }

    #[test]
    fn messages_flow_only_over_current_edges() {
        // Two nodes connected only in round 1; flooding only succeeds then.
        let n = 2;
        let empty = Graph::new(n);
        let connected = Graph::from_edges(n, [Edge::of(0, 1)]);
        let mut sim = Simulator::new(n, max_flood_factory, AllAtStart, SimConfig::sequential(0));
        let r0 = sim.step(&empty);
        assert_eq!(r0.outputs[0], Some(0));
        let r1 = sim.step(&connected);
        assert_eq!(r1.outputs[0], Some(1));
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let n = 64;
        let g = generators::erdos_renyi_avg_degree(n, 6.0, &mut crate::rng::experiment_rng(3, "g"));
        let mut seq = Simulator::new(
            n,
            |_v| RandomDraw { last: 0 },
            AllAtStart,
            SimConfig {
                seed: 9,
                parallel: false,
                parallel_threshold: 0,
                ..SimConfig::default()
            },
        );
        let mut par = Simulator::new(
            n,
            |_v| RandomDraw { last: 0 },
            AllAtStart,
            SimConfig {
                seed: 9,
                parallel: true,
                parallel_threshold: 0,
                ..SimConfig::default()
            },
        );
        for _ in 0..5 {
            let a = seq.step(&g);
            let b = par.step(&g);
            assert_eq!(a.outputs, b.outputs);
        }
    }

    #[test]
    fn run_trace_replays_each_round() {
        let g0 = Graph::from_edges(3, [Edge::of(0, 1)]);
        let g1 = Graph::from_edges(3, [Edge::of(1, 2)]);
        let mut trace = DynamicGraphTrace::new(g0);
        trace.push(&g1);
        let mut sim = Simulator::new(3, max_flood_factory, AllAtStart, SimConfig::sequential(0));
        let reports = sim.run_trace(&trace);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].round, 0);
        assert_eq!(reports[1].round, 1);
        // Node 0 hears 1 in round 0; node 1 hears 2 in round 1; 0 never hears 2.
        assert_eq!(reports[1].outputs[0], Some(1));
        assert_eq!(reports[1].outputs[1], Some(2));
    }

    #[test]
    fn step_delta_nets_out_insert_remove_pairs() {
        // An edge inserted *and* removed by the same delta nets to absent
        // (apply order); the effective CSR must not keep a phantom edge.
        let n = 4;
        let g0 = Graph::from_edges(n, [Edge::of(0, 1)]);
        let mut sim = Simulator::new(n, max_flood_factory, AllAtStart, SimConfig::sequential(0));
        sim.step_streaming(&g0);
        let mut delta = GraphDelta::new();
        delta.insert(NodeId::new(2), NodeId::new(3));
        delta.remove(NodeId::new(2), NodeId::new(3));
        let g1 = delta.materialize(&g0);
        assert!(!g1.has_edge(NodeId::new(2), NodeId::new(3)));
        let summary = sim.step_delta(&g1, &delta);
        assert!(!summary.graph.has_edge(NodeId::new(2), NodeId::new(3)));
        assert_eq!(*summary.graph, CsrGraph::from_graph(&g1));
    }

    #[test]
    fn insertion_reactivates_awake_endpoint_even_when_edge_is_filtered() {
        // Adversary deactivates node 0, then inserts {0, 2} while node 2 is
        // still asleep: the edge is pruned from the effective graph, but the
        // insertion's implicit re-activation of (awake) node 0 must still
        // reach the incremental CSR — exactly as on the whole-graph path.
        let n = 3;
        let wake = ScriptedWakeup {
            rounds: vec![0, 0, 9],
        };
        let g0 = Graph::from_edges(n, [Edge::of(0, 1)]);
        let mut d1 = GraphDelta::new();
        d1.remove(NodeId::new(0), NodeId::new(1));
        d1.deactivate(NodeId::new(0));
        let mut d2 = GraphDelta::new();
        d2.insert(NodeId::new(0), NodeId::new(2));
        let g1 = d1.materialize(&g0);
        let g2 = d2.materialize(&g1);

        let mut by_delta =
            Simulator::new(n, max_flood_factory, wake.clone(), SimConfig::sequential(0));
        by_delta.step_streaming(&g0);
        by_delta.step_delta(&g1, &d1);
        let s_delta = by_delta.step_delta(&g2, &d2);

        let mut by_graph = Simulator::new(n, max_flood_factory, wake, SimConfig::sequential(0));
        by_graph.step_streaming(&g0);
        by_graph.step_streaming(&g1);
        let s_ref = by_graph.step_streaming(&g2);

        assert!(s_delta.graph.is_active(NodeId::new(0)));
        assert_eq!(*s_delta.graph, *s_ref.graph);
    }

    #[test]
    fn node_accessor_exposes_state() {
        let g = generators::complete(3);
        let mut sim = Simulator::new(3, max_flood_factory, AllAtStart, SimConfig::sequential(0));
        sim.step(&g);
        assert_eq!(sim.node(NodeId::new(0)).unwrap().best, 2);
        assert_eq!(sim.round(), 1);
        assert!(sim.is_awake(NodeId::new(2)));
    }
}
