//! Asynchronous wake-up schedules.
//!
//! The paper allows nodes to wake up gradually (`∅ = V_0 ⊆ V_1 ⊆ …`); a node
//! that wakes up does not know the current round number. A
//! [`WakeupSchedule`] assigns each node the first round in which it may
//! participate; a node actually wakes in the first round `r ≥ wake_round(v)`
//! in which it is active in `G_r`.

use dynnet_graph::NodeId;
use rand::Rng;

/// Assigns every node the earliest round in which it wakes up.
pub trait WakeupSchedule: Send + Sync {
    /// The earliest round in which node `v` may participate.
    fn wake_round(&self, v: NodeId) -> u64;
}

/// All nodes wake up in round 0 — the synchronous-start special case.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllAtStart;

impl WakeupSchedule for AllAtStart {
    fn wake_round(&self, _v: NodeId) -> u64 {
        0
    }
}

/// Node `v` wakes in round `v · stride` (capped at `max_round`): a simple
/// deterministic staggered wake-up.
#[derive(Clone, Copy, Debug)]
pub struct Staggered {
    /// Rounds between consecutive wake-ups.
    pub stride: u64,
    /// Latest possible wake-up round.
    pub max_round: u64,
}

impl WakeupSchedule for Staggered {
    fn wake_round(&self, v: NodeId) -> u64 {
        (v.index() as u64 * self.stride).min(self.max_round)
    }
}

/// Every node wakes at an independently uniform round in `[0, max_round]`,
/// fixed at construction time from a seed.
#[derive(Clone, Debug)]
pub struct RandomWakeup {
    rounds: Vec<u64>,
}

impl RandomWakeup {
    /// Draws wake-up rounds for `n` nodes uniformly from `[0, max_round]`.
    pub fn new(n: usize, max_round: u64, seed: u64) -> Self {
        let mut rng = crate::rng::experiment_rng(seed, "wakeup");
        RandomWakeup {
            rounds: (0..n).map(|_| rng.gen_range(0..=max_round)).collect(),
        }
    }
}

impl WakeupSchedule for RandomWakeup {
    fn wake_round(&self, v: NodeId) -> u64 {
        self.rounds.get(v.index()).copied().unwrap_or(0)
    }
}

/// Explicit per-node wake-up rounds (nodes beyond the vector wake at 0).
#[derive(Clone, Debug)]
pub struct ScriptedWakeup {
    /// Wake-up round per node id.
    pub rounds: Vec<u64>,
}

impl WakeupSchedule for ScriptedWakeup {
    fn wake_round(&self, v: NodeId) -> u64 {
        self.rounds.get(v.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_at_start() {
        assert_eq!(AllAtStart.wake_round(NodeId::new(17)), 0);
    }

    #[test]
    fn staggered_caps_at_max() {
        let s = Staggered {
            stride: 3,
            max_round: 10,
        };
        assert_eq!(s.wake_round(NodeId::new(0)), 0);
        assert_eq!(s.wake_round(NodeId::new(2)), 6);
        assert_eq!(s.wake_round(NodeId::new(100)), 10);
    }

    #[test]
    fn random_wakeup_in_range_and_reproducible() {
        let a = RandomWakeup::new(50, 20, 7);
        let b = RandomWakeup::new(50, 20, 7);
        for i in 0..50 {
            let r = a.wake_round(NodeId::new(i));
            assert!(r <= 20);
            assert_eq!(r, b.wake_round(NodeId::new(i)));
        }
        let c = RandomWakeup::new(50, 20, 8);
        assert!((0..50).any(|i| a.wake_round(NodeId::new(i)) != c.wake_round(NodeId::new(i))));
    }

    #[test]
    fn scripted_wakeup_defaults_to_zero() {
        let s = ScriptedWakeup { rounds: vec![5, 2] };
        assert_eq!(s.wake_round(NodeId::new(0)), 5);
        assert_eq!(s.wake_round(NodeId::new(1)), 2);
        assert_eq!(s.wake_round(NodeId::new(9)), 0);
    }
}
