//! The per-node algorithm abstraction.
//!
//! The paper's round structure (Section 2) is:
//!
//! 1. the adversary changes the graph and provides `G_r`,
//! 2. nodes send/receive messages through the edges `E_r` (local broadcast)
//!    and perform local computations,
//! 3. each node returns its output.
//!
//! A [`NodeAlgorithm`] mirrors this: per round the simulator calls
//! [`NodeAlgorithm::send`] to obtain the broadcast message, delivers to every
//! node the messages of its current neighbors, calls
//! [`NodeAlgorithm::receive`], and finally reads [`NodeAlgorithm::output`].
//! Communication is by local broadcast: one message per node per round,
//! delivered to all current neighbors; a node need not know its neighbors or
//! its degree at the start of a round (it learns them from the inbox).

use dynnet_graph::{CsrGraph, NodeId};
use rand_chacha::ChaCha8Rng;

/// Per-round, per-node execution context handed to [`NodeAlgorithm`] hooks.
pub struct NodeContext<'a> {
    /// The node this context belongs to.
    pub node: NodeId,
    /// Upper bound `n` on the number of nodes — globally known (Section 2).
    pub n: usize,
    /// Global round number (for tracing/analysis only; the paper stresses
    /// that nodes need no common round counter and the provided algorithms
    /// never read this field).
    pub round: u64,
    /// Rounds since this node woke up (0 in its wake-up round).
    pub local_round: u64,
    /// The current communication graph `G_r`.
    pub graph: &'a CsrGraph,
    /// Fresh per-(seed, node, round) randomness.
    pub rng: ChaCha8Rng,
}

impl NodeContext<'_> {
    /// The node's neighbors in the current graph `G_r`.
    ///
    /// Note: the paper-faithful algorithms only inspect neighbor information
    /// *after* the receive step; this accessor also backs the inbox
    /// construction in the simulator.
    pub fn neighbors(&self) -> &[NodeId] {
        self.graph.neighbors(self.node)
    }

    /// The node's degree in the current graph `G_r`.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }
}

/// A message received from a neighbor: `(sender, payload)`.
pub type Incoming<M> = (NodeId, M);

/// A distributed algorithm as executed by a single node.
///
/// Implementations hold the node's entire local state. One instance exists
/// per (awake) node; the simulator drives all instances in lock step.
pub trait NodeAlgorithm: Send {
    /// The broadcast message type.
    type Msg: Clone + Send + Sync;
    /// The per-round output type (the paper's `y_v`; use an `Option`-like
    /// type to model `⊥`).
    type Output: Clone + PartialEq + Send + Sync;

    /// Called once, in the round in which the node wakes up, before the first
    /// `send`. Default: no-op.
    fn on_wake(&mut self, ctx: &mut NodeContext<'_>) {
        let _ = ctx;
    }

    /// Produces the message this node broadcasts to all neighbors in `G_r`.
    fn send(&mut self, ctx: &mut NodeContext<'_>) -> Self::Msg;

    /// Consumes the messages broadcast by the node's neighbors in `G_r`
    /// (one entry per awake neighbor) and updates the local state.
    fn receive(&mut self, ctx: &mut NodeContext<'_>, inbox: &[Incoming<Self::Msg>]);

    /// The node's output at the end of the round.
    fn output(&self) -> Self::Output;
}

/// Creates fresh per-node algorithm instances when nodes wake up.
///
/// Blanket-implemented for closures `Fn(NodeId) -> A`.
pub trait AlgorithmFactory<A: NodeAlgorithm>: Sync {
    /// Creates the algorithm instance for node `v`.
    fn create(&self, v: NodeId) -> A;
}

impl<A: NodeAlgorithm, F: Fn(NodeId) -> A + Sync> AlgorithmFactory<A> for F {
    fn create(&self, v: NodeId) -> A {
        self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::{Edge, Graph};

    /// Trivial algorithm used to exercise the trait plumbing: every node
    /// outputs the number of distinct neighbors heard from so far.
    struct CountNeighbors {
        heard: std::collections::BTreeSet<NodeId>,
    }

    impl NodeAlgorithm for CountNeighbors {
        type Msg = ();
        type Output = usize;

        fn send(&mut self, _ctx: &mut NodeContext<'_>) -> Self::Msg {}

        fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<Self::Msg>]) {
            for (from, ()) in inbox {
                self.heard.insert(*from);
            }
        }

        fn output(&self) -> usize {
            self.heard.len()
        }
    }

    #[test]
    fn context_accessors() {
        let g = Graph::from_edges(4, [Edge::of(0, 1), Edge::of(0, 2)]);
        let csr = CsrGraph::from_graph(&g);
        let ctx = NodeContext {
            node: NodeId::new(0),
            n: 4,
            round: 3,
            local_round: 1,
            graph: &csr,
            rng: crate::rng::node_round_rng(0, 0, 3, 0),
        };
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.neighbors(), &[NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn factory_closure_blanket_impl() {
        let factory = |_v: NodeId| CountNeighbors {
            heard: Default::default(),
        };
        let mut alg = AlgorithmFactory::<CountNeighbors>::create(&factory, NodeId::new(3));
        assert_eq!(alg.output(), 0);
        let g = Graph::from_edges(2, [Edge::of(0, 1)]);
        let csr = CsrGraph::from_graph(&g);
        let mut ctx = NodeContext {
            node: NodeId::new(0),
            n: 2,
            round: 0,
            local_round: 0,
            graph: &csr,
            rng: crate::rng::node_round_rng(0, 0, 0, 0),
        };
        alg.receive(&mut ctx, &[(NodeId::new(1), ())]);
        assert_eq!(alg.output(), 1);
    }
}
