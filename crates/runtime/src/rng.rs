//! Deterministic hierarchical randomness.
//!
//! Every node draws fresh randomness in every round (the paper allows "fresh
//! randomness in every round", Section 2). To make simulations exactly
//! reproducible — and independent of whether rounds are executed sequentially
//! or in parallel — each (seed, node, round, stream) tuple is mapped to an
//! independent ChaCha8 stream via a SplitMix64-style mixer.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mixes a set of words into a single 64-bit value (SplitMix64 finalizer
/// applied to a running combination). Deterministic across platforms.
#[inline]
pub fn mix(words: &[u64]) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        acc ^= w
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(acc << 6)
            .wrapping_add(acc >> 2);
        // SplitMix64 finalizer.
        let mut z = acc;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = z ^ (z >> 31);
    }
    acc
}

/// Creates the RNG for a specific (experiment seed, node, round, stream).
///
/// The `stream` discriminator separates independent consumers within the same
/// node and round (e.g. the network-static instance and each of the pipelined
/// dynamic-algorithm instances inside `Concat`).
pub fn node_round_rng(seed: u64, node: u32, round: u64, stream: u64) -> ChaCha8Rng {
    let s = mix(&[seed, node as u64, round, stream]);
    ChaCha8Rng::seed_from_u64(s)
}

/// Creates an RNG for experiment-level decisions (workload generation etc.).
pub fn experiment_rng(seed: u64, purpose: &str) -> ChaCha8Rng {
    let mut words = vec![seed];
    for chunk in purpose.as_bytes().chunks(8) {
        let mut w = [0u8; 8];
        // INVARIANT: chunks(8) yields at most 8 bytes, w is [u8; 8].
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(w));
    }
    ChaCha8Rng::seed_from_u64(mix(&words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 2, 4]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[0]), mix(&[0, 0]));
    }

    #[test]
    fn node_round_rng_reproducible() {
        let mut a = node_round_rng(42, 7, 13, 0);
        let mut b = node_round_rng(42, 7, 13, 0);
        let xs: Vec<u64> = (0..5).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn node_round_rng_differs_across_dimensions() {
        let base: u64 = node_round_rng(42, 7, 13, 0).gen();
        assert_ne!(base, node_round_rng(43, 7, 13, 0).gen::<u64>());
        assert_ne!(base, node_round_rng(42, 8, 13, 0).gen::<u64>());
        assert_ne!(base, node_round_rng(42, 7, 14, 0).gen::<u64>());
        assert_ne!(base, node_round_rng(42, 7, 13, 1).gen::<u64>());
    }

    #[test]
    fn experiment_rng_depends_on_purpose() {
        let a: u64 = experiment_rng(1, "adversary").gen();
        let b: u64 = experiment_rng(1, "workload").gen();
        let c: u64 = experiment_rng(1, "adversary").gen();
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn uniform_draws_cover_range() {
        let mut r = node_round_rng(5, 0, 0, 0);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "1000 draws should hit all of 0..10"
        );
    }
}
