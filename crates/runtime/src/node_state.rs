//! Structure-of-arrays node state for the round kernel.
//!
//! The simulator's per-round hot loops (send, receive+publish) touch a small
//! set of per-node fields for *every* node in index order. Keeping those
//! fields in separate dense arrays — instead of one array of structs — means
//! each loop streams exactly the bytes it needs:
//!
//! * awake flags: one **bit** per node ([`AwakeSet`]), so the "is this node
//!   awake" scan of a million nodes reads 128 KiB instead of the 16 MiB the
//!   old `Vec<Option<u64>>` wake-round layout forced through the cache;
//! * wake rounds: a plain `u64` array, read only when a [`super::NodeContext`]
//!   is built for an awake node (never scanned);
//! * algorithm instances and outputs stay in their own contiguous arenas
//!   (`Vec<Option<A>>` / `Vec<Option<A::Output>>`) that the phases walk
//!   linearly, shard by shard.
//!
//! Nodes never go back to sleep in the paper's model, so [`AwakeSet`] only
//! needs insertion; the packed words are also what makes the awake test in
//! the delta-translation loop branch-predictable.

/// A packed membership bitset over node indices `0..len`, one bit per node.
///
/// This is the SoA replacement for `Vec<Option<u64>>`-style "awake?" flags:
/// 64 nodes per cache-resident word. Monotone — the simulator only ever
/// inserts (nodes never un-wake).
#[derive(Clone, Debug)]
pub struct AwakeSet {
    words: Vec<u64>,
    len: usize,
}

impl AwakeSet {
    /// An empty set over indices `0..len`.
    pub fn new(len: usize) -> Self {
        AwakeSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of indices the set ranges over (not the member count).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Tests membership of index `i`.
    // HOT: queried per node per round by the wakeup schedule.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        // INVARIANT: i < len and words holds ceil(len / 64) entries.
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Inserts index `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        // INVARIANT: i < len and words holds ceil(len / 64) entries.
        self.words[i >> 6] |= 1 << (i & 63);
    }

    /// Number of members (popcount over the packed words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = AwakeSet::new(130);
        assert_eq!(s.universe(), 130);
        assert_eq!(s.count(), 0);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!s.contains(i));
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 8);
        // Re-insertion is idempotent.
        s.insert(63);
        assert_eq!(s.count(), 8);
        assert!(!s.contains(2));
        assert!(!s.contains(62));
        assert!(!s.contains(126));
    }

    #[test]
    fn word_boundary_universe() {
        let mut s = AwakeSet::new(64);
        s.insert(63);
        assert!(s.contains(63));
        assert_eq!(s.count(), 1);
        let empty = AwakeSet::new(0);
        assert_eq!(empty.count(), 0);
    }
}
