//! Table rendering: Markdown and CSV writers used by the experiment harness
//! to print the result tables recorded in EXPERIMENTS.md.

/// A simple rectangular table of strings with a header row.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// Table title (printed above the table).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Deterministic table assembly from keyed rows.
///
/// Sweeps and other concurrent producers hand back rows tagged with their
/// grid index; a `RowSink` collects `(key, rows)` pairs in *any* arrival
/// order and emits a [`Table`] whose rows are sorted by key — so the
/// rendered table (and its CSV) depends only on the keys, never on thread
/// scheduling or completion order.
#[derive(Clone, Debug)]
pub struct RowSink {
    table: Table,
    keyed: Vec<(usize, Vec<String>)>,
}

impl RowSink {
    /// Creates a sink that assembles into a table with the given title and
    /// headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        RowSink {
            table: Table::new(title, headers),
            keyed: Vec::new(),
        }
    }

    /// Adds one row under `key`. Rows sharing a key keep their insertion
    /// order relative to each other (stable sort).
    pub fn push(&mut self, key: usize, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.table.headers.len(),
            "row arity mismatch for key {key}"
        );
        self.keyed.push((key, row));
    }

    /// Number of rows collected so far.
    pub fn len(&self) -> usize {
        self.keyed.len()
    }

    /// Returns `true` if no rows were collected.
    pub fn is_empty(&self) -> bool {
        self.keyed.is_empty()
    }

    /// Sorts the collected rows by key and produces the table.
    pub fn into_table(mut self) -> Table {
        self.keyed.sort_by_key(|(k, _)| *k);
        for (_, row) in self.keyed {
            self.table.rows.push(row);
        }
        self.table
    }
}

/// Formats a float with 2 decimal digits (helper for table cells).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with 1 decimal digit.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["n", "rounds"]);
        t.push_row(vec!["64".into(), "17.50".into()]);
        t.push_row(vec!["128".into(), "19.25".into()]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| n | rounds |"));
        assert!(md.contains("| 64 | 17.50 |"));
        assert_eq!(md.matches("|---|").count(), 1);
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["plain".into(), "with,comma".into()]);
        t.push_row(vec!["with\"quote".into(), "ok".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn row_sink_orders_by_key_not_arrival() {
        let mut sink = RowSink::new("t", &["k"]);
        sink.push(2, vec!["two".into()]);
        sink.push(0, vec!["zero".into()]);
        sink.push(1, vec!["one".into()]);
        assert_eq!(sink.len(), 3);
        assert!(!sink.is_empty());
        let t = sink.into_table();
        assert_eq!(t.rows, vec![vec!["zero"], vec!["one"], vec!["two"]]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_sink_checks_arity() {
        let mut sink = RowSink::new("t", &["a", "b"]);
        sink.push(0, vec!["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt2(3.46159), "3.46");
        assert_eq!(fmt_pct(0.5), "50.0%");
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
    }
}
