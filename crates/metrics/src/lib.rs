//! # dynnet-metrics
//!
//! Measurement utilities for the `dynnet` experiments: summary statistics,
//! per-round time series with convergence/decay detection, least-squares
//! model fitting (for the `O(log n)` shape checks), and Markdown/CSV table
//! writers used to regenerate the tables in EXPERIMENTS.md.
//!
//! In the delta pipeline this crate sits *downstream* of the streaming
//! observers: per-round series ([`Series`]) are filled by
//! `dynnet_runtime::RoundObserver`s as the execution streams by, and sweep
//! results are folded into [`Table`]s in deterministic grid order via
//! [`RowSink`] (keyed row assembly, so out-of-order completion from the
//! work-stealing sweep engine cannot perturb output bytes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod series;
pub mod stats;
pub mod table;

pub use fit::{linear_fit, linear_in_n_fit, log_fit, LinearFit};
pub use series::Series;
pub use stats::{quantile_sorted, Summary};
pub use table::{fmt2, fmt_pct, RowSink, Table};
