//! Summary statistics over samples: mean, standard deviation, quantiles, and
//! min/max, used to aggregate per-seed experiment results.

/// Summary statistics of a sample of `f64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0.0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (0.0 if fewer than 2 samples).
    pub stddev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes the summary of a sample. Returns an all-zero summary for an
    /// empty slice.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count >= 2 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            p95: quantile_sorted(&sorted, 0.95),
        }
    }

    /// Computes the summary of an integer sample.
    pub fn of_usize(values: &[usize]) -> Self {
        Summary::of(&values.iter().map(|&v| v as f64).collect::<Vec<_>>())
    }
}

/// Quantile of an already-sorted sample using linear interpolation.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = vec![0.0, 10.0];
        assert!((quantile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert!((quantile_sorted(&sorted, 0.95) - 9.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn of_usize_matches_of() {
        let a = Summary::of_usize(&[1, 2, 3]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }
}
