//! Model fitting used to validate asymptotic claims: ordinary least squares
//! for `y = a + b·x`, applied with `x = log₂ n` to check `O(log n)` runtime
//! claims, plus the coefficient of determination `R²`.

/// A fitted line `y = intercept + slope · x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Ordinary least squares fit of `y = a + b·x`. Returns `None` for fewer than
/// two points or when all `x` are identical.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        intercept,
        slope,
        r_squared,
    })
}

/// Fits `y = a + b · log₂(n)` — the shape check for the paper's `O(log n)`
/// round-complexity claims. `points` are `(n, y)` pairs.
pub fn log_fit(points: &[(usize, f64)]) -> Option<LinearFit> {
    let xs: Vec<f64> = points.iter().map(|(n, _)| (*n as f64).log2()).collect();
    let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
    linear_fit(&xs, &ys)
}

/// Fits `y = a + b · n` (linear in n) — used to contrast against the log fit:
/// if runtime were linear in `n`, this fit would explain the data better.
pub fn linear_in_n_fit(points: &[(usize, f64)]) -> Option<LinearFit> {
    let xs: Vec<f64> = points.iter().map(|(n, _)| *n as f64).collect();
    let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
    linear_fit(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ys = vec![1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
        // Constant y: R² defined as 1.
        let fit = linear_fit(&[0.0, 1.0], &[5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn log_fit_detects_logarithmic_growth() {
        // y = 3 log2(n) + 2, exact.
        let points: Vec<(usize, f64)> = [16usize, 64, 256, 1024, 4096]
            .iter()
            .map(|&n| (n, 3.0 * (n as f64).log2() + 2.0))
            .collect();
        let fit = log_fit(&points).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.9999);
        // The linear-in-n model fits logarithmic data worse.
        let lin = linear_in_n_fit(&points).unwrap();
        assert!(fit.r_squared > lin.r_squared);
    }
}
