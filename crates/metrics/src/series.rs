//! Per-round time series of measurements and convergence detection.

use crate::stats::Summary;

/// A named per-round time series of `f64` measurements.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    /// Name of the measured quantity.
    pub name: String,
    /// One value per round.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Appends one round's value.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Summary statistics over all rounds.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values)
    }

    /// Summary statistics over the rounds `from..`.
    pub fn summary_from(&self, from: usize) -> Summary {
        // INVARIANT: the start bound is clamped to len, so the range is
        // always valid (an out-of-range `from` yields the empty summary).
        Summary::of(&self.values[from.min(self.values.len())..])
    }

    /// First round (index) at which the value reaches `target` and never
    /// rises above it again — e.g. "first round with 0 undecided nodes that
    /// stays converged". Returns `None` if that never happens.
    pub fn converged_at_or_below(&self, target: f64) -> Option<usize> {
        let mut candidate = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v <= target {
                if candidate.is_none() {
                    candidate = Some(i);
                }
            } else {
                candidate = None;
            }
        }
        candidate
    }

    /// The per-round ratio `values[i + lag] / values[i]` (skipping zero
    /// denominators) — used to measure geometric decay rates such as
    /// Lemma 5.2's 2/3-edge-decay.
    pub fn decay_ratios(&self, lag: usize) -> Vec<f64> {
        assert!(lag >= 1);
        let mut out = Vec::new();
        for i in 0..self.values.len().saturating_sub(lag) {
            // INVARIANT: i < len - lag, so both i and i + lag are in range.
            if self.values[i] > 0.0 {
                out.push(self.values[i + lag] / self.values[i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_summarize() {
        let mut s = Series::new("undecided");
        for v in [10.0, 5.0, 2.0, 0.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!((s.summary().mean - 4.25).abs() < 1e-12);
        assert!((s.summary_from(2).mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convergence_detection() {
        let s = Series {
            name: "x".into(),
            values: vec![5.0, 0.0, 3.0, 0.0, 0.0],
        };
        assert_eq!(s.converged_at_or_below(0.0), Some(3));
        assert_eq!(s.converged_at_or_below(10.0), Some(0));
        let never = Series {
            name: "y".into(),
            values: vec![1.0, 2.0],
        };
        assert_eq!(never.converged_at_or_below(0.0), None);
        assert_eq!(Series::new("z").converged_at_or_below(0.0), None);
    }

    #[test]
    fn decay_ratios() {
        let s = Series {
            name: "edges".into(),
            values: vec![90.0, 60.0, 40.0, 0.0],
        };
        let r1 = s.decay_ratios(1);
        assert_eq!(r1.len(), 3);
        assert!((r1[0] - 2.0 / 3.0).abs() < 1e-12);
        let r2 = s.decay_ratios(2);
        assert_eq!(r2.len(), 2);
        assert!((r2[0] - 4.0 / 9.0).abs() < 1e-12);
    }
}
