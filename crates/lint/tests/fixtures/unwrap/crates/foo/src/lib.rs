//! Fixture: two `unwrap()`/`expect()` sites in library code (lines 8
//! and 12). With budget 2 the file is clean; with budget 1 the rule fires
//! at the second site; with budget 3 the budget is reported stale.

#![forbid(unsafe_code)]

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("at least two elements")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_free() {
        let v = vec![1, 2];
        assert_eq!(super::first(&v), *v.first().unwrap());
    }
}
