//! Fixture: panic-reachability over a two-hop call chain. `entry` (public)
//! calls the private `helper`, whose `unwrap()` must fire with the witness
//! path. The `// INVARIANT:`-proved site, the `[..index()]` node-id form,
//! and the panic in uncalled private code must all stay silent; the raw
//! indexing in `pick` fires unless the file is on the `panic-indexing`
//! burn-down list.

#![forbid(unsafe_code)]

pub fn entry(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn proved(v: &[u32]) -> u32 {
    // INVARIANT: callers validate non-emptiness at the boundary.
    *v.first().unwrap()
}

pub fn pick(v: &[u32], i: usize) -> u32 {
    v[i]
}

pub fn by_node_id(outputs: &[u32], u: crate::NodeId) -> u32 {
    outputs[u.index()]
}

pub struct NodeId(usize);

impl NodeId {
    pub fn index(&self) -> usize {
        self.0
    }
}

fn never_called() {
    panic!("unreachable from the public surface");
}
