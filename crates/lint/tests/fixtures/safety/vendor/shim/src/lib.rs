//! Fixture: an unsafe block in vendor code without a `// SAFETY:` comment.
//! Must fire exactly one `safety-comment` diagnostic (line 5).

pub fn read_first(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}
