//! Fixture: thread creation outside the blessed sites. Must fire exactly
//! one `thread-spawn` diagnostic (line 7) unless the file is allowlisted.

#![forbid(unsafe_code)]

pub fn detach() {
    std::thread::spawn(|| {});
}
