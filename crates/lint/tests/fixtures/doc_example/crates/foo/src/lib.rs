//! Fixture: a rustdoc example that spawns a thread. Doc examples are
//! extracted and linted like code (at their original line numbers), so
//! the `thread-spawn` rule must fire inside the example. The `text` block
//! below is not Rust and must stay silent.

#![forbid(unsafe_code)]

/// Runs `f` once.
///
/// ```
/// std::thread::spawn(|| ());
/// ```
///
/// ```text
/// thread::spawn is fine in prose blocks
/// ```
pub fn run<F: FnOnce()>(f: F) {
    f();
}
