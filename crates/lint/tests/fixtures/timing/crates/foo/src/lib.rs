//! Fixture: a wall-clock read without a `// TIMING:` comment. Must fire
//! exactly one `wall-clock` diagnostic (line 7).

#![forbid(unsafe_code)]

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

/// The escape hatch: the same read, labelled.
pub fn labelled() -> std::time::Instant {
    // TIMING: progress reporting only; never reaches simulation output.
    std::time::Instant::now()
}
