//! Fixture: a `Relaxed` atomic operation without an `// ORDERING:`
//! justification fires `ordering-justified`; a justified `Relaxed` and a
//! `SeqCst` operation stay silent.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn bump_justified(c: &AtomicU64) {
    // ORDERING: standalone counter; no other memory rides on it.
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn bump_seqcst(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst);
}
