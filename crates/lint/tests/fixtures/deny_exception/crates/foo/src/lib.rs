//! Fixture: a crate root using `#![deny(unsafe_code)]` instead of forbid.
//! Fires one `unsafe-confined` diagnostic unless the crate is listed under
//! `unsafe-deny-exception`.

#![deny(unsafe_code)]

pub fn id(x: u32) -> u32 {
    x
}
