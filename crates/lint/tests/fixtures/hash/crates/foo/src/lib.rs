//! Fixture: iterating a `HashMap` without a `// DETERMINISM:` comment.
//! Must fire exactly one `hash-iteration` diagnostic (line 9).

#![forbid(unsafe_code)]

use std::collections::HashMap;

pub fn dump(m: &HashMap<u32, u32>) -> Vec<(u32, u32)> {
    m.iter().map(|(k, v)| (*k, *v)).collect()
}

/// The escape hatch: the same iteration, justified.
pub fn sum(m: &HashMap<u32, u32>) -> u32 {
    // DETERMINISM: summation is order-independent.
    m.values().sum()
}
