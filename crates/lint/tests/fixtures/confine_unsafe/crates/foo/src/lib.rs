//! Fixture: an `unsafe` token inside a first-party crate. The crate root
//! declares forbid (so the attribute check passes) and the site carries a
//! SAFETY comment (so `safety-comment` passes): exactly one
//! `unsafe-confined` diagnostic fires, at the token (line 9).

#![forbid(unsafe_code)]

// SAFETY: fixture — never compiled.
pub unsafe fn poke(p: *mut u32) {
    *p = 1;
}
