//! Fixture: allocation inside a `// HOT:` region fires `hot-path-alloc`;
//! an `// ALLOC:`-justified allocation in a second hot region stays
//! silent, as does allocation outside any marked region.

#![forbid(unsafe_code)]

// HOT: per-item kernel, must not allocate.
pub fn kernel(xs: &mut [u32]) -> usize {
    let mut count = 0;
    for x in xs.iter_mut() {
        *x += 1;
        count += 1;
    }
    let scratch: Vec<u32> = Vec::new();
    count + scratch.len()
}

// HOT: kernel with a justified setup allocation.
pub fn kernel_justified(n: usize) -> Vec<u32> {
    // ALLOC: result buffer, allocated once per call, not per item.
    Vec::with_capacity(n)
}

pub fn cold_path() -> Vec<u32> {
    Vec::new()
}
