//! Fixture: a first-party crate root missing `#![forbid(unsafe_code)]`.
//! Must fire exactly one `unsafe-confined` diagnostic (line 1).

pub fn id(x: u32) -> u32 {
    x
}
