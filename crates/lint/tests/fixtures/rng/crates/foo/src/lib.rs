//! Fixture: RNG construction and draws outside a blessed module. Both the
//! construction (`seed_from_u64`) and the draw (`.gen_range(`) must fire
//! `rng-confined`; the `rng-confined crates/foo/src/lib.rs` allowlist
//! directive silences the whole file.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub fn stray_rng(seed: u64) -> u32 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.gen_range(0..10)
}
