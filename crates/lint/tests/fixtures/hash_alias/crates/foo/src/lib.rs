//! Fixture: hash iteration reached through a `type` alias, a constructor,
//! and an intermediate binding — invisible to a lexical scan, caught by
//! the symbol table. One `// DETERMINISM:`-justified iteration stays
//! silent.

#![forbid(unsafe_code)]

use std::collections::HashMap;

type Index = HashMap<u32, u32>;

pub fn from_annotation(m: &Index) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn from_constructor() -> Vec<u32> {
    let idx = Index::new();
    idx.keys().copied().collect()
}

pub fn from_binding(m: &HashMap<u32, u32>) -> Vec<u32> {
    let view = m;
    view.keys().copied().collect()
}

/// The escape hatch still works on aliased containers.
pub fn justified(m: &Index) -> u32 {
    // DETERMINISM: summation is order-independent.
    m.values().sum()
}
