//! Fixture: a fully conforming first-party crate — zero diagnostics.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Deterministic by construction: `BTreeMap` iteration is ordered.
pub fn dump(m: &BTreeMap<u32, u32>) -> Vec<(u32, u32)> {
    m.iter().map(|(k, v)| (*k, *v)).collect()
}
