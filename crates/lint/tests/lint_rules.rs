//! End-to-end tests for `dynnet-lint`: each fixture under `tests/fixtures/`
//! is a miniature workspace violating exactly one rule. The tests pin that
//! the rule fires at the expected `file:line`, that the allowlist escapes
//! behave, that diagnostics come out in stable sorted order — and that the
//! real workspace is clean under its checked-in allowlist.

use dynnet_lint::allow::Allowlist;
use dynnet_lint::{run_lint, LintReport};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn lint_fixture(name: &str, allow: &Allowlist) -> LintReport {
    run_lint(&fixture_root(name), allow).expect("fixture lint run")
}

/// Asserts the fixture yields exactly one diagnostic, with the given rule,
/// file, and line.
fn assert_single(report: &LintReport, rule: &str, rel: &str, line: usize) {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got {:?}",
        report.diagnostics
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, rule);
    assert_eq!(d.rel, rel);
    assert_eq!(d.line, line, "diagnostic moved: {d}");
}

#[test]
fn missing_safety_comment_fires() {
    let r = lint_fixture("safety", &Allowlist::default());
    assert_single(&r, "safety-comment", "vendor/shim/src/lib.rs", 5);
}

#[test]
fn missing_forbid_attr_fires() {
    let r = lint_fixture("confine_attr", &Allowlist::default());
    assert_single(&r, "unsafe-confined", "crates/foo/src/lib.rs", 1);
}

#[test]
fn first_party_unsafe_fires_even_with_safety_comment() {
    let r = lint_fixture("confine_unsafe", &Allowlist::default());
    assert_single(&r, "unsafe-confined", "crates/foo/src/lib.rs", 9);
}

#[test]
fn thread_spawn_fires_and_allowlist_blesses() {
    let r = lint_fixture("spawn", &Allowlist::default());
    assert_single(&r, "thread-spawn", "crates/foo/src/lib.rs", 7);

    let allow = Allowlist::parse("thread-spawn crates/foo/src/lib.rs\n").expect("parse");
    let r = lint_fixture("spawn", &allow);
    assert!(
        r.is_clean(),
        "blessed spawn still fired: {:?}",
        r.diagnostics
    );
}

#[test]
fn hash_iteration_fires_without_determinism_comment() {
    // The fixture also contains a `// DETERMINISM:`-justified iteration,
    // which must stay silent: exactly one diagnostic.
    let r = lint_fixture("hash", &Allowlist::default());
    assert_single(&r, "hash-iteration", "crates/foo/src/lib.rs", 9);
}

#[test]
fn wall_clock_fires_without_timing_comment() {
    // As above: the `// TIMING:`-labelled read in the same file is silent.
    let r = lint_fixture("timing", &Allowlist::default());
    assert_single(&r, "wall-clock", "crates/foo/src/lib.rs", 7);
}

#[test]
fn hash_iteration_resolves_aliases_and_bindings() {
    // Iteration through a `type` alias parameter (line 13), an alias
    // constructor binding (line 18), and a propagated `let view = m;`
    // binding (line 23) — none of which mention HashMap on the flagged
    // line. The `// DETERMINISM:`-justified iteration stays silent.
    let r = lint_fixture("hash_alias", &Allowlist::default());
    let lines: Vec<(usize, &str)> = r.diagnostics.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(
        lines,
        vec![
            (13, "hash-iteration"),
            (18, "hash-iteration"),
            (23, "hash-iteration"),
        ],
        "{:?}",
        r.diagnostics
    );
}

#[test]
fn panic_reachability_fires_through_call_chain() {
    // `entry` (public) -> `helper` (private) -> `unwrap()` at line 15, and
    // the raw indexing in `pick` at line 24. The `// INVARIANT:`-proved
    // site, the `[..index()]` node-id form, and the panic in uncalled
    // private code stay silent.
    let r = lint_fixture("panic_reach", &Allowlist::default());
    assert_eq!(r.diagnostics.len(), 2, "{:?}", r.diagnostics);
    let unwrap = &r.diagnostics[0];
    assert_eq!((unwrap.rule, unwrap.line), ("panic-reachability", 15));
    assert!(
        unwrap.msg.contains("foo::entry") && unwrap.msg.contains("entry -> helper"),
        "expected the public root and witness path: {}",
        unwrap.msg
    );
    let indexing = &r.diagnostics[1];
    assert_eq!((indexing.rule, indexing.line), ("panic-reachability", 24));
    assert!(
        indexing.msg.contains("raw indexing"),
        "expected a raw-indexing finding: {}",
        indexing.msg
    );

    // The burn-down directive silences the indexing site but not the unwrap.
    let allow = Allowlist::parse("panic-indexing crates/foo/src/lib.rs\n").expect("parse");
    let r = lint_fixture("panic_reach", &allow);
    assert_single(&r, "panic-reachability", "crates/foo/src/lib.rs", 15);
}

#[test]
fn panic_indexing_directive_goes_stale() {
    // A burn-down entry for a file with no raw indexing left must itself
    // fail the lint — the allowlist only shrinks.
    let allow = Allowlist::parse("panic-indexing crates/foo/src/lib.rs\n").expect("parse");
    let r = lint_fixture("clean", &allow);
    assert_single(&r, "panic-reachability", "crates/foo/src/lib.rs", 1);
    assert!(
        r.diagnostics[0].msg.contains("stale"),
        "expected a stale-directive message: {}",
        r.diagnostics[0].msg
    );
}

#[test]
fn rng_confined_fires_and_allowlist_blesses() {
    // Construction (line 12) and draw (line 13), silenced whole-file by the
    // `rng-confined` directive.
    let r = lint_fixture("rng", &Allowlist::default());
    assert_eq!(r.diagnostics.len(), 2, "{:?}", r.diagnostics);
    assert_eq!(
        (r.diagnostics[0].rule, r.diagnostics[0].line),
        ("rng-confined", 12)
    );
    assert_eq!(
        (r.diagnostics[1].rule, r.diagnostics[1].line),
        ("rng-confined", 13)
    );

    let allow = Allowlist::parse("rng-confined crates/foo/src/lib.rs\n").expect("parse");
    let r = lint_fixture("rng", &allow);
    assert!(
        r.is_clean(),
        "blessed RNG site still fired: {:?}",
        r.diagnostics
    );
}

#[test]
fn hot_path_alloc_fires_inside_marked_region() {
    // The allocation inside the first `// HOT:` region fires; the
    // `// ALLOC:`-justified one and the cold-path allocation stay silent.
    let r = lint_fixture("hot_alloc", &Allowlist::default());
    assert_single(&r, "hot-path-alloc", "crates/foo/src/lib.rs", 14);
}

#[test]
fn ordering_without_justification_fires() {
    // The bare `Ordering::Relaxed` fires; the `// ORDERING:`-justified
    // `Relaxed` and the `SeqCst` stay silent.
    let r = lint_fixture("ordering", &Allowlist::default());
    assert_single(&r, "ordering-justified", "crates/foo/src/lib.rs", 10);
}

#[test]
fn doc_examples_are_linted_at_their_original_lines() {
    // The thread spawn inside the rustdoc example fires at its real line in
    // the source file; the ```text block is prose and stays silent.
    let r = lint_fixture("doc_example", &Allowlist::default());
    assert_single(&r, "thread-spawn", "crates/foo/src/lib.rs", 11);
}

#[test]
fn deny_exception_requires_allowlisting() {
    let r = lint_fixture("deny_exception", &Allowlist::default());
    assert_single(&r, "unsafe-confined", "crates/foo/src/lib.rs", 1);

    let allow = Allowlist::parse("unsafe-deny-exception crates/foo\n").expect("parse");
    let r = lint_fixture("deny_exception", &allow);
    assert!(r.is_clean(), "excepted deny fired: {:?}", r.diagnostics);
}

#[test]
fn clean_fixture_is_clean() {
    let r = lint_fixture("clean", &Allowlist::default());
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.files_scanned, 1);
}

#[test]
fn diagnostics_are_sorted_and_stable() {
    // Two runs over the same tree produce byte-identical, sorted output.
    let a = lint_fixture("hash_alias", &Allowlist::default());
    let b = lint_fixture("hash_alias", &Allowlist::default());
    let render = |r: &LintReport| {
        r.diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&a), render(&b));
    let mut sorted = a.diagnostics.clone();
    sorted.sort();
    assert_eq!(sorted, a.diagnostics);
    // The JSON rendering carries the same findings for the CI matcher.
    let json = a.to_json();
    assert!(json.contains("\"rule\":\"hash-iteration\""), "{json}");
    assert!(json.contains("\"line\":13"), "{json}");
}

#[test]
fn workspace_is_clean_under_checked_in_allowlist() {
    // The acceptance gate: the real workspace, linted with the real
    // allowlist, has zero violations. Any drift (a new unsafe block, a
    // converted unwrap whose budget was not ratcheted) fails this test the
    // same way it fails the CI lint step.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let allow = Allowlist::load(&dynnet_lint::default_allowlist_path(&root)).expect("allowlist");
    let report = run_lint(&root, &allow).expect("workspace lint run");
    let rendered = report
        .diagnostics
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report.is_clean(),
        "workspace lint found violations:\n{rendered}"
    );
    assert!(report.files_scanned > 50, "scanned suspiciously few files");
}
