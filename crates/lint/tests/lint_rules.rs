//! End-to-end tests for `dynnet-lint`: each fixture under `tests/fixtures/`
//! is a miniature workspace violating exactly one rule. The tests pin that
//! the rule fires at the expected `file:line`, that the allowlist escapes
//! behave, that diagnostics come out in stable sorted order — and that the
//! real workspace is clean under its checked-in allowlist.

use dynnet_lint::allow::Allowlist;
use dynnet_lint::{run_lint, LintReport};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn lint_fixture(name: &str, allow: &Allowlist) -> LintReport {
    run_lint(&fixture_root(name), allow).expect("fixture lint run")
}

/// Asserts the fixture yields exactly one diagnostic, with the given rule,
/// file, and line.
fn assert_single(report: &LintReport, rule: &str, rel: &str, line: usize) {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got {:?}",
        report.diagnostics
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, rule);
    assert_eq!(d.rel, rel);
    assert_eq!(d.line, line, "diagnostic moved: {d}");
}

#[test]
fn missing_safety_comment_fires() {
    let r = lint_fixture("safety", &Allowlist::default());
    assert_single(&r, "safety-comment", "vendor/shim/src/lib.rs", 5);
}

#[test]
fn missing_forbid_attr_fires() {
    let r = lint_fixture("confine_attr", &Allowlist::default());
    assert_single(&r, "unsafe-confined", "crates/foo/src/lib.rs", 1);
}

#[test]
fn first_party_unsafe_fires_even_with_safety_comment() {
    let r = lint_fixture("confine_unsafe", &Allowlist::default());
    assert_single(&r, "unsafe-confined", "crates/foo/src/lib.rs", 9);
}

#[test]
fn thread_spawn_fires_and_allowlist_blesses() {
    let r = lint_fixture("spawn", &Allowlist::default());
    assert_single(&r, "thread-spawn", "crates/foo/src/lib.rs", 7);

    let allow = Allowlist::parse("thread-spawn crates/foo/src/lib.rs\n").expect("parse");
    let r = lint_fixture("spawn", &allow);
    assert!(
        r.is_clean(),
        "blessed spawn still fired: {:?}",
        r.diagnostics
    );
}

#[test]
fn hash_iteration_fires_without_determinism_comment() {
    // The fixture also contains a `// DETERMINISM:`-justified iteration,
    // which must stay silent: exactly one diagnostic.
    let r = lint_fixture("hash", &Allowlist::default());
    assert_single(&r, "hash-iteration", "crates/foo/src/lib.rs", 9);
}

#[test]
fn wall_clock_fires_without_timing_comment() {
    // As above: the `// TIMING:`-labelled read in the same file is silent.
    let r = lint_fixture("timing", &Allowlist::default());
    assert_single(&r, "wall-clock", "crates/foo/src/lib.rs", 7);
}

#[test]
fn unwrap_budget_is_exact_in_both_directions() {
    // Budget 1 for 2 sites: fires at the first over-budget site (line 12).
    let allow = Allowlist::parse("unwrap-budget crates/foo/src/lib.rs 1\n").expect("parse");
    let r = lint_fixture("unwrap", &allow);
    assert_single(&r, "unwrap-budget", "crates/foo/src/lib.rs", 12);

    // Exact budget: clean — and the unwrap inside #[cfg(test)] is free.
    let allow = Allowlist::parse("unwrap-budget crates/foo/src/lib.rs 2\n").expect("parse");
    let r = lint_fixture("unwrap", &allow);
    assert!(r.is_clean(), "exact budget fired: {:?}", r.diagnostics);

    // Over-generous budget: stale, must be ratcheted down.
    let allow = Allowlist::parse("unwrap-budget crates/foo/src/lib.rs 3\n").expect("parse");
    let r = lint_fixture("unwrap", &allow);
    assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
    assert_eq!(r.diagnostics[0].rule, "unwrap-budget");
    assert!(
        r.diagnostics[0].msg.contains("stale"),
        "expected a stale-budget message: {}",
        r.diagnostics[0].msg
    );
}

#[test]
fn deny_exception_requires_allowlisting() {
    let r = lint_fixture("deny_exception", &Allowlist::default());
    assert_single(&r, "unsafe-confined", "crates/foo/src/lib.rs", 1);

    let allow = Allowlist::parse("unsafe-deny-exception crates/foo\n").expect("parse");
    let r = lint_fixture("deny_exception", &allow);
    assert!(r.is_clean(), "excepted deny fired: {:?}", r.diagnostics);
}

#[test]
fn clean_fixture_is_clean() {
    let r = lint_fixture("clean", &Allowlist::default());
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert_eq!(r.files_scanned, 1);
}

#[test]
fn diagnostics_are_sorted_and_stable() {
    // Two runs over the same tree produce byte-identical, sorted output.
    let a = lint_fixture("unwrap", &Allowlist::default());
    let b = lint_fixture("unwrap", &Allowlist::default());
    let render = |r: &LintReport| {
        r.diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&a), render(&b));
    let mut sorted = a.diagnostics.clone();
    sorted.sort();
    assert_eq!(sorted, a.diagnostics);
}

#[test]
fn workspace_is_clean_under_checked_in_allowlist() {
    // The acceptance gate: the real workspace, linted with the real
    // allowlist, has zero violations. Any drift (a new unsafe block, a
    // converted unwrap whose budget was not ratcheted) fails this test the
    // same way it fails the CI lint step.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let allow = Allowlist::load(&dynnet_lint::default_allowlist_path(&root)).expect("allowlist");
    let report = run_lint(&root, &allow).expect("workspace lint run");
    let rendered = report
        .diagnostics
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        report.is_clean(),
        "workspace lint found violations:\n{rendered}"
    );
    assert!(report.files_scanned > 50, "scanned suspiciously few files");
}
