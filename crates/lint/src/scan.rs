//! Lexical source model: a line-oriented view of a Rust file with comments
//! and string/char literal contents separated from code, plus a marking of
//! `#[cfg(test)]` regions.
//!
//! This is deliberately *not* a parser. The rules in [`crate::rules`] only
//! need to know (a) which tokens appear in code position (not inside a
//! comment or literal), (b) what the nearby comments say (`// SAFETY:`,
//! `// DETERMINISM:`, `// TIMING:` justifications), and (c) whether a line
//! belongs to test code. A hand-rolled scanner covers that exactly, works
//! offline (no `syn`), and keeps the lint's own behavior trivially
//! deterministic.

/// One source line, split into its code part (literal contents blanked to
/// spaces) and the concatenated text of any comments on the line.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line with comments removed and string/char literal contents
    /// replaced by spaces. Token searches run against this.
    pub code: String,
    /// Text of line/block comments on this line (without the `//`/`/*`
    /// markers). Doc comments are included.
    pub comment: String,
}

/// A scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (diagnostic key).
    pub rel: String,
    /// The scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// `is_test[i]` is true when line `i + 1` is inside a `#[cfg(test)]`
    /// item or the whole file is a test target (`tests/` directory).
    pub is_test: Vec<bool>,
    /// True for the synthetic file produced by [`SourceFile::doc_examples`]:
    /// the fenced ```` ```rust ```` blocks of a real file, re-scanned as
    /// code. Diagnostics keep the real path and line numbers.
    pub from_doc_example: bool,
}

impl SourceFile {
    /// Scans `source` into the line model and marks test regions.
    pub fn scan(rel: &str, source: &str) -> SourceFile {
        let lines = strip(source);
        let mut is_test = vec![false; lines.len()];
        if is_test_path(rel) {
            is_test.iter_mut().for_each(|t| *t = true);
        } else {
            mark_cfg_test_regions(&lines, &mut is_test);
        }
        SourceFile {
            rel: rel.to_string(),
            lines,
            is_test,
            from_doc_example: false,
        }
    }

    /// Extracts this file's doc examples (fenced ```` ```rust ```` blocks in
    /// comments, including ` ```ignore `/` ```no_run `) into a synthetic
    /// [`SourceFile`] whose code lines sit at their original line numbers
    /// (non-example lines are blank), so rule diagnostics point into the
    /// real file. Hidden lines (`# ` prefix) are unhidden and linted too.
    /// Returns `None` when the file has no rust example lines.
    pub fn doc_examples(&self) -> Option<SourceFile> {
        let mut example_lines: Vec<(usize, String)> = Vec::new();
        let mut in_example = false;
        let mut is_rust = false;
        for (idx, line) in self.lines.iter().enumerate() {
            if line.comment.is_empty() {
                continue;
            }
            let text = doc_comment_text(&line.comment);
            let trimmed = text.trim_start();
            if let Some(info) = trimmed.strip_prefix("```") {
                if in_example {
                    in_example = false;
                } else {
                    in_example = true;
                    is_rust = fence_is_rust(info);
                }
                continue;
            }
            if in_example && is_rust {
                let code = match trimmed.strip_prefix("# ") {
                    Some(unhidden) => unhidden.to_string(),
                    None if trimmed == "#" => String::new(),
                    None => text.clone(),
                };
                example_lines.push((idx + 1, code));
            }
        }
        let max_line = example_lines.last()?.0;
        let mut padded = vec![String::new(); max_line];
        for (lineno, code) in example_lines {
            padded[lineno - 1] = code;
        }
        let mut file = SourceFile::scan(&self.rel, &padded.join("\n"));
        file.from_doc_example = true;
        Some(file)
    }

    /// True if any comment on lines `line - back ..= line` (1-indexed)
    /// contains `marker`. Used for the `SAFETY:`/`DETERMINISM:`/`TIMING:`
    /// justification comments.
    pub fn comment_near(&self, line: usize, back: usize, marker: &str) -> bool {
        let lo = line.saturating_sub(back).max(1);
        (lo..=line.min(self.lines.len())).any(|l| self.lines[l - 1].comment.contains(marker))
    }
}

/// Normalizes one line of collected comment text to its doc content: the
/// scanner strips `//` but keeps the third `/` of `///` (and the `!` of
/// `//!`); drop that marker and one following space.
fn doc_comment_text(comment: &str) -> String {
    let text = comment
        .strip_prefix('/')
        .or_else(|| comment.strip_prefix('!'))
        .unwrap_or(comment);
    text.strip_prefix(' ').unwrap_or(text).to_string()
}

/// True when a fence info string marks a rust example (rustdoc lints
/// ` ``` `, ` ```rust `, ` ```ignore `, ` ```no_run `, …; ` ```text ` and
/// other languages are prose).
fn fence_is_rust(info: &str) -> bool {
    let info = info.trim();
    info.is_empty()
        || info.split(',').all(|t| {
            matches!(
                t.trim(),
                "rust"
                    | "ignore"
                    | "no_run"
                    | "should_panic"
                    | "compile_fail"
                    | "edition2015"
                    | "edition2018"
                    | "edition2021"
                    | "edition2024"
            )
        })
}

/// Whole-file test targets: integration test directories at the workspace
/// root or inside a crate.
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

/// Scanner state across lines.
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth is tracked.
    BlockComment(u32),
    /// Inside a regular string literal (escapes honored).
    Str,
    /// Inside a raw string literal closed by `"` followed by `hashes` `#`s.
    RawStr(u32),
    /// Inside a char/byte literal.
    CharLit,
}

/// Splits the source into per-line code and comment parts. String and char
/// literal contents are blanked to spaces in the code part (the delimiters
/// are dropped too); comment text is collected verbatim.
fn strip(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;
    // True when the previous code char can continue an identifier — used to
    // tell the raw-string prefix `r"`/`br#"` apart from identifiers ending
    // in `r`/`b` (e.g. `for`, `slab`).
    let mut prev_ident = false;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            prev_ident = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    cur.code.push(' ');
                    i += 1;
                } else if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let n1 = chars.get(i + 1).copied();
                    let n2 = chars.get(i + 2).copied();
                    let is_char = match n1 {
                        Some('\\') => true,
                        Some(ch) if ch != '\'' => n2 == Some('\''),
                        _ => false,
                    };
                    if is_char {
                        state = State::CharLit;
                        cur.code.push(' ');
                    } else {
                        cur.code.push('\'');
                    }
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string prefix: r" r#" b" br" br#".
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw_ok = c == 'r' || j > i + 1; // `b` alone + hashes is not a prefix
                    if raw_ok && chars.get(j) == Some(&'"') && (c == 'r' || hashes > 0 || j > i + 1)
                    {
                        state = State::RawStr(hashes);
                        cur.code.push(' ');
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        state = State::Str;
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        cur.code.push(c);
                        prev_ident = true;
                        i += 1;
                        continue;
                    }
                } else {
                    cur.code.push(c);
                    prev_ident = c.is_alphanumeric() || c == '_';
                    i += 1;
                    continue;
                }
                prev_ident = false;
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (possibly a quote)
                } else if c == '"' {
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut k = 0u32;
                    while k < hashes && chars.get(j) == Some(&'#') {
                        k += 1;
                        j += 1;
                    }
                    if k == hashes {
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                cur.code.push(' ');
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// Marks every line of each `#[cfg(test)]` item (module, fn, impl — the
/// attribute's target up to its closing brace or terminating semicolon).
fn mark_cfg_test_regions(lines: &[Line], is_test: &mut [bool]) {
    // Flatten the code lines into one string with recorded line starts so
    // brace matching can run across line boundaries.
    let mut full = String::new();
    let mut line_starts = Vec::with_capacity(lines.len());
    for line in lines {
        line_starts.push(full.len());
        full.push_str(&line.code);
        full.push('\n');
    }
    let line_of = |pos: usize| match line_starts.binary_search(&pos) {
        Ok(l) => l,
        Err(l) => l - 1,
    };

    let bytes = full.as_bytes();
    let mut search_from = 0usize;
    while let Some(off) = full[search_from..].find("#[cfg(test)]") {
        let attr_start = search_from + off;
        let mut pos = attr_start + "#[cfg(test)]".len();
        // Walk to the end of the attributed item: skip further attributes
        // (`[...]` groups), then match the first `{` to its closing brace,
        // or stop at a top-level `;` (e.g. `#[cfg(test)] mod tests;`).
        let mut sq_depth = 0i32;
        let mut brace_depth = 0i32;
        let mut end = bytes.len().saturating_sub(1);
        while pos < bytes.len() {
            match bytes[pos] {
                b'[' => sq_depth += 1,
                b']' => sq_depth -= 1,
                b'{' if sq_depth == 0 => {
                    brace_depth += 1;
                }
                b'}' if sq_depth == 0 => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end = pos;
                        break;
                    }
                }
                b';' if sq_depth == 0 && brace_depth == 0 => {
                    end = pos;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        for l in line_of(attr_start)..=line_of(end.min(bytes.len() - 1)) {
            if l < is_test.len() {
                is_test[l] = true;
            }
        }
        search_from = attr_start + "#[cfg(test)]".len();
    }
}

/// Returns the byte offsets at which `token` occurs in `code` as a whole
/// word (neither neighbor is an identifier character).
pub fn find_word(code: &str, token: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(off) = code[from..].find(token) {
        let start = from + off;
        let end = start + token.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            hits.push(start);
        }
        from = start + 1;
    }
    hits
}

/// True for bytes that can continue a Rust identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = "let x = \"unsafe\"; // unsafe in comment\nlet y = 'u';\n/* unsafe */ let z = 1;";
        let lines = strip(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe in comment"));
        assert!(!lines[1].code.contains('u'));
        assert!(lines[2].comment.contains("unsafe"));
        assert!(lines[2].code.contains("let z = 1;"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "let s = r#\"thread::spawn\"#;\nfn f<'a>(x: &'a str) -> &'a str { x }";
        let lines = strip(src);
        assert!(!lines[0].code.contains("spawn"));
        assert!(lines[1].code.contains("'a"), "lifetimes stay in code");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let a = 1;";
        let lines = strip(src);
        assert!(lines[0].code.contains("let a = 1;"));
        assert!(!lines[0].code.contains("inner"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn live2() {}";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert_eq!(f.is_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_fn_and_attr_stacking() {
        let src =
            "#[cfg(test)]\n#[allow(dead_code)]\nfn scan_twin() {\n    body();\n}\nfn live() {}";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert_eq!(f.is_test, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn tests_dir_is_whole_file_test() {
        let f = SourceFile::scan("crates/x/tests/it.rs", "fn main() {}");
        assert!(f.is_test[0]);
        let f = SourceFile::scan("tests/integration.rs", "fn main() {}");
        assert!(f.is_test[0]);
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert_eq!(find_word("unsafe_code unsafe", "unsafe"), vec![12]);
        assert_eq!(find_word("an unsafe block", "unsafe"), vec![3]);
        assert!(find_word("#![forbid(unsafe_code)]", "unsafe").is_empty());
    }

    #[test]
    fn doc_examples_extracted_at_original_lines() {
        let src = "\
//! Crate docs.
//!
//! ```
//! let m = foo();
//! # let hidden = bar();
//! ```
//!
//! ```text
//! not rust: thread::spawn
//! ```
fn live() {}
";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        let doc = f.doc_examples().expect("has examples");
        assert!(doc.from_doc_example);
        assert_eq!(doc.lines[3].code.trim(), "let m = foo();");
        assert_eq!(doc.lines[4].code.trim(), "let hidden = bar();");
        assert!(
            !doc.lines.iter().any(|l| l.code.contains("thread::spawn")),
            "text fence skipped"
        );
        assert!(!doc.lines.iter().any(|l| l.code.contains("live")));
    }

    #[test]
    fn doc_examples_absent() {
        let f = SourceFile::scan("crates/x/src/lib.rs", "// plain comment\nfn f() {}\n");
        assert!(f.doc_examples().is_none());
    }

    #[test]
    fn char_literal_vs_byte_string() {
        let src = "let a = b\"HashMap\"; let c = 'H'; let l: &'static str = x;";
        let lines = strip(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("'static"));
    }
}
