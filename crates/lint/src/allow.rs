//! The lint allowlist: blessed sites and burn-down lists, parsed from a
//! plain-text file (`crates/lint/dynnet-lint.allow` in this workspace).
//!
//! Format: one directive per line, `#` starts a comment.
//!
//! ```text
//! # blessed thread-creation sites (rule: thread-spawn)
//! thread-spawn vendor/rayon/src/lib.rs
//! # whole-file escapes for the determinism / wall-clock rules
//! hash-iteration crates/foo/src/bar.rs
//! wall-clock crates/foo/src/bench_helper.rs
//! # files blessed to construct or draw from RNGs (rule: rng-confined)
//! rng-confined crates/runtime/src/rng.rs
//! # crates whose public APIs are exempt from panic-reachability
//! panic-exempt crates/bench
//! # burn-down: files whose raw indexing predates panic-reachability
//! panic-indexing crates/graph/src/window.rs
//! # crate roots allowed #![deny(unsafe_code)] instead of forbid
//! unsafe-deny-exception crates/foo
//! ```
//!
//! Burn-down directives are exact: a `panic-indexing` line for a file with
//! no raw indexing left *fails* the lint with a staleness finding — that is
//! what makes the allowlist a burn-down list rather than a creeping
//! ceiling. (The PR 6 `unwrap-budget` directive worked the same way; it was
//! retired when the last budgeted sites were converted to typed errors and
//! the `panic-reachability` rule took over — the strict parser rejects any
//! resurrected budget line.)

use std::collections::BTreeSet;

/// Parsed allowlist. The default value allows nothing.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// Files allowed to create threads (rule `thread-spawn`).
    pub thread_spawn: BTreeSet<String>,
    /// Files exempt from the hash-iteration rule.
    pub hash_iteration: BTreeSet<String>,
    /// Files exempt from the wall-clock rule.
    pub wall_clock: BTreeSet<String>,
    /// Files blessed to construct RNGs or draw from them (rule
    /// `rng-confined`): the deterministic hierarchy roots, the adversaries,
    /// and the algorithm step functions.
    pub rng_confined: BTreeSet<String>,
    /// Crate directory prefixes (e.g. `crates/bench`) whose public fns are
    /// not treated as panic-reachability roots — binary harnesses whose
    /// error handling *is* panicking.
    pub panic_exempt: BTreeSet<String>,
    /// Burn-down list: files whose raw indexing sites predate the
    /// `panic-reachability` rule and are not yet individually proven.
    /// Stale entries (no raw indexing left) fail the lint.
    pub panic_indexing: BTreeSet<String>,
    /// Crate directory prefixes whose root may use `#![deny(unsafe_code)]`
    /// instead of `forbid`.
    pub unsafe_deny_exception: BTreeSet<String>,
}

impl Allowlist {
    /// Parses the allowlist format. Unknown directives and malformed lines
    /// are errors: a stale or typo'd allowlist must not silently allow.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut allow = Allowlist::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let lineno = i + 1;
            let mut arg = |what: &str| -> Result<String, String> {
                parts
                    .next()
                    .map(str::to_string)
                    .ok_or_else(|| format!("allowlist line {lineno}: missing {what}"))
            };
            match directive {
                "thread-spawn" => {
                    allow.thread_spawn.insert(arg("path")?);
                }
                "hash-iteration" => {
                    allow.hash_iteration.insert(arg("path")?);
                }
                "wall-clock" => {
                    allow.wall_clock.insert(arg("path")?);
                }
                "rng-confined" => {
                    allow.rng_confined.insert(arg("path")?);
                }
                "panic-exempt" => {
                    allow.panic_exempt.insert(arg("crate path")?);
                }
                "panic-indexing" => {
                    allow.panic_indexing.insert(arg("path")?);
                }
                "unsafe-deny-exception" => {
                    allow.unsafe_deny_exception.insert(arg("crate path")?);
                }
                other => {
                    return Err(format!(
                        "allowlist line {lineno}: unknown directive {other:?}"
                    ));
                }
            }
            if let Some(extra) = parts.next() {
                return Err(format!(
                    "allowlist line {lineno}: unexpected trailing {extra:?}"
                ));
            }
        }
        Ok(allow)
    }

    /// Loads and parses an allowlist file.
    pub fn load(path: &std::path::Path) -> Result<Allowlist, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
        Allowlist::parse(&text)
    }

    /// True if `rel` lives inside a crate listed in `panic-exempt`.
    pub fn is_panic_exempt(&self, rel: &str) -> bool {
        self.panic_exempt.iter().any(|p| {
            rel.strip_prefix(p.as_str())
                .is_some_and(|r| r.starts_with('/'))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_directives() {
        let a = Allowlist::parse(
            "# comment\n\
             thread-spawn vendor/rayon/src/lib.rs  # blessed\n\
             hash-iteration crates/a/src/b.rs\n\
             wall-clock crates/a/src/c.rs\n\
             rng-confined crates/runtime/src/rng.rs\n\
             panic-exempt crates/bench\n\
             panic-indexing crates/graph/src/window.rs\n\
             unsafe-deny-exception crates/x\n",
        )
        .expect("parse");
        assert!(a.thread_spawn.contains("vendor/rayon/src/lib.rs"));
        assert!(a.rng_confined.contains("crates/runtime/src/rng.rs"));
        assert!(a.panic_indexing.contains("crates/graph/src/window.rs"));
        assert!(a.is_panic_exempt("crates/bench/src/lib.rs"));
        assert!(!a.is_panic_exempt("crates/bench2/src/lib.rs"));
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Allowlist::parse("frobnicate x").is_err());
        // The retired PR 6 budget directives must not silently parse.
        assert!(Allowlist::parse("unwrap-budget crates/a/src/d.rs 3").is_err());
        assert!(Allowlist::parse("unwrap-exempt crates/bench").is_err());
        assert!(Allowlist::parse("panic-indexing").is_err());
        assert!(Allowlist::parse("thread-spawn a b").is_err());
    }
}
