//! The lint allowlist: blessed sites and burn-down budgets, parsed from a
//! plain-text file (`crates/lint/dynnet-lint.allow` in this workspace).
//!
//! Format: one directive per line, `#` starts a comment.
//!
//! ```text
//! # blessed thread-creation sites (rule: thread-spawn)
//! thread-spawn vendor/rayon/src/lib.rs
//! # whole-file escapes for the determinism / wall-clock rules
//! hash-iteration crates/foo/src/bar.rs
//! wall-clock crates/foo/src/bench_helper.rs
//! # unwrap()/expect() burn-down: exact per-file counts in non-test code
//! unwrap-budget crates/graph/src/window.rs 5
//! # crates exempt from the unwrap rule (binary harnesses, the lint itself)
//! unwrap-exempt crates/bench
//! # crate roots allowed #![deny(unsafe_code)] instead of forbid
//! unsafe-deny-exception crates/foo
//! ```
//!
//! Budgets are exact in both directions: a file with *fewer* sites than its
//! budget fails too, with a message asking for the budget to be ratcheted
//! down — that is what makes the allowlist a burn-down list rather than a
//! creeping ceiling.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed allowlist. The default value allows nothing.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// Files allowed to create threads (rule `thread-spawn`).
    pub thread_spawn: BTreeSet<String>,
    /// Files exempt from the hash-iteration rule.
    pub hash_iteration: BTreeSet<String>,
    /// Files exempt from the wall-clock rule.
    pub wall_clock: BTreeSet<String>,
    /// Per-file unwrap()/expect() budgets (exact counts).
    pub unwrap_budget: BTreeMap<String, usize>,
    /// Crate directory prefixes (e.g. `crates/bench`) exempt from the
    /// unwrap rule entirely.
    pub unwrap_exempt: BTreeSet<String>,
    /// Crate directory prefixes whose root may use `#![deny(unsafe_code)]`
    /// instead of `forbid`.
    pub unsafe_deny_exception: BTreeSet<String>,
}

impl Allowlist {
    /// Parses the allowlist format. Unknown directives and malformed lines
    /// are errors: a stale or typo'd allowlist must not silently allow.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut allow = Allowlist::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let lineno = i + 1;
            let mut arg = |what: &str| -> Result<String, String> {
                parts
                    .next()
                    .map(str::to_string)
                    .ok_or_else(|| format!("allowlist line {lineno}: missing {what}"))
            };
            match directive {
                "thread-spawn" => {
                    allow.thread_spawn.insert(arg("path")?);
                }
                "hash-iteration" => {
                    allow.hash_iteration.insert(arg("path")?);
                }
                "wall-clock" => {
                    allow.wall_clock.insert(arg("path")?);
                }
                "unwrap-budget" => {
                    let path = arg("path")?;
                    let count = arg("count")?;
                    let count: usize = count
                        .parse()
                        .map_err(|_| format!("allowlist line {lineno}: bad count {count:?}"))?;
                    allow.unwrap_budget.insert(path, count);
                }
                "unwrap-exempt" => {
                    allow.unwrap_exempt.insert(arg("crate path")?);
                }
                "unsafe-deny-exception" => {
                    allow.unsafe_deny_exception.insert(arg("crate path")?);
                }
                other => {
                    return Err(format!(
                        "allowlist line {lineno}: unknown directive {other:?}"
                    ));
                }
            }
            if let Some(extra) = parts.next() {
                return Err(format!(
                    "allowlist line {lineno}: unexpected trailing {extra:?}"
                ));
            }
        }
        Ok(allow)
    }

    /// Loads and parses an allowlist file.
    pub fn load(path: &std::path::Path) -> Result<Allowlist, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
        Allowlist::parse(&text)
    }

    /// True if `rel` lives inside a crate listed in `unwrap-exempt`.
    pub fn is_unwrap_exempt(&self, rel: &str) -> bool {
        self.unwrap_exempt.iter().any(|p| {
            rel.strip_prefix(p.as_str())
                .is_some_and(|r| r.starts_with('/'))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_directives() {
        let a = Allowlist::parse(
            "# comment\n\
             thread-spawn vendor/rayon/src/lib.rs  # blessed\n\
             hash-iteration crates/a/src/b.rs\n\
             wall-clock crates/a/src/c.rs\n\
             unwrap-budget crates/a/src/d.rs 7\n\
             unwrap-exempt crates/bench\n\
             unsafe-deny-exception crates/x\n",
        )
        .expect("parse");
        assert!(a.thread_spawn.contains("vendor/rayon/src/lib.rs"));
        assert_eq!(a.unwrap_budget["crates/a/src/d.rs"], 7);
        assert!(a.is_unwrap_exempt("crates/bench/src/lib.rs"));
        assert!(!a.is_unwrap_exempt("crates/bench2/src/lib.rs"));
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Allowlist::parse("frobnicate x").is_err());
        assert!(Allowlist::parse("unwrap-budget crates/a/src/d.rs").is_err());
        assert!(Allowlist::parse("unwrap-budget crates/a/src/d.rs seven").is_err());
        assert!(Allowlist::parse("thread-spawn a b").is_err());
    }
}
