//! Token-tree parsing on top of the lexical line model.
//!
//! [`crate::scan`] separates code from comments and literals; this module
//! turns the remaining code into a flat token stream with balanced-delimiter
//! structure ([`tokenize`], [`match_delim`]) and recognizes the handful of
//! item shapes the semantic rules need: function items with visibility and
//! body extents ([`fn_items`]), `impl` blocks ([`impl_blocks`]), call sites
//! ([`call_sites`]), and marker-anchored brace regions ([`region_after`],
//! used by the `// HOT:` rule).
//!
//! This is still not a full Rust parser — no expressions, no generics
//! resolution, no name hygiene. It is exactly the token-tree layer `syn`
//! would provide, hand-rolled because the build environment is offline, and
//! deliberately deterministic: tokens are produced in source order and every
//! consumer iterates them in source order.

use crate::scan::Line;

/// Delimiter kinds of a token-tree group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` … `)`
    Paren,
    /// `[` … `]`
    Bracket,
    /// `{` … `}`
    Brace,
}

/// One token of the code stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier, keyword, or numeric literal (anything `[A-Za-z0-9_]+`).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-indexed source line the token starts on.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// True if the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Tokenizes the scanned code lines (comments and literal contents are
/// already gone) into a flat stream. Lifetimes (`'a`) are dropped; numeric
/// literals arrive as [`TokenKind::Ident`] (they never match a name lookup,
/// since identifiers cannot start with a digit).
pub fn tokenize(lines: &[Line]) -> Vec<Token> {
    let mut tokens = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(chars[start..i].iter().collect()),
                    line: lineno,
                });
            } else if c == '\'' {
                // A surviving quote is a lifetime marker (char literals were
                // blanked by the scanner); skip it and its identifier.
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                let kind = match c {
                    '(' => TokenKind::Open(Delim::Paren),
                    ')' => TokenKind::Close(Delim::Paren),
                    '[' => TokenKind::Open(Delim::Bracket),
                    ']' => TokenKind::Close(Delim::Bracket),
                    '{' => TokenKind::Open(Delim::Brace),
                    '}' => TokenKind::Close(Delim::Brace),
                    other => TokenKind::Punct(other),
                };
                tokens.push(Token { kind, line: lineno });
                i += 1;
            }
        }
    }
    tokens
}

/// Returns the index of the token closing the group opened at `open`
/// (`tokens[open]` must be a [`TokenKind::Open`]), or `None` if the stream
/// is unbalanced (malformed input is tolerated, never panicked on).
pub fn match_delim(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Function-item visibility, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` at all.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — not exported from the crate.
    Restricted,
    /// Plain `pub` — part of the crate's public API surface.
    Public,
}

/// One `fn` item recognized in the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// As-written visibility (`pub` on an inherent method of a private type
    /// is still reported [`Visibility::Public`] — an over-approximation the
    /// reachability rule accepts).
    pub vis: Visibility,
    /// The `Self` type name when the fn sits in an `impl` block.
    pub self_type: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub decl_line: usize,
    /// 1-indexed line range of the body, inclusive (`None` for bodyless
    /// trait-method declarations).
    pub body_lines: Option<(usize, usize)>,
    /// Token index range of the body group, exclusive of the braces.
    pub body_tokens: Option<(usize, usize)>,
    /// Token index range of the parameter list, exclusive of the parens.
    pub param_tokens: Option<(usize, usize)>,
}

/// Recognizes every `fn` item in the stream, with visibility, enclosing
/// `impl` type, parameter-list and body extents.
pub fn fn_items(tokens: &[Token]) -> Vec<FnItem> {
    let impls = impl_blocks(tokens);
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.ident() else {
            i += 1;
            continue;
        };
        let vis = visibility_before(tokens, i);
        let self_type = impls
            .iter()
            .find(|b| b.body_tokens.0 <= i && i < b.body_tokens.1)
            .map(|b| b.type_name.clone());
        // Parameter list: first paren group after the name (skips generics,
        // which contain no parens before the parameter list).
        let mut j = i + 2;
        let mut param_tokens = None;
        let mut angle_depth = 0i32;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('<') => angle_depth += 1,
                // `->` must not close a generic list (Fn-trait bounds).
                TokenKind::Punct('>') if !(j > 0 && tokens[j - 1].is_punct('-')) => {
                    angle_depth -= 1
                }
                TokenKind::Open(Delim::Paren) if angle_depth <= 0 => {
                    if let Some(close) = match_delim(tokens, j) {
                        param_tokens = Some((j + 1, close));
                        j = close;
                    }
                    break;
                }
                TokenKind::Punct(';') | TokenKind::Open(Delim::Brace) => break,
                _ => {}
            }
            j += 1;
        }
        // Body: the next top-level `{` before a `;` ends the header.
        let mut body_tokens = None;
        let mut body_lines = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct(';') => break,
                TokenKind::Open(Delim::Brace) => {
                    if let Some(close) = match_delim(tokens, j) {
                        body_tokens = Some((j + 1, close));
                        body_lines = Some((tokens[j].line, tokens[close].line));
                    }
                    break;
                }
                TokenKind::Open(_) => {
                    j = match_delim(tokens, j).unwrap_or(tokens.len());
                }
                _ => {}
            }
            j += 1;
        }
        items.push(FnItem {
            name: name.to_string(),
            vis,
            self_type,
            decl_line: tokens[i].line,
            body_lines,
            body_tokens,
            param_tokens,
        });
        i += 2;
    }
    items
}

/// Reads the visibility of the item whose defining keyword sits at `kw`:
/// walks backwards over the contiguous header (attributes, `const`,
/// `unsafe`, `async`, `extern`, `default`) looking for `pub`.
fn visibility_before(tokens: &[Token], kw: usize) -> Visibility {
    const HEADER: [&str; 6] = ["const", "unsafe", "async", "extern", "default", "pub"];
    let mut i = kw;
    while i > 0 {
        let prev = &tokens[i - 1];
        match &prev.kind {
            TokenKind::Ident(s) if HEADER.contains(&s.as_str()) => {
                if s == "pub" {
                    return Visibility::Public;
                }
                i -= 1;
            }
            // `pub(crate)` / `pub(super)`: a paren group preceded by `pub`.
            TokenKind::Close(Delim::Paren) => {
                let mut depth = 1i32;
                let mut j = i - 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match tokens[j].kind {
                        TokenKind::Close(Delim::Paren) => depth += 1,
                        TokenKind::Open(Delim::Paren) => depth -= 1,
                        _ => {}
                    }
                }
                if j > 0 && tokens[j - 1].is_ident("pub") {
                    return Visibility::Restricted;
                }
                return Visibility::Private;
            }
            _ => return Visibility::Private,
        }
    }
    Visibility::Private
}

/// One `impl` block: the `Self` type name and the body extent.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// The implemented type's name (the last path segment before the body,
    /// with generics stripped; for `impl Trait for Type` this is `Type`).
    pub type_name: String,
    /// Token range of the body, exclusive of the braces.
    pub body_tokens: (usize, usize),
}

/// Recognizes `impl` blocks and the type they attach methods to.
pub fn impl_blocks(tokens: &[Token]) -> Vec<ImplBlock> {
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Scan the header up to the body brace; remember the last plain
        // identifier at angle-depth 0 that is not a keyword — that is the
        // type name (`impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`).
        let mut j = i + 1;
        let mut angle_depth = 0i32;
        let mut type_name: Option<String> = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('<') => angle_depth += 1,
                // `->` in an Fn-trait bound must not close the generic list.
                TokenKind::Punct('>') if !(j > 0 && tokens[j - 1].is_punct('-')) => {
                    angle_depth -= 1
                }
                TokenKind::Ident(s)
                    if angle_depth == 0
                        && !matches!(s.as_str(), "for" | "where" | "dyn" | "mut" | "const") =>
                {
                    type_name = Some(s.clone());
                }
                TokenKind::Open(Delim::Brace) => {
                    if let (Some(name), Some(close)) = (type_name.take(), match_delim(tokens, j)) {
                        blocks.push(ImplBlock {
                            type_name: name,
                            body_tokens: (j + 1, close),
                        });
                        // Nested impls inside fn bodies are rare; scanning
                        // forward from j+1 keeps them recognized too.
                    }
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        i = j.max(i) + 1;
    }
    blocks
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (last path segment for qualified calls).
    pub name: String,
    /// The path segment directly before the name for `Qualifier::name(...)`
    /// calls (`Type::new`, `module::helper`).
    pub qualifier: Option<String>,
    /// True for `.name(...)` method-call syntax.
    pub method: bool,
    /// 1-indexed line of the call.
    pub line: usize,
}

/// Rust keywords that can directly precede a `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "let", "else", "impl",
];

/// Extracts the call sites in `tokens[range]`: `name(…)`, `path::name(…)`,
/// and `.name(…)`. Macro invocations (`name!(…)`) are *excluded* — they are
/// surfaced separately by the lexical panic-site scan.
pub fn call_sites(tokens: &[Token], range: (usize, usize)) -> Vec<CallSite> {
    let mut calls = Vec::new();
    let (start, end) = range;
    for i in start..end.min(tokens.len()) {
        if !matches!(tokens[i].kind, TokenKind::Open(Delim::Paren)) || i == 0 {
            continue;
        }
        let Some(name) = tokens[i - 1].ident() else {
            continue;
        };
        if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // Macro call `name!(` — the `!` sits between name and paren? No:
        // for macros the stream is [name, '!', '(' ], so tokens[i-1] is '!'
        // and we never get here. Handled: nothing to exclude.
        let mut qualifier = None;
        let mut method = false;
        if i >= 2 {
            if tokens[i - 2].is_punct('.') {
                method = true;
            } else if i >= 4 && tokens[i - 2].is_punct(':') && tokens[i - 3].is_punct(':') {
                qualifier = tokens[i - 4].ident().map(str::to_string);
            }
        }
        calls.push(CallSite {
            name: name.to_string(),
            qualifier,
            method,
            line: tokens[i - 1].line,
        });
    }
    calls
}

/// Returns the inclusive line range of the brace region anchored at a marker
/// on `marker_line`: the body of the first `{` group opening on a line
/// `>= marker_line` (the marker's own line allows trailing markers). Used by
/// the `// HOT:` rule to turn one comment into a region.
pub fn region_after(tokens: &[Token], marker_line: usize) -> Option<(usize, usize)> {
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t.kind, TokenKind::Open(Delim::Brace)) && t.line >= marker_line {
            let close = match_delim(tokens, i)?;
            return Some((t.line, tokens[close].line));
        }
    }
    None
}

/// Renders `tokens[range]` back to a compact string (single spaces between
/// tokens) — used for type strings in the symbol table.
pub fn render(tokens: &[Token], range: (usize, usize)) -> String {
    let mut out = String::new();
    for t in &tokens[range.0..range.1.min(tokens.len())] {
        let s = match &t.kind {
            TokenKind::Ident(s) => s.as_str(),
            TokenKind::Punct(c) => {
                out.push(*c);
                continue;
            }
            TokenKind::Open(Delim::Paren) => "(",
            TokenKind::Close(Delim::Paren) => ")",
            TokenKind::Open(Delim::Bracket) => "[",
            TokenKind::Close(Delim::Bracket) => "]",
            TokenKind::Open(Delim::Brace) => "{",
            TokenKind::Close(Delim::Brace) => "}",
        };
        if !out.is_empty() && out.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
            out.push(' ');
        }
        out.push_str(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&SourceFile::scan("crates/x/src/lib.rs", src).lines)
    }

    #[test]
    fn tokenizes_with_lines_and_delims() {
        let t = toks("fn f(a: u32) {\n    g(a);\n}");
        assert!(t[0].is_ident("fn"));
        assert!(t[1].is_ident("f"));
        assert_eq!(t[0].line, 1);
        let open = t
            .iter()
            .position(|t| t.kind == TokenKind::Open(Delim::Brace))
            .expect("body brace");
        let close = match_delim(&t, open).expect("balanced");
        assert_eq!(t[close].line, 3);
    }

    #[test]
    fn lifetimes_are_dropped_literals_blank() {
        let t = toks("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(!t.iter().any(|t| t.is_ident("a") && t.line == 1));
        let t = toks("let s = \"fn fake()\";");
        assert!(!t.iter().any(|t| t.is_ident("fake")));
    }

    #[test]
    fn fn_items_with_visibility_and_bodies() {
        let src = "\
pub fn api() { helper(); }
fn helper() {}
pub(crate) fn internal() {}
impl Widget {
    pub fn method(&self) -> u32 { self.x }
}
trait T { fn decl(&self); }
";
        let t = toks(src);
        let fns = fn_items(&t);
        let by_name = |n: &str| fns.iter().find(|f| f.name == n).expect(n);
        assert_eq!(by_name("api").vis, Visibility::Public);
        assert_eq!(by_name("helper").vis, Visibility::Private);
        assert_eq!(by_name("internal").vis, Visibility::Restricted);
        let m = by_name("method");
        assert_eq!(m.vis, Visibility::Public);
        assert_eq!(m.self_type.as_deref(), Some("Widget"));
        assert_eq!(m.body_lines, Some((5, 5)));
        assert!(by_name("decl").body_lines.is_none());
    }

    #[test]
    fn call_sites_distinguish_shapes() {
        let src = "fn f() {\n    plain();\n    Graph::new(3);\n    x.method(1);\n    if (a) {}\n    mac!(arg);\n}";
        let t = toks(src);
        let body = fn_items(&t)[0].body_tokens.expect("body");
        let calls = call_sites(&t, body);
        assert!(calls
            .iter()
            .any(|c| c.name == "plain" && !c.method && c.qualifier.is_none()));
        assert!(calls
            .iter()
            .any(|c| c.name == "new" && c.qualifier.as_deref() == Some("Graph")));
        assert!(calls.iter().any(|c| c.name == "method" && c.method));
        assert!(!calls.iter().any(|c| c.name == "if"));
        assert!(!calls.iter().any(|c| c.name == "mac"));
    }

    #[test]
    fn region_after_marker() {
        let src = "fn f() {\n    setup();\n    for i in 0..n {\n        body();\n    }\n}";
        let t = toks(src);
        // A marker on line 3 (the `for` line) covers the loop body.
        assert_eq!(region_after(&t, 3), Some((3, 5)));
        // A marker on line 1 covers the whole fn.
        assert_eq!(region_after(&t, 1), Some((1, 6)));
    }

    #[test]
    fn render_types() {
        let t = toks("x: HashMap<Edge, usize>,");
        let s = render(&t, (2, t.len() - 1));
        assert_eq!(s, "HashMap<Edge,usize>");
    }
}
