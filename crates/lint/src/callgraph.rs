//! Cross-file call graph over the first-party crates, powering the
//! `panic-reachability` rule: any path from a public library API to a panic
//! site (`unwrap`/`expect`/`panic!`-family macros/raw indexing) is a
//! finding unless the site carries an `// INVARIANT:` comment stating why
//! it cannot fire.
//!
//! This replaces the PR 6 per-file unwrap *budget* with a reachability
//! *proof*: instead of counting sites, the rule asks whether a caller
//! outside the crate can trip one. The graph is name-resolved, not
//! type-resolved, so edges are built conservatively:
//!
//! * `Type::name(…)` resolves through the `impl` blocks collected by
//!   [`crate::parse::impl_blocks`];
//! * plain `name(…)` resolves to same-file candidates first, then to a
//!   unique workspace-wide name, then to same-crate candidates;
//! * `.name(…)` method calls resolve only when the name is unambiguous
//!   among first-party fns *and* not a common std method name — otherwise
//!   every `.push(…)` in the workspace would alias every first-party
//!   `push` method.
//!
//! Missed edges are possible (a renamed import, a function pointer); the
//! rule is a high-signal ratchet, not a soundness proof. Two escapes exist:
//! a `// INVARIANT:` comment at the site (the reviewed justification), and
//! the `panic-indexing <file>` allowlist directive — a burn-down list for
//! files whose raw indexing predates the rule. Indexing through
//! `NodeId::index()` (`outputs[u.index()]`) is structurally exempt: node
//! ids are validated against the node universe at construction, the
//! repo-wide invariant PR 1 established.

use crate::allow::Allowlist;
use crate::parse::{call_sites, match_delim, Delim, TokenKind, Visibility};
use crate::rules::JUSTIFY_BACK;
use crate::scan::find_word;
use crate::{AnalyzedFile, Diagnostic};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

/// The first-party crate dependency graph: crate directory name (under
/// `crates/`) → transitive closure of the directory names it depends on.
/// Used to reject name-resolved call edges that contradict the manifests —
/// `obs` cannot call into `bench` if `crates/obs/Cargo.toml` does not
/// (transitively) depend on it.
pub type CrateDeps = BTreeMap<String, BTreeSet<String>>;

/// Builds [`CrateDeps`] from `crates/*/Cargo.toml`. Only `path = "…"`
/// dependencies count (everything first-party is a path dep; the build is
/// offline), keyed by the path's final directory component.
/// `[dev-dependencies]` are excluded: test code is not in the call graph.
pub fn crate_deps(root: &Path) -> CrateDeps {
    let mut direct: CrateDeps = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return direct;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let dir = entry.path();
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let mut in_deps = false;
        let mut deps = BTreeSet::new();
        for line in manifest.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                // `[dependencies]`, `[dependencies.dynnet-core]`, and the
                // target-specific forms all start a dependency section;
                // `[dev-dependencies]` does not.
                in_deps = line.contains("dependencies") && !line.contains("dev-dependencies");
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(rest) = line.split("path").nth(1) {
                if let Some(val) = rest.split('"').nth(1) {
                    if let Some(dep) = val.rsplit('/').next() {
                        deps.insert(dep.to_string());
                    }
                }
            }
        }
        direct.insert(name, deps);
    }
    // Transitive closure (the graph is tiny; fixpoint is fine).
    loop {
        let mut grew = false;
        let names: Vec<String> = direct.keys().cloned().collect();
        for name in &names {
            let reachable: BTreeSet<String> = direct[name]
                .iter()
                .filter_map(|d| direct.get(d))
                .flatten()
                .cloned()
                .collect();
            let set = direct.get_mut(name).expect("key from keys()");
            for r in reachable {
                grew |= set.insert(r);
            }
        }
        if !grew {
            return direct;
        }
    }
}

/// Method names too common to resolve by name alone: a `.get(…)` call is
/// far more likely `Vec::get` than a first-party `get`, and `.store(…)` is
/// far more likely an atomic store than a first-party `store` method.
const COMMON_METHODS: [&str; 40] = [
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "next",
    "clear",
    "extend",
    "sort",
    "map",
    "filter",
    "fold",
    "find",
    "count",
    "sum",
    "min",
    "max",
    "write",
    "read",
    "flush",
    "store",
    "load",
    "swap",
    "fetch_add",
    "take",
    "replace",
    "send",
    "recv",
    "join",
    "lock",
];

/// Keywords that may directly precede `[` without the bracket being an
/// index expression (`return [a, b]`).
const NON_INDEX_KEYWORDS: [&str; 8] = [
    "return", "break", "in", "if", "else", "match", "while", "loop",
];

/// One panic site inside a function body.
struct PanicSite {
    line: usize,
    kind: &'static str,
}

/// One node of the call graph.
struct FnNode {
    file: usize,
    name: String,
    self_type: Option<String>,
    decl_line: usize,
    is_public_root: bool,
    sites: Vec<PanicSite>,
    calls: Vec<crate::parse::CallSite>,
}

/// Runs the `panic-reachability` rule over the whole workspace file set.
/// `deps` (from [`crate_deps`]) prunes name-resolved edges that contradict
/// the manifests; an empty map (no manifests found) disables that pruning.
pub fn panic_reachability(
    files: &[AnalyzedFile],
    allow: &Allowlist,
    deps: &CrateDeps,
    out: &mut Vec<Diagnostic>,
) {
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut indexing_per_file: BTreeMap<String, usize> = BTreeMap::new();

    for (fi, af) in files.iter().enumerate() {
        let rel = &af.src.rel;
        if af.src.from_doc_example || !rel.starts_with("crates/") || !rel.contains("/src/") {
            continue;
        }
        let binary_side = rel.ends_with("/main.rs") || rel.contains("/src/bin/");
        for item in &af.fns {
            let in_test = af
                .src
                .is_test
                .get(item.decl_line.saturating_sub(1))
                .copied()
                .unwrap_or(false);
            if in_test {
                continue;
            }
            let (Some(body_lines), Some(body_tokens)) = (item.body_lines, item.body_tokens) else {
                continue;
            };
            let mut sites = lexical_panic_sites(af, body_lines);
            let raw_indexing = indexing_sites(af, body_tokens);
            *indexing_per_file.entry(rel.clone()).or_insert(0) += raw_indexing.len();
            if !allow.panic_indexing.contains(rel) {
                sites.extend(raw_indexing);
            }
            // Drop sites the author has justified at the site itself.
            sites.retain(|s| !af.src.comment_near(s.line, JUSTIFY_BACK, "INVARIANT:"));
            sites.sort_by_key(|s| s.line);
            let is_public_root =
                item.vis == Visibility::Public && !binary_side && !allow.is_panic_exempt(rel);
            nodes.push(FnNode {
                file: fi,
                name: item.name.clone(),
                self_type: item.self_type.clone(),
                decl_line: item.decl_line,
                is_public_root,
                sites,
                calls: call_sites(&af.tokens, body_tokens),
            });
        }
    }

    // Stale burn-down entries: a `panic-indexing` directive for a file with
    // no raw indexing left (or no such file at all) must be deleted.
    for rel in &allow.panic_indexing {
        if indexing_per_file.get(rel).copied().unwrap_or(0) == 0 {
            out.push(Diagnostic {
                rel: rel.clone(),
                line: 1,
                rule: "panic-reachability",
                msg: "stale `panic-indexing` directive: no raw indexing sites remain in this \
                      file — delete the allowlist line"
                    .to_string(),
            });
        }
    }

    let edges = resolve_edges(files, &nodes, deps);

    // Deterministic multi-source BFS: roots in (file, line) order; the
    // first root to reach a node claims it and provides the witness path.
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by(|&a, &b| {
        (&files[nodes[a].file].src.rel, nodes[a].decl_line)
            .cmp(&(&files[nodes[b].file].src.rel, nodes[b].decl_line))
    });
    let mut reached_by: Vec<Option<(usize, Option<usize>)>> = vec![None; nodes.len()]; // (root, pred)
    for &root in order.iter().filter(|&&n| nodes[n].is_public_root) {
        if reached_by[root].is_some() {
            continue;
        }
        reached_by[root] = Some((root, None));
        let mut queue = VecDeque::from([root]);
        while let Some(n) = queue.pop_front() {
            for &m in &edges[n] {
                if reached_by[m].is_none() {
                    reached_by[m] = Some((root, Some(n)));
                    queue.push_back(m);
                }
            }
        }
    }

    for (n, node) in nodes.iter().enumerate() {
        let Some((root, _)) = reached_by[n] else {
            continue;
        };
        if node.sites.is_empty() {
            continue;
        }
        let path = witness_path(&nodes, &reached_by, n);
        let root_node = &nodes[root];
        let root_name = qualified_name(files, root_node);
        for site in &node.sites {
            out.push(Diagnostic {
                rel: files[node.file].src.rel.clone(),
                line: site.line,
                rule: "panic-reachability",
                msg: format!(
                    "{} is reachable from public API `{root_name}` (path: {path}) — prove it \
                     cannot fire with an `// INVARIANT:` comment or return a typed error",
                    site.kind
                ),
            });
        }
    }
}

/// Reconstructs the BFS witness path root → … → n as fn names, capped so
/// messages stay one line.
fn witness_path(
    nodes: &[FnNode],
    reached_by: &[Option<(usize, Option<usize>)>],
    n: usize,
) -> String {
    let mut chain = vec![n];
    let mut cur = n;
    while let Some((_, Some(pred))) = reached_by[cur] {
        chain.push(pred);
        cur = pred;
    }
    chain.reverse();
    let names: Vec<&str> = chain.iter().map(|&i| nodes[i].name.as_str()).collect();
    if names.len() > 6 {
        format!(
            "{} -> ... -> {}",
            names[..2].join(" -> "),
            names[names.len() - 2..].join(" -> ")
        )
    } else {
        names.join(" -> ")
    }
}

/// `crate_name::fn_name` (with the `Type::` segment when known).
fn qualified_name(files: &[AnalyzedFile], node: &FnNode) -> String {
    let rel = &files[node.file].src.rel;
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("?");
    match &node.self_type {
        Some(t) => format!("{crate_name}::{t}::{}", node.name),
        None => format!("{crate_name}::{}", node.name),
    }
}

/// Lexical panic sites (`.unwrap()`, `.expect(`, `panic!`-family macros) on
/// the body's lines.
fn lexical_panic_sites(af: &AnalyzedFile, body: (usize, usize)) -> Vec<PanicSite> {
    let mut sites = Vec::new();
    for lineno in body.0..=body.1.min(af.src.lines.len()) {
        let code = &af.src.lines[lineno - 1].code;
        for (pat, kind) in [(".unwrap()", "`unwrap()`"), (".expect(", "`expect()`")] {
            if code.contains(pat) {
                sites.push(PanicSite { line: lineno, kind });
            }
        }
        for (word, kind) in [
            ("panic", "`panic!`"),
            ("unreachable", "`unreachable!`"),
            ("todo", "`todo!`"),
            ("unimplemented", "`unimplemented!`"),
        ] {
            let bytes = code.as_bytes();
            if find_word(code, word)
                .iter()
                .any(|&off| bytes.get(off + word.len()) == Some(&b'!'))
            {
                sites.push(PanicSite { line: lineno, kind });
            }
        }
    }
    sites
}

/// Raw index expressions in the body's token range: `expr[...]` where the
/// bracket follows an identifier or a closing delimiter — minus the
/// structurally exempt `[….index()]` node-id form.
fn indexing_sites(af: &AnalyzedFile, body: (usize, usize)) -> Vec<PanicSite> {
    let tokens = &af.tokens;
    let mut sites = Vec::new();
    for i in body.0..body.1.min(tokens.len()) {
        if !matches!(tokens[i].kind, TokenKind::Open(Delim::Bracket)) || i == 0 {
            continue;
        }
        let indexes = match &tokens[i - 1].kind {
            TokenKind::Ident(s) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
            TokenKind::Close(Delim::Paren) | TokenKind::Close(Delim::Bracket) => true,
            _ => false,
        };
        if !indexes {
            continue;
        }
        let Some(close) = match_delim(tokens, i) else {
            continue;
        };
        // `[x.index()]` / `[path.to.id.index()]`: the group's last four
        // tokens are `. index ( )`.
        let exempt = close >= i + 5
            && tokens[close - 4].is_punct('.')
            && tokens[close - 3].is_ident("index")
            && matches!(tokens[close - 2].kind, TokenKind::Open(Delim::Paren))
            && matches!(tokens[close - 1].kind, TokenKind::Close(Delim::Paren));
        if !exempt {
            sites.push(PanicSite {
                line: tokens[i].line,
                kind: "raw indexing",
            });
        }
    }
    sites
}

/// Resolves every node's call list to edges (callee node indices),
/// conservatively (see module docs). An edge from crate A into crate B is
/// kept only when A's manifest (transitively) depends on B — name collisions
/// across unrelated crates otherwise manufacture impossible paths.
fn resolve_edges(files: &[AnalyzedFile], nodes: &[FnNode], deps: &CrateDeps) -> Vec<Vec<usize>> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_type_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
        if let Some(t) = &n.self_type {
            by_type_name
                .entry((t.as_str(), n.name.as_str()))
                .or_default()
                .push(i);
        }
    }
    let crate_of = |n: &FnNode| {
        files[n.file]
            .src
            .rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
    };

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        let mut targets: BTreeSet<usize> = BTreeSet::new();
        for call in &node.calls {
            let candidates = by_name.get(call.name.as_str());
            if let Some(q) = &call.qualifier {
                if let Some(ids) = by_type_name.get(&(q.as_str(), call.name.as_str())) {
                    targets.extend(ids.iter().copied());
                    continue;
                }
            }
            let Some(candidates) = candidates else {
                continue;
            };
            if call.method {
                if candidates.len() == 1 && !COMMON_METHODS.contains(&call.name.as_str()) {
                    targets.insert(candidates[0]);
                }
                continue;
            }
            // Plain call: same file beats unique beats same crate.
            let same_file: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| nodes[c].file == node.file)
                .collect();
            if !same_file.is_empty() {
                targets.extend(same_file);
            } else if candidates.len() == 1 {
                targets.insert(candidates[0]);
            } else {
                targets.extend(
                    candidates
                        .iter()
                        .copied()
                        .filter(|&c| crate_of(&nodes[c]) == crate_of(node)),
                );
            }
        }
        targets.remove(&i); // self-recursion adds nothing to reachability
        let caller_crate = crate_of(node);
        edges[i] = targets
            .into_iter()
            .filter(|&t| {
                let callee_crate = crate_of(&nodes[t]);
                callee_crate == caller_crate
                    || deps
                        .get(caller_crate)
                        .is_none_or(|d| d.contains(callee_crate))
            })
            .collect();
    }
    edges
}
