//! Per-file symbol table: which identifiers are bound to hash-ordered
//! containers (`HashMap`/`HashSet`), resolved *semantically* rather than
//! lexically.
//!
//! The lexical `hash-iteration` pass (PR 6) only caught names whose binding
//! line literally mentions `HashMap`/`HashSet`. This module closes the three
//! holes that leaves:
//!
//! * **type aliases** — `type Index = HashMap<u32, u32>;` followed by
//!   `fn f(idx: &Index)` binds `idx` to a hash container; alias chains
//!   (`type A = B; type B = HashMap<…>;`) resolve to a fixpoint,
//! * **annotations through aliases** — `let m: Index = …`, struct fields
//!   `index: Index,`, and fn parameters `idx: &Index` all contribute names,
//! * **intermediate bindings** — `let view = &self.index;` or
//!   `let copy = index.clone();` propagate hash-ness to the new name
//!   (fixpoint over the file).
//!
//! Analysis is per file, over the token stream of [`crate::parse`]. It is an
//! over-approximation by design: a name is *suspected* hash-ordered; the
//! `hash-iteration` rule only fires when such a name is actually iterated,
//! so extra names cost nothing unless they alias a real iteration site.

use crate::parse::{match_delim, Token, TokenKind};
use std::collections::BTreeSet;

/// Hash-container symbol information for one file.
#[derive(Debug, Default, Clone)]
pub struct FileSymbols {
    /// Identifiers bound (directly, through an alias, or through an
    /// intermediate binding) to a hash-ordered container.
    pub hash_names: BTreeSet<String>,
    /// Type alias names that resolve to `HashMap`/`HashSet`.
    pub hash_aliases: BTreeSet<String>,
}

impl FileSymbols {
    /// True when `ty` names a hash container: the std types themselves or
    /// one of this file's resolved aliases.
    pub fn is_hash_type(&self, ty: &str) -> bool {
        ty == "HashMap" || ty == "HashSet" || self.hash_aliases.contains(ty)
    }
}

/// Constructor-ish associated functions: `T::new()` etc. bind a value of
/// type `T`.
const CONSTRUCTORS: [&str; 5] = ["new", "default", "with_capacity", "from_iter", "from"];

/// Analyzes one file's token stream into its [`FileSymbols`].
pub fn analyze(tokens: &[Token]) -> FileSymbols {
    let mut syms = FileSymbols {
        hash_names: BTreeSet::new(),
        hash_aliases: resolve_aliases(tokens),
    };
    // Fixpoint: every pass may bind new names (propagation through `let`),
    // which can make earlier `let y = x;` lines match. File-local alias
    // chains are short; the cap only guards against pathological input.
    for _ in 0..8 {
        let before = syms.hash_names.len();
        collect_annotations(tokens, &mut syms);
        collect_let_bindings(tokens, &mut syms);
        if syms.hash_names.len() == before {
            break;
        }
    }
    syms
}

/// Collects `type Name = …;` items and resolves which alias names reach
/// `HashMap`/`HashSet`, following alias-to-alias chains to a fixpoint.
fn resolve_aliases(tokens: &[Token]) -> BTreeSet<String> {
    let mut aliases: Vec<(String, String)> = Vec::new(); // (name, rhs root)
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("type") {
            continue;
        }
        let (Some(name), Some(eq)) = (tokens.get(i + 1).and_then(Token::ident), tokens.get(i + 2))
        else {
            continue;
        };
        // Only plain `type Name = …;` — generic aliases (`type N<T> = …`)
        // don't occur for hash containers here and are skipped.
        if !eq.is_punct('=') {
            continue;
        }
        let (_, root) = read_type(tokens, i + 3);
        if let Some(root) = root {
            aliases.push((name.to_string(), root));
        }
    }
    let mut hash: BTreeSet<String> = BTreeSet::new();
    loop {
        let before = hash.len();
        for (name, root) in &aliases {
            if root == "HashMap" || root == "HashSet" || hash.contains(root) {
                hash.insert(name.clone());
            }
        }
        if hash.len() == before {
            return hash;
        }
    }
}

/// Collects every `name: Type` annotation (let annotations, struct fields,
/// fn parameters — all share the shape) whose type root is a hash container.
fn collect_annotations(tokens: &[Token], syms: &mut FileSymbols) {
    for i in 0..tokens.len() {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        // `name :` but not `name ::` and not `:: name :`.
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            || (i > 0 && tokens[i - 1].is_punct(':'))
        {
            continue;
        }
        let (_, root) = read_type(tokens, i + 2);
        if root.is_some_and(|r| syms.is_hash_type(&r)) {
            syms.hash_names.insert(name.to_string());
        }
    }
}

/// Collects `let` bindings whose initializer visibly produces a hash
/// container: `let m = Index::new()` (alias constructor) and the
/// propagation forms `let y = x;` / `= &x;` / `= &mut x;` / `= x.clone();`
/// for an already-known hash name `x`.
fn collect_let_bindings(tokens: &[Token], syms: &mut FileSymbols) {
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = tokens.get(j).and_then(Token::ident) else {
            continue;
        };
        // Skip a `: Type` annotation (handled by collect_annotations) to
        // reach the `=`.
        let mut k = j + 1;
        if tokens.get(k).is_some_and(|t| t.is_punct(':')) {
            let (end, _) = read_type(tokens, k + 1);
            k = end;
        }
        if !tokens.get(k).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        if rhs_is_hash(tokens, k + 1, syms) {
            syms.hash_names.insert(name.to_string());
        }
    }
}

/// Decides whether the initializer starting at `start` visibly produces a
/// hash container.
fn rhs_is_hash(tokens: &[Token], start: usize, syms: &FileSymbols) -> bool {
    // Optional leading `&` / `&mut`.
    let mut i = start;
    if tokens.get(i).is_some_and(|t| t.is_punct('&')) {
        i += 1;
        if tokens.get(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
    }
    // Path chain: ident (:: ident)* — record the segments.
    let mut segs: Vec<&str> = Vec::new();
    while let Some(id) = tokens.get(i).and_then(Token::ident) {
        segs.push(id);
        if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            i += 3;
        } else {
            i += 1;
            break;
        }
    }
    let [.., owner, last] = segs.as_slice() else {
        // Single segment: `let y = x;` / `= &x;` / `= x.clone();`.
        let Some(&name) = segs.first() else {
            return false;
        };
        if !syms.hash_names.contains(name) {
            return false;
        }
        return match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct(';')) | None => true,
            Some(TokenKind::Punct('.')) => {
                tokens.get(i + 1).is_some_and(|t| t.is_ident("clone"))
                    && terminated_after_call(tokens, i + 2)
            }
            _ => false,
        };
    };
    // `Owner::ctor(...)` — a constructor on a hash type or hash alias.
    syms.is_hash_type(owner)
        && CONSTRUCTORS.contains(last)
        && tokens
            .get(i)
            .is_some_and(|t| matches!(t.kind, TokenKind::Open(crate::parse::Delim::Paren)))
}

/// True when the paren group at `open` closes directly into `;` (or the end
/// of the stream) — i.e. the call is the whole initializer.
fn terminated_after_call(tokens: &[Token], open: usize) -> bool {
    if !tokens
        .get(open)
        .is_some_and(|t| matches!(t.kind, TokenKind::Open(crate::parse::Delim::Paren)))
    {
        return false;
    }
    match match_delim(tokens, open) {
        Some(close) => matches!(
            tokens.get(close + 1).map(|t| &t.kind),
            Some(TokenKind::Punct(';')) | None
        ),
        None => false,
    }
}

/// Reads a type expression starting at `start`; returns the index of the
/// terminating token (`,` `;` `=` at angle-depth 0, a closing delimiter of
/// the enclosing group, or end of stream) and the root type name — the last
/// segment of the leading path, e.g. `HashMap` for
/// `&mut std::collections::HashMap<K, V>`, `Vec` for `Vec<HashMap<K, V>>`.
pub fn read_type(tokens: &[Token], start: usize) -> (usize, Option<String>) {
    let mut i = start;
    let mut angle = 0i32;
    let mut root: Option<String> = None;
    let mut chain_last: Option<String> = None;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('<') => {
                if root.is_none() {
                    root = chain_last.take();
                }
                angle += 1;
            }
            TokenKind::Punct('>') => {
                if angle == 0 {
                    break; // stray `>`: end of an enclosing generic list
                }
                angle -= 1;
            }
            TokenKind::Punct(',') | TokenKind::Punct(';') | TokenKind::Punct('=') if angle == 0 => {
                break;
            }
            TokenKind::Close(_) => break,
            TokenKind::Open(_) => {
                // Tuple/array/fn-pointer groups inside the type: skip whole.
                i = match_delim(tokens, i).unwrap_or(tokens.len());
            }
            TokenKind::Ident(s)
                if angle == 0 && !matches!(s.as_str(), "mut" | "dyn" | "impl" | "const") =>
            {
                chain_last = Some(s.clone());
            }
            _ => {}
        }
        i += 1;
    }
    (i, root.or(chain_last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::tokenize;
    use crate::scan::SourceFile;

    fn syms(src: &str) -> FileSymbols {
        analyze(&tokenize(
            &SourceFile::scan("crates/x/src/lib.rs", src).lines,
        ))
    }

    #[test]
    fn alias_chain_resolves() {
        let s = syms("type Inner = std::collections::HashMap<u32, u32>;\ntype Outer = Inner;");
        assert!(s.hash_aliases.contains("Inner"));
        assert!(s.hash_aliases.contains("Outer"));
        assert!(s.is_hash_type("Outer"));
    }

    #[test]
    fn annotations_through_aliases() {
        let src = "\
type Index = HashMap<u32, u32>;
struct S { index: Index, plain: Vec<u32> }
fn f(idx: &Index, v: &[u32]) {
    let local: Index = Index::new();
    let _ = (idx, v, local);
}
";
        let s = syms(src);
        assert!(s.hash_names.contains("index"));
        assert!(s.hash_names.contains("idx"));
        assert!(s.hash_names.contains("local"));
        assert!(!s.hash_names.contains("plain"));
        assert!(!s.hash_names.contains("v"));
    }

    #[test]
    fn constructor_and_propagation() {
        let src = "\
type Index = HashSet<u64>;
fn f() {
    let made = Index::with_capacity(8);
    let view = &made;
    let copied = made.clone();
    let unrelated = made.len();
}
";
        let s = syms(src);
        assert!(s.hash_names.contains("made"));
        assert!(s.hash_names.contains("view"), "{s:?}");
        assert!(s.hash_names.contains("copied"));
        assert!(!s.hash_names.contains("unrelated"));
    }

    #[test]
    fn vec_of_hash_is_not_hash_rooted() {
        let s = syms("fn f(v: Vec<HashMap<u32, u32>>) { let _ = v; }");
        assert!(!s.hash_names.contains("v"));
    }

    #[test]
    fn read_type_roots() {
        let t = tokenize(
            &SourceFile::scan(
                "crates/x/src/lib.rs",
                "&mut std::collections::HashMap<K, V>,",
            )
            .lines,
        );
        let (_, root) = read_type(&t, 0);
        assert_eq!(root.as_deref(), Some("HashMap"));
    }
}
