//! The dynnet lint rules. Each per-file rule is a pure function from an
//! analyzed [`AnalyzedFile`] (plus the [`Allowlist`]) to diagnostics; the
//! runner in [`crate`] applies all of them to every workspace source file
//! and then runs the whole-workspace [`crate::callgraph::panic_reachability`]
//! pass.
//!
//! | rule id              | invariant                                                         |
//! |----------------------|-------------------------------------------------------------------|
//! | `safety-comment`     | every `unsafe` site carries a `// SAFETY:` comment                |
//! | `unsafe-confined`    | `unsafe` only in `vendor/`; first-party crates forbid it          |
//! | `thread-spawn`       | thread creation only at allowlisted sites (pool, sweep engine)    |
//! | `hash-iteration`     | no `HashMap`/`HashSet` iteration without `// DETERMINISM:` — now  |
//! |                      | resolved through type aliases and intermediate bindings           |
//! | `wall-clock`         | no `Instant::now`/`SystemTime` without `// TIMING:`               |
//! | `rng-confined`       | RNG construction/draws only at blessed allowlisted sites          |
//! | `hot-path-alloc`     | no allocation inside `// HOT:`-marked round-kernel regions        |
//! | `ordering-justified` | every non-`SeqCst` atomic ordering carries `// ORDERING:`         |
//! | `panic-reachability` | no panic site reachable from a public API without `// INVARIANT:` |
//!
//! Doc examples (```` ```rust ```` blocks) are extracted by
//! [`crate::scan::SourceFile::doc_examples`] and linted with the subset of
//! rules that make sense for example code (`thread-spawn`,
//! `hash-iteration`, `wall-clock`, `rng-confined`, `ordering-justified`).

use crate::allow::Allowlist;
use crate::parse::region_after;
use crate::scan::{find_word, is_ident_byte, SourceFile};
use crate::{AnalyzedFile, Diagnostic};
use std::collections::BTreeSet;

/// How many comment lines above a flagged line a justification comment
/// (`SAFETY:`/`DETERMINISM:`/`TIMING:`/`ORDERING:`/`ALLOC:`/`INVARIANT:`)
/// may sit.
pub(crate) const JUSTIFY_BACK: usize = 3;

fn diag(file: &SourceFile, line: usize, rule: &'static str, msg: String) -> Diagnostic {
    Diagnostic {
        rule,
        rel: file.rel.clone(),
        line,
        msg,
    }
}

/// True for files that belong to the first-party tree (everything that is
/// not `vendor/`).
fn is_first_party(rel: &str) -> bool {
    rel.starts_with("crates/") || rel.starts_with("tests/") || rel.starts_with("examples/")
}

/// Rule `safety-comment`: every line containing an `unsafe` token must have
/// a comment containing `SAFETY:` on the same line, or on the contiguous
/// run of comment/attribute/empty lines directly above it (a trailing
/// comment on the first code line above also counts).
pub fn safety_comment(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if find_word(&line.code, "unsafe").is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let mut justified = line.comment.contains("SAFETY:");
        if !justified {
            for j in (0..idx).rev() {
                let above = &file.lines[j];
                if above.comment.contains("SAFETY:") {
                    justified = true;
                    break;
                }
                let code = above.code.trim();
                if !(code.is_empty() || code.starts_with("#[")) {
                    break; // hit real code without a SAFETY comment
                }
            }
        }
        if !justified {
            out.push(diag(
                file,
                lineno,
                "safety-comment",
                "`unsafe` site without a `// SAFETY:` comment stating the invariant it relies on"
                    .to_string(),
            ));
        }
    }
}

/// Rule `unsafe-confined`: (a) no `unsafe` token outside `vendor/`; (b)
/// every first-party crate root (`crates/<name>/src/lib.rs`) carries
/// `#![forbid(unsafe_code)]` (or `deny` with an allowlisted exception).
pub fn unsafe_confined(file: &SourceFile, allow: &Allowlist, out: &mut Vec<Diagnostic>) {
    if !is_first_party(&file.rel) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if !find_word(&line.code, "unsafe").is_empty() {
            out.push(diag(
                file,
                idx + 1,
                "unsafe-confined",
                "`unsafe` code outside vendor/ — unsafe is confined to the vendored \
                 concurrency shims"
                    .to_string(),
            ));
        }
    }
    let Some(crate_dir) = crate_root_dir(&file.rel) else {
        return;
    };
    let has = |attr: &str| file.lines.iter().any(|l| l.code.contains(attr));
    if has("#![forbid(unsafe_code)]") {
        return;
    }
    if has("#![deny(unsafe_code)]") && allow.unsafe_deny_exception.contains(crate_dir) {
        return;
    }
    out.push(diag(
        file,
        1,
        "unsafe-confined",
        format!(
            "crate root {} lacks `#![forbid(unsafe_code)]` (or an allowlisted deny exception)",
            file.rel
        ),
    ));
}

/// For `crates/<name>/src/lib.rs`, returns `crates/<name>`.
fn crate_root_dir(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    let name_len = rest.find('/')?;
    if &rest[name_len..] == "/src/lib.rs" {
        Some(&rel[.."crates/".len() + name_len])
    } else {
        None
    }
}

/// Rule `thread-spawn`: `thread::spawn` / `thread::scope` /
/// `thread::Builder` may only appear in allowlisted files. The persistent
/// worker pool (`vendor/rayon`) and the sweep engine are the two blessed
/// sites in this workspace; everything else must go through them so the
/// sweep-aware thread budget stays the only source of parallelism.
pub fn thread_spawn(file: &SourceFile, allow: &Allowlist, out: &mut Vec<Diagnostic>) {
    if allow.thread_spawn.contains(&file.rel) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
            if line.code.contains(pat) {
                out.push(diag(
                    file,
                    idx + 1,
                    "thread-spawn",
                    format!(
                        "`{pat}` outside the blessed sites (worker pool, sweep engine) — \
                         route parallelism through the shared thread budget"
                    ),
                ));
                break;
            }
        }
    }
}

/// Iteration methods whose order reflects the hash function.
const HASH_ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".into_keys()",
    ".into_values()",
];

/// Rule `hash-iteration`: iterating a `HashMap`/`HashSet` yields a
/// hash-ordered sequence; if that order can reach an output path (rows,
/// changed-output lists, CSV) the byte-identity guarantees break. Flagged
/// unless a `// DETERMINISM:` comment justifies the site (order provably
/// does not leak, e.g. the results are sorted or folded commutatively) or
/// the file is allowlisted. Membership tests and lookups are not flagged.
///
/// Names are gathered both lexically (binding lines that literally mention
/// the container) and semantically via [`crate::symbols`], so iteration
/// through a type alias (`type Index = HashMap<…>; fn f(idx: &Index)`) or
/// an intermediate binding (`let view = &self.index;`) fires too.
pub fn hash_iteration(af: &AnalyzedFile, allow: &Allowlist, out: &mut Vec<Diagnostic>) {
    let file = &af.src;
    if !file.rel.starts_with("crates/") || allow.hash_iteration.contains(&file.rel) {
        return;
    }
    // Pass 1: names bound to hash containers — the lexical pass plus the
    // symbol table's alias-resolved and propagated names.
    let mut names: BTreeSet<String> = af.symbols.hash_names.clone();
    for line in &file.lines {
        let code = &line.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        if let Some(name) = hash_bound_name(code) {
            names.insert(name);
        }
    }
    if names.is_empty() {
        return;
    }
    // Pass 2: iteration over one of those names.
    let mut flagged_lines: BTreeSet<usize> = BTreeSet::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if file.is_test[idx] {
            continue;
        }
        let code = &line.code;
        let hit = names
            .iter()
            .any(|n| iterates_by_method(code, n) || for_loop_over(code, n));
        if hit {
            flagged_lines.insert(idx + 1);
        }
    }
    for lineno in flagged_lines {
        if file.comment_near(lineno, JUSTIFY_BACK, "DETERMINISM:") {
            continue;
        }
        out.push(diag(
            file,
            lineno,
            "hash-iteration",
            "iteration over a hash-ordered container — hash order must not reach an \
             output path; sort the results (or use BTreeMap/BTreeSet) or justify with \
             a `// DETERMINISM:` comment"
                .to_string(),
        ));
    }
}

/// Extracts the identifier most plausibly bound to the hash container
/// mentioned on this line: `let [mut] name(: T)? =`, a struct field or fn
/// parameter `name: HashMap<..>`, or `name = HashMap::new()`.
fn hash_bound_name(code: &str) -> Option<String> {
    let hash_pos = code.find("HashMap").or_else(|| code.find("HashSet"))?;
    // `let [mut] name` anywhere before the container mention.
    if let Some(let_pos) = code.find("let ") {
        if let_pos < hash_pos {
            let after = code[let_pos + 4..].trim_start();
            let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
            let name: String = after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    // `name: HashMap<..>` (field or parameter): identifier directly before
    // the last `:` that precedes the container mention.
    let colon = code[..hash_pos].rfind(':')?;
    let before = code[..colon].trim_end();
    let name: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit())).then_some(name)
}

/// True if `code` calls a hash-order iteration method on `name` (or
/// `self.name`).
fn iterates_by_method(code: &str, name: &str) -> bool {
    for owner in [name.to_string(), format!("self.{name}")] {
        for m in HASH_ITER_METHODS {
            let pat = format!("{owner}{m}");
            let mut from = 0usize;
            while let Some(off) = code[from..].find(&pat) {
                let start = from + off;
                let pre_ok = start == 0 || !is_ident_byte(code.as_bytes()[start - 1]);
                if pre_ok && (start == 0 || code.as_bytes()[start - 1] != b'.') {
                    return true;
                }
                from = start + 1;
            }
        }
    }
    false
}

/// True if `code` contains a `for .. in <name>`-style loop whose iterated
/// expression starts with `name` or `self.name` (after `&`/`mut`).
fn for_loop_over(code: &str, name: &str) -> bool {
    let Some(for_pos) = find_word(code, "for").first().copied() else {
        return false;
    };
    let after_for = &code[for_pos..];
    let Some(in_rel) = find_word(after_for, "in").first().copied() else {
        return false;
    };
    let mut expr = after_for[in_rel + 2..].trim_start();
    loop {
        if let Some(rest) = expr.strip_prefix('&') {
            expr = rest.trim_start();
        } else if let Some(rest) = expr.strip_prefix("mut ") {
            expr = rest.trim_start();
        } else {
            break;
        }
    }
    let expr = expr.strip_prefix("self.").unwrap_or(expr);
    let ident: String = expr
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident != name {
        return false;
    }
    // `for x in m` or `for x in m.iter()` etc. — but not `for x in m_vec`.
    let rest = &expr[ident.len()..];
    rest.is_empty() || rest.starts_with(|c: char| !(c.is_alphanumeric() || c == '_'))
}

/// Rule `wall-clock`: `Instant::now` / `SystemTime` reads outside vendored
/// code must sit in a timing-labelled site (`// TIMING:` comment) or an
/// allowlisted file — wall-clock reads anywhere else risk feeding
/// nondeterminism into simulation results.
pub fn wall_clock(file: &SourceFile, allow: &Allowlist, out: &mut Vec<Diagnostic>) {
    if !file.rel.starts_with("crates/") || allow.wall_clock.contains(&file.rel) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if file.is_test[idx] {
            continue;
        }
        let hit =
            line.code.contains("Instant::now") || !find_word(&line.code, "SystemTime").is_empty();
        if !hit {
            continue;
        }
        let lineno = idx + 1;
        if file.comment_near(lineno, JUSTIFY_BACK, "TIMING:") {
            continue;
        }
        out.push(diag(
            file,
            lineno,
            "wall-clock",
            "wall-clock read outside a timing-labelled site — label with `// TIMING:` \
             (measured durations must never feed simulation outputs)"
                .to_string(),
        ));
    }
}

/// RNG construction entry points: creating a generator anywhere but the
/// blessed hierarchy roots breaks the seed-derivation story.
const RNG_CONSTRUCT: [&str; 5] = [
    "seed_from_u64",
    "from_seed",
    "from_entropy",
    "thread_rng",
    "from_rng",
];

/// RNG draw calls (method position).
const RNG_DRAW: [&str; 5] = [
    ".gen()",
    ".gen::<",
    ".gen_range(",
    ".gen_bool(",
    ".gen_ratio(",
];

/// Rule `rng-confined`: randomness may only be constructed or drawn at
/// blessed sites (`rng-confined <path>` in the allowlist) — the
/// deterministic hierarchy roots in `runtime::rng`, the adversaries, and
/// the algorithm step functions. A stray `seed_from_u64` or `.gen_range(`
/// anywhere else is exactly the nondeterminism the per-(seed, node, round)
/// derivation exists to prevent, and it evades the determinism pins because
/// those only re-run blessed configurations.
pub fn rng_confined(file: &SourceFile, allow: &Allowlist, out: &mut Vec<Diagnostic>) {
    if !file.rel.starts_with("crates/") || allow.rng_confined.contains(&file.rel) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if file.is_test[idx] {
            continue;
        }
        let code = &line.code;
        let construct = RNG_CONSTRUCT
            .iter()
            .find(|w| !find_word(code, w).is_empty());
        let draw = RNG_DRAW.iter().find(|p| code.contains(**p));
        let Some(what) = construct.or(draw) else {
            continue;
        };
        out.push(diag(
            file,
            idx + 1,
            "rng-confined",
            format!(
                "`{what}` outside a blessed RNG site — randomness must flow from the \
                 deterministic per-(seed, node, round) hierarchy; add \
                 `rng-confined {}` only for generator/adversary/algorithm modules",
                file.rel
            ),
        ));
    }
}

/// Allocation patterns banned inside `// HOT:` regions.
const ALLOC_PATTERNS: [&str; 13] = [
    "Vec::new(",
    "vec![",
    "Box::new(",
    "String::new(",
    "format!(",
    ".to_string()",
    ".to_vec()",
    ".to_owned()",
    ".clone()",
    "with_capacity(",
    "HashMap::new(",
    "BTreeMap::new(",
    ".collect(",
];

/// Rule `hot-path-alloc`: a `// HOT:` marker comment turns the next brace
/// region (loop body, fn body) into an allocation-free zone: the PR 7 round
/// kernel's per-round throughput rests on zero per-node allocation, and a
/// stray `format!` or `.clone()` in the node loop silently costs more than
/// any other regression. Individual sites may be excused with an
/// `// ALLOC:` comment (e.g. an `Arc` refcount clone that does not hit the
/// allocator).
pub fn hot_path_alloc(af: &AnalyzedFile, out: &mut Vec<Diagnostic>) {
    let file = &af.src;
    if !file.rel.starts_with("crates/") {
        return;
    }
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        // The marker must *start* the comment — prose that merely mentions
        // `// HOT:` (like these docs) must not open a region.
        if line.comment.trim_start().starts_with("HOT:") {
            if let Some(region) = region_after(&af.tokens, idx + 1) {
                regions.push(region);
            }
        }
    }
    if regions.is_empty() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test[idx] || !regions.iter().any(|&(lo, hi)| lo <= lineno && lineno <= hi) {
            continue;
        }
        let Some(pat) = ALLOC_PATTERNS.iter().find(|p| line.code.contains(**p)) else {
            continue;
        };
        if file.comment_near(lineno, JUSTIFY_BACK, "ALLOC:") {
            continue;
        }
        out.push(diag(
            file,
            lineno,
            "hot-path-alloc",
            format!(
                "`{pat}` inside a `// HOT:` region — the round kernel must not allocate \
                 per node/round; hoist the buffer out of the loop or excuse the site \
                 with `// ALLOC:`"
            ),
        ));
    }
}

/// Non-`SeqCst` atomic orderings that demand justification.
const WEAK_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Rule `ordering-justified`: every non-`SeqCst` atomic memory ordering
/// must carry an `// ORDERING:` comment stating the happens-before edge it
/// relies on (or why no edge is needed, e.g. a monotonic counter read only
/// after a join). Applies to vendor code too — the vendored pool is exactly
/// where the subtle orderings live.
pub fn ordering_justified(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if file.is_test[idx] {
            continue;
        }
        let code = &line.code;
        let hit = WEAK_ORDERINGS.iter().find(|v| {
            let pat = format!("Ordering::{v}");
            let mut from = 0usize;
            while let Some(off) = code[from..].find(&pat) {
                let end = from + off + pat.len();
                if code.as_bytes().get(end).is_none_or(|&b| !is_ident_byte(b)) {
                    return true;
                }
                from = end;
            }
            false
        });
        let Some(variant) = hit else {
            continue;
        };
        let lineno = idx + 1;
        if file.comment_near(lineno, JUSTIFY_BACK, "ORDERING:") {
            continue;
        }
        out.push(diag(
            file,
            lineno,
            "ordering-justified",
            format!(
                "`Ordering::{variant}` without an `// ORDERING:` justification — state \
                 the happens-before edge this ordering relies on (SeqCst needs none)"
            ),
        ));
    }
}

/// Applies every per-file rule to one analyzed file. Doc-example files get
/// the subset of rules meaningful for example code; the whole-workspace
/// `panic-reachability` pass runs separately in [`crate::run_lint`].
pub fn apply_all(af: &AnalyzedFile, allow: &Allowlist, out: &mut Vec<Diagnostic>) {
    let file = &af.src;
    if file.from_doc_example {
        thread_spawn(file, allow, out);
        hash_iteration(af, allow, out);
        wall_clock(file, allow, out);
        rng_confined(file, allow, out);
        ordering_justified(file, out);
        return;
    }
    safety_comment(file, out);
    unsafe_confined(file, allow, out);
    thread_spawn(file, allow, out);
    hash_iteration(af, allow, out);
    wall_clock(file, allow, out);
    rng_confined(file, allow, out);
    hot_path_alloc(af, out);
    ordering_justified(file, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> SourceFile {
        SourceFile::scan(rel, src)
    }

    fn run(rel: &str, src: &str, allow: &Allowlist) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        apply_all(&AnalyzedFile::analyze(scan(rel, src)), allow, &mut out);
        out
    }

    #[test]
    fn safety_comment_walks_up_through_attributes() {
        let src = "// SAFETY: disjoint indices.\n#[inline]\nunsafe fn f() {}\n";
        let mut out = Vec::new();
        safety_comment(&scan("vendor/x/src/lib.rs", src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn safety_comment_required() {
        let src = "fn g() {}\nunsafe fn f() {}\n";
        let mut out = Vec::new();
        safety_comment(&scan("vendor/x/src/lib.rs", src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn crate_root_dir_matches_lib_only() {
        assert_eq!(
            crate_root_dir("crates/graph/src/lib.rs"),
            Some("crates/graph")
        );
        assert_eq!(crate_root_dir("crates/graph/src/window.rs"), None);
        assert_eq!(crate_root_dir("vendor/rayon/src/lib.rs"), None);
    }

    #[test]
    fn hash_bound_names() {
        assert_eq!(
            hash_bound_name("    let mut seen: HashMap<u32, u32> = HashMap::new();"),
            Some("seen".to_string())
        );
        assert_eq!(
            hash_bound_name("    edge_state: HashMap<Edge, EdgeEntry>,"),
            Some("edge_state".to_string())
        );
        assert_eq!(
            hash_bound_name("pub fn leaky(m: &HashMap<u32, u32>) -> Vec<u32> {"),
            Some("m".to_string())
        );
    }

    #[test]
    fn hash_iteration_flags_and_justifies() {
        let bad = "use std::collections::HashMap;\nfn f(m: &HashMap<u32,u32>) {\n    for (k, _) in m.iter() { drop(k); }\n}\n";
        let out = run("crates/x/src/a.rs", bad, &Allowlist::default());
        assert!(
            out.iter()
                .any(|d| d.rule == "hash-iteration" && d.line == 3),
            "{out:?}"
        );

        let good = "use std::collections::HashMap;\nfn f(m: &HashMap<u32,u32>) {\n    // DETERMINISM: results sorted below.\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort_unstable();\n}\n";
        let out = run("crates/x/src/a.rs", good, &Allowlist::default());
        assert!(!out.iter().any(|d| d.rule == "hash-iteration"), "{out:?}");
    }

    #[test]
    fn hash_iteration_through_alias_and_binding() {
        let src = "\
type Index = std::collections::HashMap<u32, u32>;
fn f(idx: &Index) {
    for (k, _) in idx.iter() {
        drop(k);
    }
}
fn g(idx: &Index) {
    let view = idx;
    for k in view.keys() {
        drop(k);
    }
}
";
        let out = run("crates/x/src/a.rs", src, &Allowlist::default());
        assert!(
            out.iter()
                .any(|d| d.rule == "hash-iteration" && d.line == 3),
            "alias'd param iteration: {out:?}"
        );
        assert!(
            out.iter()
                .any(|d| d.rule == "hash-iteration" && d.line == 9),
            "propagated binding iteration: {out:?}"
        );
    }

    #[test]
    fn membership_is_not_iteration() {
        let src = "use std::collections::HashSet;\nfn f(s: &HashSet<u32>) -> bool {\n    s.contains(&3)\n}\n";
        let out = run("crates/x/src/a.rs", src, &Allowlist::default());
        assert!(!out.iter().any(|d| d.rule == "hash-iteration"), "{out:?}");
    }

    #[test]
    fn for_loop_token_boundaries() {
        assert!(for_loop_over("for x in &mut seen {", "seen"));
        assert!(for_loop_over("for (k, v) in self.seen.iter() {", "seen"));
        assert!(!for_loop_over("for x in seen_vec {", "seen"));
        assert!(!for_loop_over("for x in 0..n {", "seen"));
    }

    #[test]
    fn wall_clock_needs_timing_label() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        let out = run("crates/x/src/a.rs", src, &Allowlist::default());
        assert!(out.iter().any(|d| d.rule == "wall-clock"), "{out:?}");
        let src =
            "// TIMING: progress reporting only.\nfn t() { let _ = std::time::Instant::now(); }\n";
        let out = run("crates/x/src/a.rs", src, &Allowlist::default());
        assert!(!out.iter().any(|d| d.rule == "wall-clock"), "{out:?}");
    }

    #[test]
    fn rng_confined_flags_construction_and_draws() {
        let src = "fn f() {\n    let mut rng = ChaCha8Rng::seed_from_u64(7);\n    let x: u32 = rng.gen_range(0..9);\n    let _ = x;\n}\n";
        let out = run("crates/x/src/a.rs", src, &Allowlist::default());
        assert!(
            out.iter().any(|d| d.rule == "rng-confined" && d.line == 2),
            "{out:?}"
        );
        assert!(
            out.iter().any(|d| d.rule == "rng-confined" && d.line == 3),
            "{out:?}"
        );
        let mut allow = Allowlist::default();
        allow.rng_confined.insert("crates/x/src/a.rs".into());
        let out = run("crates/x/src/a.rs", src, &allow);
        assert!(!out.iter().any(|d| d.rule == "rng-confined"), "{out:?}");
    }

    #[test]
    fn rng_confined_ignores_tests_and_vendor() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let _ = rng.gen_range(0..9); }\n}\n";
        let out = run("crates/x/src/a.rs", src, &Allowlist::default());
        assert!(!out.iter().any(|d| d.rule == "rng-confined"), "{out:?}");
        let out = run(
            "vendor/rand/src/lib.rs",
            "fn f() { let _ = x.gen_range(0..9); }\n",
            &Allowlist::default(),
        );
        assert!(!out.iter().any(|d| d.rule == "rng-confined"), "{out:?}");
    }

    #[test]
    fn hot_path_alloc_region_and_escape() {
        let src = "\
fn step(n: usize) {
    // HOT: per-node round loop.
    for i in 0..n {
        let label = format!(\"node {i}\");
        drop(label);
    }
    let after = format!(\"done\");
    drop(after);
}
";
        let out = run("crates/x/src/a.rs", src, &Allowlist::default());
        assert!(
            out.iter()
                .any(|d| d.rule == "hot-path-alloc" && d.line == 4),
            "{out:?}"
        );
        assert!(
            !out.iter()
                .any(|d| d.rule == "hot-path-alloc" && d.line == 7),
            "outside the region: {out:?}"
        );
        let excused = "\
fn step(n: usize) {
    // HOT: per-node round loop.
    for _i in 0..n {
        // ALLOC: Arc refcount bump, no allocator hit.
        let h = handle.clone();
        drop(h);
    }
}
";
        let out = run("crates/x/src/a.rs", excused, &Allowlist::default());
        assert!(!out.iter().any(|d| d.rule == "hot-path-alloc"), "{out:?}");
    }

    #[test]
    fn ordering_needs_justification() {
        let src = "fn f(c: &AtomicUsize) -> usize { c.load(Ordering::Relaxed) }\n";
        let out = run("crates/x/src/a.rs", src, &Allowlist::default());
        assert!(
            out.iter().any(|d| d.rule == "ordering-justified"),
            "{out:?}"
        );
        // Vendor code is covered too.
        let out = run("vendor/x/src/lib.rs", src, &Allowlist::default());
        assert!(
            out.iter().any(|d| d.rule == "ordering-justified"),
            "{out:?}"
        );
        let good = "// ORDERING: counter only read after the pool joins.\nfn f(c: &AtomicUsize) -> usize { c.load(Ordering::Relaxed) }\n";
        let out = run("crates/x/src/a.rs", good, &Allowlist::default());
        assert!(
            !out.iter().any(|d| d.rule == "ordering-justified"),
            "{out:?}"
        );
        let seqcst = "fn f(c: &AtomicUsize) -> usize { c.load(Ordering::SeqCst) }\n";
        let out = run("crates/x/src/a.rs", seqcst, &Allowlist::default());
        assert!(
            !out.iter().any(|d| d.rule == "ordering-justified"),
            "{out:?}"
        );
    }

    #[test]
    fn doc_examples_get_the_subset() {
        let src = "\
//! ```
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! ```
fn live() {}
";
        let af = AnalyzedFile::analyze(scan("crates/x/src/a.rs", src));
        let doc = af.src.doc_examples().expect("example");
        let mut out = Vec::new();
        apply_all(&AnalyzedFile::analyze(doc), &Allowlist::default(), &mut out);
        assert!(
            out.iter().any(|d| d.rule == "rng-confined" && d.line == 2),
            "{out:?}"
        );
    }

    #[test]
    fn vendor_exempt_from_confinement_and_clocks() {
        let src = "// SAFETY: covered.\nunsafe fn f() { let _ = std::time::Instant::now(); }\n";
        let out = run("vendor/x/src/lib.rs", src, &Allowlist::default());
        assert!(out.is_empty(), "{out:?}");
    }
}
