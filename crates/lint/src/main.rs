//! `dynnet-lint` CLI: runs the workspace lint and exits non-zero on any
//! violation. See the library docs (`dynnet_lint`) for the rule set.

#![forbid(unsafe_code)]

use dynnet_lint::{allow::Allowlist, default_allowlist_path, find_workspace_root, run_lint};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dynnet-lint: project-specific static analysis for the dynnet workspace

USAGE:
    dynnet-lint [--root <dir>] [--allowlist <file>] [--format <text|json>]

OPTIONS:
    --root <dir>        Workspace root to scan (default: walk up from the
                        current directory to the first [workspace] manifest)
    --allowlist <file>  Allowlist file (default: <root>/crates/lint/dynnet-lint.allow;
                        an absent default file means an empty allowlist)
    --format <fmt>      Output format: `text` (default; one `file:line: [rule]
                        message` line per finding, matching the checked-in
                        GitHub problem matcher) or `json` (a single JSON
                        object with `files_scanned` and `diagnostics`)
    -h, --help          Show this help

EXIT CODE: 0 clean, 1 violations found, 2 usage or I/O error.
";

/// Output formats of the CLI.
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dynnet-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or("--root requires a value")?));
            }
            "--allowlist" => {
                allowlist = Some(PathBuf::from(
                    args.next().ok_or("--allowlist requires a value")?,
                ));
            }
            "--format" => {
                format = match args.next().ok_or("--format requires a value")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (text|json)")),
                };
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml found above the current directory")?
        }
    };

    let allow = match allowlist {
        Some(path) => Allowlist::load(&path)?,
        None => {
            let default = default_allowlist_path(&root);
            if default.is_file() {
                Allowlist::load(&default)?
            } else {
                Allowlist::default()
            }
        }
    };

    let report = run_lint(&root, &allow)?;
    match format {
        Format::Json => {
            println!("{}", report.to_json());
        }
        Format::Text => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if report.is_clean() {
                println!(
                    "dynnet-lint: clean ({} files scanned, 9 rules)",
                    report.files_scanned
                );
            } else {
                println!(
                    "dynnet-lint: {} violation(s) in {} file(s) scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
            }
        }
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
