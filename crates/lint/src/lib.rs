//! # dynnet-lint
//!
//! Project-specific static analysis for the dynnet workspace. The repo's
//! headline guarantees — byte-identical sweep output for any `--threads N`
//! and a zero-spawn persistent worker pool — rest on a small amount of
//! `unsafe` concurrency code (`vendor/rayon`) and on the absence of
//! hash-iteration order anywhere near an output path. `dynnet-lint` turns
//! those from remembered conventions into CI-failing rules:
//!
//! * [`rules::safety_comment`] — every `unsafe` site documents its invariant.
//! * [`rules::unsafe_confined`] — `unsafe` only in `vendor/`; first-party
//!   crates carry `#![forbid(unsafe_code)]`.
//! * [`rules::thread_spawn`] — thread creation only at the two blessed
//!   sites (the worker pool, the sweep engine), so the thread budget stays
//!   the single source of parallelism.
//! * [`rules::hash_iteration`] — no `HashMap`/`HashSet` iteration order
//!   can reach an output path without a `// DETERMINISM:` justification.
//! * [`rules::wall_clock`] — wall-clock reads only at `// TIMING:`-labelled
//!   sites.
//! * [`rules::unwrap_budget`] — `unwrap()`/`expect()` in library crates are
//!   held to exact per-file burn-down budgets.
//!
//! The analyzer is a deterministic, dependency-free lexical pass (no `syn`;
//! the build environment is offline). Diagnostics are sorted by
//! `(file, line, rule)` so output is byte-stable across runs and machines.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p dynnet-lint
//! ```
//!
//! The allowlist lives at `crates/lint/dynnet-lint.allow`; see
//! [`allow::Allowlist`] for the format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod rules;
pub mod scan;

use allow::Allowlist;
use scan::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative file path (forward slashes).
    pub rel: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `safety-comment`).
    pub rule: &'static str,
    /// Human-readable message with the suggested fix.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.rule, self.msg
        )
    }
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// The directories scanned under the workspace root.
const SCAN_ROOTS: [&str; 4] = ["crates", "vendor", "tests", "examples"];

/// Runs every rule over the workspace rooted at `root`.
///
/// Scans `crates/`, `vendor/`, `tests/`, and `examples/` for `.rs` files in
/// sorted order (deterministic), skipping lint fixtures
/// (`tests/fixtures/` subtrees, which violate rules on purpose) and any
/// `target/` directory.
pub fn run_lint(root: &Path, allow: &Allowlist) -> Result<LintReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let rel = relative_slash(root, path)?;
        if rel
            .split('/')
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w == ["tests", "fixtures"])
        {
            continue; // lint fixtures violate rules by design
        }
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let file = SourceFile::scan(&rel, &source);
        rules::apply_all(&file, allow, &mut diagnostics);
        files_scanned += 1;
    }
    diagnostics.sort();
    Ok(LintReport {
        diagnostics,
        files_scanned,
    })
}

/// Recursively collects `.rs` files, in sorted directory order, skipping
/// `target/` directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn relative_slash(root: &Path, path: &Path) -> Result<String, String> {
    let rel = path
        .strip_prefix(root)
        .map_err(|_| format!("{} not under {}", path.display(), root.display()))?;
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    Ok(s)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the lint's default root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// The default allowlist location inside a workspace.
pub fn default_allowlist_path(root: &Path) -> PathBuf {
    root.join("crates").join("lint").join("dynnet-lint.allow")
}
