//! # dynnet-lint
//!
//! Project-specific static analysis for the dynnet workspace. The repo's
//! headline guarantees — byte-identical sweep output for any `--threads N`
//! and a zero-spawn persistent worker pool — rest on a small amount of
//! `unsafe` concurrency code (`vendor/rayon`) and on a set of conventions
//! (blessed RNG sites, zero hot-path allocation, justified atomic
//! orderings, panic-free public APIs) that `dynnet-lint` turns into
//! CI-failing rules:
//!
//! * [`rules::safety_comment`] — every `unsafe` site documents its invariant.
//! * [`rules::unsafe_confined`] — `unsafe` only in `vendor/`; first-party
//!   crates carry `#![forbid(unsafe_code)]`.
//! * [`rules::thread_spawn`] — thread creation only at the two blessed
//!   sites (the worker pool, the sweep engine).
//! * [`rules::hash_iteration`] — no `HashMap`/`HashSet` iteration order can
//!   reach an output path without a `// DETERMINISM:` justification —
//!   resolved through type aliases and intermediate bindings via the
//!   [`symbols`] table.
//! * [`rules::wall_clock`] — wall-clock reads only at `// TIMING:`-labelled
//!   sites.
//! * [`rules::rng_confined`] — RNG construction/draws only at blessed
//!   allowlisted sites.
//! * [`rules::hot_path_alloc`] — no allocation inside `// HOT:`-marked
//!   round-kernel regions (sites excusable with `// ALLOC:`).
//! * [`rules::ordering_justified`] — every non-`SeqCst` atomic ordering
//!   carries `// ORDERING:`.
//! * [`callgraph::panic_reachability`] — no `unwrap`/`expect`/`panic!`/raw
//!   indexing reachable from a public library API without `// INVARIANT:`
//!   (the successor of the PR 6 per-file unwrap budgets, now a
//!   reachability proof over the cross-crate call graph).
//!
//! The analyzer is deterministic and dependency-free (no `syn`; the build
//! environment is offline): [`scan`] separates code from comments and
//! literals, [`parse`] builds a token-tree view on top, [`symbols`]
//! resolves hash-container bindings per file, and [`callgraph`] links
//! `fn` items across crates. Doc examples (```` ```rust ```` blocks) are
//! extracted by [`scan::SourceFile::doc_examples`] and linted like code.
//! Diagnostics are sorted by `(file, line, rule)` so output is byte-stable
//! across runs and machines.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p dynnet-lint            # human-readable, problem-matcher friendly
//! cargo run -p dynnet-lint -- --format json
//! ```
//!
//! The allowlist lives at `crates/lint/dynnet-lint.allow`; see
//! [`allow::Allowlist`] for the format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod callgraph;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod symbols;

use allow::Allowlist;
use scan::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative file path (forward slashes).
    pub rel: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Stable rule identifier (e.g. `safety-comment`).
    pub rule: &'static str,
    /// Human-readable message with the suggested fix.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.rule, self.msg
        )
    }
}

impl Diagnostic {
    /// The finding as one JSON object (no external deps, so the encoder is
    /// local; strings are escaped per RFC 8259).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":{},"line":{},"rule":{},"message":{}}}"#,
            json_string(&self.rel),
            self.line,
            json_string(self.rule),
            json_string(&self.msg)
        )
    }
}

/// Minimal JSON string encoder.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A source file with its semantic analysis attached: token stream,
/// recognized `fn` items, and the hash-container symbol table.
pub struct AnalyzedFile {
    /// The scanned line model.
    pub src: SourceFile,
    /// Token stream over the code lines.
    pub tokens: Vec<parse::Token>,
    /// Recognized `fn` items (callgraph nodes).
    pub fns: Vec<parse::FnItem>,
    /// Hash-container symbol table.
    pub symbols: symbols::FileSymbols,
}

impl AnalyzedFile {
    /// Runs the semantic passes over a scanned file.
    pub fn analyze(src: SourceFile) -> AnalyzedFile {
        let tokens = parse::tokenize(&src.lines);
        let fns = parse::fn_items(&tokens);
        let symbols = symbols::analyze(&tokens);
        AnalyzedFile {
            src,
            tokens,
            fns,
            symbols,
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The report as a JSON document: an object with the file count and the
    /// findings array, stable field order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The directories scanned under the workspace root.
const SCAN_ROOTS: [&str; 4] = ["crates", "vendor", "tests", "examples"];

/// Runs every rule over the workspace rooted at `root`.
///
/// Scans `crates/`, `vendor/`, `tests/`, and `examples/` for `.rs` files in
/// sorted order (deterministic), skipping lint fixtures
/// (`tests/fixtures/` subtrees, which violate rules on purpose) and any
/// `target/` directory. Each file is analyzed semantically (tokens, fn
/// items, symbols), its doc examples are extracted as synthetic files, the
/// per-file rules run over everything, and finally the whole-workspace
/// `panic-reachability` pass runs over the collected call graph.
pub fn run_lint(root: &Path, allow: &Allowlist) -> Result<LintReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut analyzed: Vec<AnalyzedFile> = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let rel = relative_slash(root, path)?;
        if rel
            .split('/')
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w == ["tests", "fixtures"])
        {
            continue; // lint fixtures violate rules by design
        }
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let file = SourceFile::scan(&rel, &source);
        if let Some(doc) = file.doc_examples() {
            analyzed.push(AnalyzedFile::analyze(doc));
        }
        analyzed.push(AnalyzedFile::analyze(file));
        files_scanned += 1;
    }

    let mut diagnostics = Vec::new();
    for af in &analyzed {
        rules::apply_all(af, allow, &mut diagnostics);
    }
    let deps = callgraph::crate_deps(root);
    callgraph::panic_reachability(&analyzed, allow, &deps, &mut diagnostics);
    diagnostics.sort();
    diagnostics.dedup();
    Ok(LintReport {
        diagnostics,
        files_scanned,
    })
}

/// Recursively collects `.rs` files, in sorted directory order, skipping
/// `target/` directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn relative_slash(root: &Path, path: &Path) -> Result<String, String> {
    let rel = path
        .strip_prefix(root)
        .map_err(|_| format!("{} not under {}", path.display(), root.display()))?;
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    Ok(s)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the lint's default root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// The default allowlist location inside a workspace.
pub fn default_allowlist_path(root: &Path) -> PathBuf {
    root.join("crates").join("lint").join("dynnet-lint.allow")
}
