//! Locally-static adversary: keeps a protected region of the graph perfectly
//! static while churning the rest.
//!
//! This is the workload for the "locally static ⇒ locally stable output"
//! guarantees (Theorem 1.1 part 2, Corollaries 1.2/1.3): if the
//! α-neighborhood of a node never changes during an interval, the combined
//! algorithm's output at that node must stop changing after `T1 + T2` rounds.

use crate::traits::Adversary;
use dynnet_graph::{neighborhood, Edge, Graph, GraphDelta, NodeId};
use dynnet_runtime::rng::experiment_rng;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Churns footprint edges outside a protected node set while keeping every
/// edge with both endpoints inside the protected *closure* exactly as in the
/// base graph, and never adding new edges incident to the protected closure.
///
/// The protected closure is the `protect_radius`-neighborhood of the
/// `protected` seed nodes in the base graph: protecting the closure at radius
/// `α` guarantees the `α`-neighborhood of every seed node is static.
#[derive(Clone, Debug)]
pub struct LocallyStaticAdversary {
    base: Graph,
    /// Nodes whose α-neighborhood must stay static (the seeds).
    protected_seeds: Vec<NodeId>,
    /// The protected closure (seeds + radius).
    closure: Vec<bool>,
    /// Per-round flip probability for unprotected footprint edges.
    churn: f64,
    rng: ChaCha8Rng,
}

impl LocallyStaticAdversary {
    /// Creates the adversary.
    ///
    /// * `base` — the footprint graph (round 0 graph).
    /// * `protected_seeds` — nodes whose neighborhoods must stay static.
    /// * `protect_radius` — the α for which the seeds' α-neighborhood is kept
    ///   static (use α+1 to be safe against edges dangling off the boundary;
    ///   the implementation protects all edges with *either* endpoint in the
    ///   closure, which keeps the closure's adjacency — and hence the seeds'
    ///   `protect_radius`-neighborhood — untouched).
    /// * `churn` — per-round flip probability of unprotected footprint edges.
    pub fn new(
        base: Graph,
        protected_seeds: Vec<NodeId>,
        protect_radius: usize,
        churn: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&churn));
        let mut closure = vec![false; base.num_nodes()];
        for &s in &protected_seeds {
            for v in neighborhood::neighborhood(&base, s, protect_radius) {
                closure[v.index()] = true;
            }
        }
        LocallyStaticAdversary {
            base,
            protected_seeds,
            closure,
            churn,
            rng: experiment_rng(seed, "locally-static"),
        }
    }

    /// The protected seed nodes.
    pub fn protected_seeds(&self) -> &[NodeId] {
        &self.protected_seeds
    }

    /// Returns `true` if `v` belongs to the protected closure.
    pub fn in_closure(&self, v: NodeId) -> bool {
        self.closure[v.index()]
    }

    fn edge_protected(&self, e: Edge) -> bool {
        self.closure[e.u.index()] || self.closure[e.v.index()]
    }
}

impl Adversary for LocallyStaticAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.base.clone()
    }

    /// Delta-native: each flipped unprotected footprint edge becomes one
    /// inserted or removed edge; protected edges never appear in the delta.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        let mut delta = GraphDelta::new();
        for e in self.base.edge_vec() {
            if self.edge_protected(e) {
                continue;
            }
            if self.rng.gen_bool(self.churn) {
                if prev.has_edge(e.u, e.v) {
                    delta.removed.push(e);
                } else {
                    delta.inserted.push(e);
                }
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::generators;

    #[test]
    fn protected_neighborhood_never_changes() {
        let base = generators::grid(8, 8);
        let seed_node = NodeId::new(27); // an interior node
        let mut adv = LocallyStaticAdversary::new(base.clone(), vec![seed_node], 2, 0.4, 13);
        let mut g = adv.initial_graph();
        let mut changed_outside = false;
        for r in 1..40 {
            let next = adv.next_graph(r, &g);
            assert!(
                neighborhood::same_local_view(&g, &next, seed_node, 2),
                "2-neighborhood of the protected node changed in round {r}"
            );
            if !g.edge_symmetric_difference(&next).is_empty() {
                changed_outside = true;
            }
            g = next;
        }
        assert!(changed_outside, "the unprotected part must actually churn");
    }

    #[test]
    fn closure_membership() {
        let base = generators::path(6);
        let adv = LocallyStaticAdversary::new(base, vec![NodeId::new(0)], 1, 0.5, 1);
        assert!(adv.in_closure(NodeId::new(0)));
        assert!(adv.in_closure(NodeId::new(1)));
        assert!(!adv.in_closure(NodeId::new(3)));
        assert_eq!(adv.protected_seeds(), &[NodeId::new(0)]);
    }

    #[test]
    fn zero_churn_is_fully_static() {
        let base = generators::cycle(10);
        let mut adv = LocallyStaticAdversary::new(base.clone(), vec![NodeId::new(0)], 1, 0.0, 2);
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        assert_eq!(g0.edge_vec(), g1.edge_vec());
    }
}
