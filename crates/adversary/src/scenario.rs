//! The unified `Scenario` execution API.
//!
//! The paper's results (Theorem 1.1, Corollaries 1.2/1.3) are statements
//! about whole executions: an adversary, a wake-up schedule, an algorithm,
//! and window verification driven together round by round. [`Scenario`] is
//! the one place that wires those pieces:
//!
//! ```
//! use dynnet_adversary::{Scenario, StaticAdversary};
//! use dynnet_graph::{generators, NodeId};
//! use dynnet_runtime::observer::ChurnStats;
//! use dynnet_runtime::{AllAtStart, Incoming, NodeAlgorithm, NodeContext};
//!
//! #[derive(Clone)]
//! struct MaxFlood(u32);
//! impl NodeAlgorithm for MaxFlood {
//!     type Msg = u32;
//!     type Output = u32;
//!     fn send(&mut self, _ctx: &mut NodeContext<'_>) -> u32 { self.0 }
//!     fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<u32>]) {
//!         for (_, m) in inbox { self.0 = self.0.max(*m); }
//!     }
//!     fn output(&self) -> u32 { self.0 }
//! }
//!
//! let n = 8;
//! let mut churn = ChurnStats::new();
//! let runner = Scenario::new(n)
//!     .algorithm(|v: NodeId| MaxFlood(v.0))
//!     .adversary(StaticAdversary::new(generators::path(n)))
//!     .wakeup(AllAtStart)
//!     .seed(7)
//!     .rounds(n)
//!     .run(&mut [&mut churn]);
//! assert_eq!(runner.outputs()[0], Some(n as u32 - 1));
//! assert_eq!(churn.series().len(), n);
//! ```
//!
//! The builder produces a [`Runner`], which drives the round loop against
//! the adversary and streams a borrowed
//! [`RoundView`] to any number of [`RoundObserver`]s — metrics, T-dynamic
//! verification, and trace recording plug in without the `O(n · rounds)`
//! materialization the old `Simulator::new` + `adversary::run` +
//! post-hoc-verify wiring required.

use crate::traits::OutputAdversary;
use dynnet_graph::Graph;
use dynnet_runtime::observer::{RoundObserver, RoundView};
use dynnet_runtime::{
    AlgorithmFactory, AllAtStart, NodeAlgorithm, SimConfig, Simulator, WakeupSchedule,
};

/// Builder for one complete execution: universe size, algorithm factory,
/// adversary, wake-up schedule, seed/parallelism, and round budget.
///
/// `algorithm`, `adversary`, and `wakeup` change the builder's type; the
/// remaining setters are plain field updates. Terminal methods:
/// [`Scenario::runner`] (manual stepping), [`Scenario::run`] (drive to the
/// round budget), [`Scenario::run_until`] (drive until a predicate fires).
pub struct Scenario<F, W, Adv> {
    n: usize,
    factory: F,
    wakeup: W,
    adversary: Adv,
    config: SimConfig,
    rounds: usize,
}

/// Scenarios whose parts are cloneable are cloneable — a sweep can hold one
/// fully configured scenario as a template and stamp out per-cell copies
/// (changing only the seed, adversary, …) on whichever worker thread runs
/// the cell.
impl<F: Clone, W: Clone, Adv: Clone> Clone for Scenario<F, W, Adv> {
    fn clone(&self) -> Self {
        Scenario {
            n: self.n,
            factory: self.factory.clone(),
            wakeup: self.wakeup.clone(),
            adversary: self.adversary.clone(),
            config: self.config.clone(),
            rounds: self.rounds,
        }
    }
}

impl Scenario<(), AllAtStart, ()> {
    /// Starts a scenario over a universe of `n` nodes with the defaults:
    /// synchronous start ([`AllAtStart`]), seed 0, sequential execution.
    /// An algorithm, an adversary, and a round budget must be supplied
    /// before the scenario can run.
    pub fn new(n: usize) -> Self {
        Scenario {
            n,
            factory: (),
            wakeup: AllAtStart,
            adversary: (),
            config: SimConfig::default(),
            rounds: 0,
        }
    }
}

impl<F, W, Adv> Scenario<F, W, Adv> {
    /// Sets the per-node algorithm factory (e.g. `dynamic_coloring(window)`
    /// or a `|v: NodeId| …` closure).
    pub fn algorithm<F2>(self, factory: F2) -> Scenario<F2, W, Adv> {
        Scenario {
            n: self.n,
            factory,
            wakeup: self.wakeup,
            adversary: self.adversary,
            config: self.config,
            rounds: self.rounds,
        }
    }

    /// Sets the adversary producing the communication graph of every round.
    pub fn adversary<Adv2>(self, adversary: Adv2) -> Scenario<F, W, Adv2> {
        Scenario {
            n: self.n,
            factory: self.factory,
            wakeup: self.wakeup,
            adversary,
            config: self.config,
            rounds: self.rounds,
        }
    }

    /// Sets the wake-up schedule (default: [`AllAtStart`]).
    pub fn wakeup<W2: WakeupSchedule>(self, wakeup: W2) -> Scenario<F, W2, Adv> {
        Scenario {
            n: self.n,
            factory: self.factory,
            wakeup,
            adversary: self.adversary,
            config: self.config,
            rounds: self.rounds,
        }
    }

    /// Sets the experiment seed all node randomness derives from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables or disables the parallel per-node phases.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.config.parallel = parallel;
        self
    }

    /// Sets the minimum number of awake nodes before the parallel path is
    /// used.
    pub fn parallel_threshold(mut self, threshold: usize) -> Self {
        self.config.parallel_threshold = threshold;
        self
    }

    /// Replaces the whole simulator configuration at once.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the round budget (required, ≥ 1).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }
}

impl<F, W: WakeupSchedule, Adv> Scenario<F, W, Adv> {
    /// Builds the [`Runner`] without executing any round (manual stepping).
    pub fn runner<A>(self) -> Runner<A, F, W, Adv>
    where
        A: NodeAlgorithm,
        F: AlgorithmFactory<A>,
        Adv: OutputAdversary<A::Output>,
    {
        assert!(self.rounds >= 1, "Scenario requires .rounds(r) with r >= 1");
        Runner {
            sim: Simulator::new(self.n, self.factory, self.wakeup, self.config),
            adversary: self.adversary,
            rounds: self.rounds,
            executed: 0,
            current_graph: None,
        }
    }

    /// Executes the full round budget, streaming every round to `observers`,
    /// and returns the completed [`Runner`] (for inspecting final outputs or
    /// node state).
    pub fn run<A>(self, observers: &mut [&mut dyn RoundObserver<A::Output>]) -> Runner<A, F, W, Adv>
    where
        A: NodeAlgorithm,
        F: AlgorithmFactory<A>,
        Adv: OutputAdversary<A::Output>,
    {
        let mut runner = self.runner();
        runner.run(observers);
        runner
    }

    /// Executes rounds until `stop` returns `true` for a round's view (or the
    /// round budget is exhausted), then returns the completed [`Runner`].
    /// `Runner::rounds_executed` tells how many rounds actually ran.
    pub fn run_until<A>(
        self,
        observers: &mut [&mut dyn RoundObserver<A::Output>],
        stop: impl FnMut(&RoundView<'_, A::Output>) -> bool,
    ) -> Runner<A, F, W, Adv>
    where
        A: NodeAlgorithm,
        F: AlgorithmFactory<A>,
        Adv: OutputAdversary<A::Output>,
    {
        let mut runner = self.runner();
        runner.run_until(observers, stop);
        runner
    }
}

/// Outcome of advancing the round loop by one round.
enum Advance {
    /// The round executed; the stop predicate did not fire.
    Continued,
    /// The round executed and the stop predicate fired.
    Stopped,
    /// The round budget was already exhausted; nothing executed.
    Exhausted,
}

/// Drives one [`Simulator`] against one adversary for a bounded number of
/// rounds, streaming each round to the registered observers. Built by
/// [`Scenario::runner`].
pub struct Runner<A, F, W, Adv>
where
    A: NodeAlgorithm,
    F: AlgorithmFactory<A>,
    W: WakeupSchedule,
    Adv: OutputAdversary<A::Output>,
{
    sim: Simulator<A, F, W>,
    adversary: Adv,
    rounds: usize,
    executed: usize,
    /// The one persistent adversary graph of the run: round 0's graph,
    /// patched in place by each round's [`dynnet_graph::GraphDelta`] — the
    /// adversary never hands back (and the runner never clones) a whole
    /// graph after round 0. `None` before round 0.
    current_graph: Option<Graph>,
}

impl<A, F, W, Adv> Runner<A, F, W, Adv>
where
    A: NodeAlgorithm,
    F: AlgorithmFactory<A>,
    W: WakeupSchedule,
    Adv: OutputAdversary<A::Output>,
{
    fn advance(
        &mut self,
        observers: &mut [&mut dyn RoundObserver<A::Output>],
        stop: &mut dyn FnMut(&RoundView<'_, A::Output>) -> bool,
    ) -> Advance {
        if self.executed >= self.rounds {
            return Advance::Exhausted;
        }
        let round = self.executed as u64;
        let _round_span = dynnet_obs::phase_span_arg("round", "round", "round", round);
        let summary = match &mut self.current_graph {
            None => {
                let graph = {
                    let _span = dynnet_obs::phase_span("round", "adv_delta");
                    self.adversary.initial_graph()
                };
                let summary = self.sim.step_streaming(&graph);
                self.current_graph = Some(graph);
                summary
            }
            Some(graph) => {
                // The adversary sees the previous round's outputs only —
                // never the current round's randomness (it stays
                // 1-oblivious). It hands back the round's delta, which is
                // applied to the persistent graph and patched into the
                // simulator's incremental effective CSR: per-round cost is
                // O(|δ|) on the sparse-churn path, with no graph clones and
                // no full CSR rebuilds.
                let delta = {
                    let _span = dynnet_obs::phase_span("round", "adv_delta");
                    let delta = self.adversary.next_delta(round, graph, self.sim.outputs());
                    delta.apply(graph);
                    delta
                };
                self.sim.step_delta(graph, &delta)
            }
        };
        self.executed += 1;
        // One adjacency-Graph conversion per round, shared lazily by every
        // observer through `RoundView::current_graph`.
        let graph_cell = std::cell::OnceCell::new();
        let view = RoundView {
            round: summary.round,
            graph: &summary.graph,
            delta: summary.delta.as_ref(),
            outputs: self.sim.outputs(),
            changed_outputs: Some(&summary.changed_outputs),
            newly_awake: &summary.newly_awake,
            num_awake: summary.num_awake,
            graph_cell: &graph_cell,
        };
        {
            let _span = dynnet_obs::phase_span("round", "observers");
            for obs in observers.iter_mut() {
                obs.on_round(&view);
            }
        }
        if stop(&view) {
            Advance::Stopped
        } else {
            Advance::Continued
        }
    }

    /// Mirrors the simulator's [`dynnet_runtime::DeltaStats`] into the
    /// unified metric registry (`sim.rounds_patched`, `sim.full_csr_builds`,
    /// `sim.cow_clones`, `sim.compactions`), *adding* this run's counts so
    /// multi-run processes accumulate. Called by [`Runner::run`] /
    /// [`Runner::run_until`] at the end of the execution.
    fn export_delta_stats(&self) {
        let stats = self.sim.delta_stats();
        let reg = dynnet_obs::registry();
        reg.counter("sim.rounds_patched")
            .add(stats.rounds_patched as u64);
        reg.counter("sim.full_csr_builds")
            .add(stats.full_csr_builds as u64);
        reg.counter("sim.cow_clones").add(stats.cow_clones as u64);
        reg.counter("sim.compactions").add(stats.compactions as u64);
    }

    /// Executes one round, streaming it to `observers`. Returns `false` once
    /// the round budget is exhausted (no round executed). Manual stepping
    /// does not call [`RoundObserver::finish`]; invoke it yourself (or use
    /// [`Runner::run`]).
    pub fn step(&mut self, observers: &mut [&mut dyn RoundObserver<A::Output>]) -> bool {
        !matches!(self.advance(observers, &mut |_| false), Advance::Exhausted)
    }

    /// Executes all remaining rounds, then calls [`RoundObserver::finish`] on
    /// every observer. Returns the total number of rounds executed.
    pub fn run(&mut self, observers: &mut [&mut dyn RoundObserver<A::Output>]) -> usize {
        while let Advance::Continued = self.advance(observers, &mut |_| false) {}
        self.export_delta_stats();
        for obs in observers.iter_mut() {
            obs.finish();
        }
        self.executed
    }

    /// Executes rounds until `stop` returns `true` or the budget runs out,
    /// then calls [`RoundObserver::finish`]. Returns the total number of
    /// rounds executed.
    pub fn run_until(
        &mut self,
        observers: &mut [&mut dyn RoundObserver<A::Output>],
        mut stop: impl FnMut(&RoundView<'_, A::Output>) -> bool,
    ) -> usize {
        while let Advance::Continued = self.advance(observers, &mut stop) {}
        self.export_delta_stats();
        for obs in observers.iter_mut() {
            obs.finish();
        }
        self.executed
    }

    /// Number of rounds executed so far.
    pub fn rounds_executed(&self) -> usize {
        self.executed
    }

    /// The configured round budget.
    pub fn round_budget(&self) -> usize {
        self.rounds
    }

    /// The most recent outputs (as of the last executed round).
    pub fn outputs(&self) -> &[Option<A::Output>] {
        self.sim.outputs()
    }

    /// Immutable access to the underlying simulator (node state inspection).
    pub fn sim(&self) -> &Simulator<A, F, W> {
        &self.sim
    }

    /// Immutable access to the adversary.
    pub fn adversary(&self) -> &Adv {
        &self.adversary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::FlipChurnAdversary;
    use crate::simple::StaticAdversary;
    use dynnet_graph::{generators, NodeId};
    use dynnet_runtime::observer::{ChurnStats, ConvergenceTracker, TraceRecorder};
    use dynnet_runtime::rng::experiment_rng;
    use dynnet_runtime::{Incoming, NodeContext, ScriptedWakeup};

    /// Flooding: every node outputs the maximum id heard so far.
    #[derive(Clone)]
    struct MaxFlood(u32);

    impl NodeAlgorithm for MaxFlood {
        type Msg = u32;
        type Output = u32;
        fn send(&mut self, _ctx: &mut NodeContext<'_>) -> u32 {
            self.0
        }
        fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<u32>]) {
            for (_, m) in inbox {
                self.0 = self.0.max(*m);
            }
        }
        fn output(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn scenario_matches_legacy_run() {
        let n = 24;
        let footprint = generators::erdos_renyi_avg_degree(n, 4.0, &mut experiment_rng(1, "sc"));
        let rounds = 12;

        let mut sim = Simulator::new(
            n,
            |v: NodeId| MaxFlood(v.0),
            dynnet_runtime::AllAtStart,
            SimConfig::sequential(5),
        );
        let mut adv = FlipChurnAdversary::new(&footprint, 0.05, 9);
        let legacy = crate::drive::run(&mut sim, &mut adv, rounds);

        let mut recorder = TraceRecorder::new();
        let runner = Scenario::new(n)
            .algorithm(|v: NodeId| MaxFlood(v.0))
            .adversary(FlipChurnAdversary::new(&footprint, 0.05, 9))
            .seed(5)
            .rounds(rounds)
            .run(&mut [&mut recorder]);
        let record = recorder.into_record();

        assert_eq!(runner.rounds_executed(), rounds);
        assert_eq!(record.num_rounds(), legacy.num_rounds());
        for r in 0..rounds {
            assert_eq!(record.outputs_at(r), legacy.outputs_at(r), "round {r}");
            assert_eq!(
                record.graph_at(r).edge_vec(),
                legacy.graph_at(r).edge_vec(),
                "round {r}"
            );
        }
    }

    #[test]
    fn run_until_stops_early() {
        let n = 10;
        let runner = Scenario::new(n)
            .algorithm(|v: NodeId| MaxFlood(v.0))
            .adversary(StaticAdversary::new(generators::complete(n)))
            .rounds(50)
            .run_until(&mut [], |view| {
                view.outputs.iter().all(|o| *o == Some(n as u32 - 1))
            });
        // On a complete graph flooding converges after one round.
        assert_eq!(runner.rounds_executed(), 1);
    }

    #[test]
    fn observers_see_every_round_and_wakeups() {
        let n = 4;
        let mut churn = ChurnStats::new();
        let mut conv = ConvergenceTracker::new(|&o: &u32| o == 3);
        let runner = Scenario::new(n)
            .algorithm(|v: NodeId| MaxFlood(v.0))
            .adversary(StaticAdversary::new(generators::path(n)))
            .wakeup(ScriptedWakeup {
                rounds: vec![0, 0, 0, 2],
            })
            .rounds(8)
            .run(&mut [&mut churn, &mut conv]);
        assert_eq!(churn.series().len(), 8);
        assert_eq!(conv.wake_round(NodeId::new(3)), Some(2));
        assert!(conv.all_done_round().is_some());
        assert_eq!(runner.outputs()[0], Some(3));
        assert_eq!(runner.sim().num_awake(), 4);
    }

    #[test]
    #[should_panic(expected = "rounds")]
    fn missing_round_budget_panics() {
        let _ = Scenario::new(3)
            .algorithm(|v: NodeId| MaxFlood(v.0))
            .adversary(StaticAdversary::new(generators::path(3)))
            .runner::<MaxFlood>();
    }
}
