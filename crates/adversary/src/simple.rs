//! Simple adversaries: a static network, a scripted replay of a recorded
//! trace, and a phase-schedule composite that switches between inner
//! adversaries over time.

use crate::traits::Adversary;
use dynnet_graph::{DynamicGraphTrace, Graph, GraphDelta};

/// The degenerate "adversary" of a fully static network: the same graph in
/// every round. Running the dynamic algorithms against it recovers the
//  classic static guarantees.
#[derive(Clone, Debug)]
pub struct StaticAdversary {
    graph: Graph,
}

impl StaticAdversary {
    /// Uses `graph` in every round.
    pub fn new(graph: Graph) -> Self {
        StaticAdversary { graph }
    }
}

impl Adversary for StaticAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.graph.clone()
    }

    fn next_graph(&mut self, _round: u64, _prev: &Graph) -> Graph {
        self.graph.clone()
    }

    /// A static network never changes: the delta is always empty (and the
    /// per-round graph clone of the legacy path disappears entirely).
    fn next_delta(&mut self, _round: u64, _prev: &Graph) -> GraphDelta {
        GraphDelta::new()
    }
}

/// Replays a recorded [`DynamicGraphTrace`]; after the trace ends the last
/// graph repeats forever.
#[derive(Clone, Debug)]
pub struct ScriptedAdversary {
    trace: DynamicGraphTrace,
}

impl ScriptedAdversary {
    /// Replays `trace` round by round.
    pub fn new(trace: DynamicGraphTrace) -> Self {
        ScriptedAdversary { trace }
    }
}

impl Adversary for ScriptedAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.trace.graph_at(0)
    }

    fn next_graph(&mut self, round: u64, _prev: &Graph) -> Graph {
        let r = (round as usize).min(self.trace.num_rounds() - 1);
        self.trace.graph_at(r)
    }

    /// Replays the recorded per-round deltas directly — no `O(r · changes)`
    /// reconstruction of the round's graph. Past the end of the trace the
    /// last graph repeats (empty delta).
    fn next_delta(&mut self, round: u64, _prev: &Graph) -> GraphDelta {
        let r = round as usize;
        if r < self.trace.num_rounds() {
            self.trace.deltas()[r - 1].clone()
        } else {
            GraphDelta::new()
        }
    }
}

/// Runs a sequence of inner adversaries, each for a fixed number of rounds.
/// When a phase starts, its adversary continues from the previous phase's
/// last graph (its own `initial_graph` is only used for the very first
/// phase).
pub struct PhaseAdversary {
    phases: Vec<(u64, Box<dyn Adversary>)>,
}

impl PhaseAdversary {
    /// `phases` is a list of `(duration_in_rounds, adversary)` pairs; the
    /// last phase runs forever regardless of its stated duration.
    pub fn new(phases: Vec<(u64, Box<dyn Adversary>)>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        PhaseAdversary { phases }
    }

    fn phase_for(&mut self, round: u64) -> usize {
        let mut acc = 0u64;
        for (i, (dur, _)) in self.phases.iter().enumerate() {
            acc = acc.saturating_add(*dur);
            if round < acc || i == self.phases.len() - 1 {
                return i;
            }
        }
        self.phases.len() - 1
    }
}

impl Adversary for PhaseAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.phases[0].1.initial_graph()
    }

    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph {
        let i = self.phase_for(round);
        self.phases[i].1.next_graph(round, prev)
    }

    fn next_delta(&mut self, round: u64, prev: &Graph) -> GraphDelta {
        let i = self.phase_for(round);
        if round >= 1 && i != self.phase_for(round - 1) {
            // Phase switch: the incoming adversary's delta contract ("prev is
            // the graph I produced last round") does not hold across the
            // boundary, so materialize its first graph and diff explicitly.
            let next = self.phases[i].1.next_graph(round, prev);
            return GraphDelta::between(prev, &next);
        }
        self.phases[i].1.next_delta(round, prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::{generators, Edge};

    #[test]
    fn static_adversary_never_changes() {
        let g = generators::cycle(5);
        let mut adv = StaticAdversary::new(g.clone());
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        assert_eq!(g0.edge_vec(), g.edge_vec());
        assert_eq!(g1.edge_vec(), g.edge_vec());
    }

    #[test]
    fn scripted_replays_and_then_repeats() {
        let g0 = Graph::from_edges(3, [Edge::of(0, 1)]);
        let g1 = Graph::from_edges(3, [Edge::of(1, 2)]);
        let mut trace = DynamicGraphTrace::new(g0.clone());
        trace.push(&g1);
        let mut adv = ScriptedAdversary::new(trace);
        assert_eq!(adv.initial_graph().edge_vec(), g0.edge_vec());
        assert_eq!(adv.next_graph(1, &g0).edge_vec(), g1.edge_vec());
        assert_eq!(
            adv.next_graph(7, &g1).edge_vec(),
            g1.edge_vec(),
            "repeats last graph"
        );
    }

    #[test]
    fn phase_switch_resets_to_state_composed_adversaries() {
        // Switching into an adversary that composes its graph from internal
        // state (burst: base + injections) must replace the previous phase's
        // graph, on the delta path as well as the whole-graph path.
        use crate::churn::BurstAdversary;
        let base_a = generators::complete(6);
        let base_b = generators::path(6);
        let make = || {
            PhaseAdversary::new(vec![
                (
                    2,
                    Box::new(StaticAdversary::new(base_a.clone())) as Box<dyn Adversary>,
                ),
                (
                    2,
                    Box::new(BurstAdversary::new(base_b.clone(), 100, 1, 0, 1)),
                ),
            ])
        };
        // Whole-graph path.
        let mut by_graph = make();
        let mut g = by_graph.initial_graph();
        g = by_graph.next_graph(1, &g);
        g = by_graph.next_graph(2, &g);
        assert_eq!(g.edge_vec(), base_b.edge_vec(), "switch resets to base");
        // Delta path.
        let mut by_delta = make();
        let mut g = by_delta.initial_graph();
        for r in 1..=3u64 {
            let d = by_delta.next_delta(r, &g);
            d.apply(&mut g);
        }
        assert_eq!(g.edge_vec(), base_b.edge_vec());
    }

    #[test]
    fn phase_adversary_switches() {
        let a = StaticAdversary::new(generators::path(4));
        let b = StaticAdversary::new(generators::complete(4));
        let mut adv = PhaseAdversary::new(vec![(2, Box::new(a)), (2, Box::new(b))]);
        let g0 = adv.initial_graph();
        assert_eq!(g0.num_edges(), 3);
        assert_eq!(adv.next_graph(1, &g0).num_edges(), 3);
        assert_eq!(adv.next_graph(2, &g0).num_edges(), 6);
        assert_eq!(
            adv.next_graph(99, &g0).num_edges(),
            6,
            "last phase runs forever"
        );
    }
}
