//! Node churn: nodes leaving and (re)joining the network.
//!
//! Per the paper's model a node leaving is represented by removing all its
//! incident edges while keeping it in the universe as an inactive isolated
//! node; the node set `V_r` itself only grows (wake-ups are handled by the
//! runtime's wake-up schedules).

use crate::traits::Adversary;
use dynnet_graph::{Graph, GraphDelta, NodeId};
use dynnet_runtime::rng::experiment_rng;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Each round, every present node leaves with probability `p_leave` (all its
/// edges are removed) and every absent node rejoins with probability
/// `p_join`, reacquiring its edges to present footprint neighbors.
#[derive(Clone, Debug)]
pub struct NodeChurnAdversary {
    footprint: Graph,
    p_leave: f64,
    p_join: f64,
    present: Vec<bool>,
    rng: ChaCha8Rng,
}

impl NodeChurnAdversary {
    /// Creates the adversary over `footprint`; all nodes start present.
    pub fn new(footprint: Graph, p_leave: f64, p_join: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_leave) && (0.0..=1.0).contains(&p_join));
        let n = footprint.num_nodes();
        NodeChurnAdversary {
            footprint,
            p_leave,
            p_join,
            present: vec![true; n],
            rng: experiment_rng(seed, "node-churn"),
        }
    }

    /// Which nodes are currently present (have their footprint edges).
    pub fn present(&self) -> &[bool] {
        &self.present
    }

    fn compose(&self) -> Graph {
        let mut g = Graph::new(self.footprint.num_nodes());
        for e in self.footprint.edges() {
            if self.present[e.u.index()] && self.present[e.v.index()] {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }
}

impl Adversary for NodeChurnAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.compose()
    }

    /// Whole-graph compatibility path: composed from the present-set state,
    /// independent of `prev` (phase switches reset to this composition).
    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph {
        let _ = self.next_delta(round, prev);
        self.compose()
    }

    /// Delta-native: a leaver contributes its current incident edges as
    /// removals, a joiner its footprint edges to now-present neighbors as
    /// insertions — the graph is never re-composed. The delta is normalized,
    /// so an edge between two simultaneous joiners (recorded once per
    /// endpoint) is not double-inserted.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        let mut left = Vec::new();
        let mut joined = Vec::new();
        for i in 0..self.present.len() {
            if self.present[i] {
                if self.rng.gen_bool(self.p_leave) {
                    self.present[i] = false;
                    left.push(NodeId::new(i));
                }
            } else if self.rng.gen_bool(self.p_join) {
                self.present[i] = true;
                joined.push(NodeId::new(i));
            }
        }
        let mut delta = GraphDelta::new();
        for &v in &left {
            for u in prev.neighbors(v) {
                delta.remove(v, u);
            }
        }
        for &v in &joined {
            for u in self.footprint.neighbors(v) {
                if self.present[u.index()] && !prev.has_edge(v, u) {
                    delta.insert(v, u);
                }
            }
        }
        delta.normalize();
        delta
    }
}

/// A growth adversary: nodes join one by one (in id order, `rate` per round)
/// and connect to their footprint neighbors that have already joined. Models
/// a network bootstrapping while the algorithm is already running.
#[derive(Clone, Debug)]
pub struct GrowthAdversary {
    footprint: Graph,
    rate: usize,
    joined: usize,
}

impl GrowthAdversary {
    /// Creates a growth adversary; `rate` nodes join per round, starting with
    /// `initial` nodes present in round 0.
    pub fn new(footprint: Graph, initial: usize, rate: usize) -> Self {
        assert!(rate >= 1);
        GrowthAdversary {
            footprint,
            rate,
            joined: initial,
        }
    }

    fn compose(&self) -> Graph {
        let mut g = Graph::new_all_asleep(self.footprint.num_nodes());
        for i in 0..self.joined.min(self.footprint.num_nodes()) {
            g.activate(NodeId::new(i));
        }
        for e in self.footprint.edges() {
            if e.u.index() < self.joined && e.v.index() < self.joined {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }
}

impl Adversary for GrowthAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.compose()
    }

    /// Whole-graph compatibility path: composed from the joined-count state,
    /// independent of `prev` (phase switches reset to this composition).
    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph {
        let _ = self.next_delta(round, prev);
        self.compose()
    }

    /// Delta-native: the rate-many nodes joining this round wake up and
    /// bring their footprint edges to already-joined neighbors.
    fn next_delta(&mut self, _round: u64, _prev: &Graph) -> GraphDelta {
        let old = self.joined.min(self.footprint.num_nodes());
        self.joined = (self.joined + self.rate).min(self.footprint.num_nodes());
        let mut delta = GraphDelta::new();
        for i in old..self.joined {
            let v = NodeId::new(i);
            delta.wake(v);
            for u in self.footprint.neighbors(v) {
                if u.index() < self.joined {
                    delta.insert(v, u);
                }
            }
        }
        delta.normalize();
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::generators;

    #[test]
    fn node_churn_edges_only_between_present_nodes() {
        let mut adv = NodeChurnAdversary::new(generators::complete(8), 0.3, 0.3, 3);
        let mut g = adv.initial_graph();
        assert_eq!(g.num_edges(), 28);
        for r in 1..20 {
            g = adv.next_graph(r, &g);
            let present = adv.present().to_vec();
            for e in g.edges() {
                assert!(present[e.u.index()] && present[e.v.index()]);
            }
        }
    }

    #[test]
    fn node_churn_extremes() {
        let mut stay = NodeChurnAdversary::new(generators::cycle(6), 0.0, 0.0, 4);
        let g0 = stay.initial_graph();
        let g1 = stay.next_graph(1, &g0);
        assert_eq!(g0.edge_vec(), g1.edge_vec());

        let mut all_leave = NodeChurnAdversary::new(generators::cycle(6), 1.0, 0.0, 4);
        let g0 = all_leave.initial_graph();
        let g1 = all_leave.next_graph(1, &g0);
        assert_eq!(g1.num_edges(), 0);
    }

    #[test]
    fn growth_adversary_adds_nodes_monotonically() {
        let mut adv = GrowthAdversary::new(generators::complete(6), 2, 2);
        let g0 = adv.initial_graph();
        assert_eq!(g0.num_edges(), 1, "K_2 among the first two nodes");
        assert_eq!(g0.num_active(), 2);
        let g1 = adv.next_graph(1, &g0);
        assert_eq!(g1.num_active(), 4);
        assert_eq!(g1.num_edges(), 6, "K_4");
        let g2 = adv.next_graph(2, &g1);
        let g3 = adv.next_graph(3, &g2);
        assert_eq!(g3.num_edges(), 15, "saturates at K_6");
    }
}
