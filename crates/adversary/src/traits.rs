//! Adversary traits.
//!
//! The paper's dynamic graph is "provided by a worst case adversary in a
//! synchronous round-based model" (Section 2). An [`Adversary`] produces the
//! communication graph of each round, possibly as a function of the previous
//! graph. An [`OutputAdversary`] may additionally observe the outputs that
//! the nodes published at the end of the *previous* round — this models the
//! adaptive adversaries discussed in the paper (an adversary never sees the
//! coin flips of the current round, so every adversary built from this trait
//! is at least 1-oblivious; the oblivious adversaries ignore outputs
//! entirely and are therefore also 2-oblivious as required by Lemma 5.2).

use dynnet_graph::Graph;

/// An output-oblivious adversary: produces `G_r` from the round number and
/// the previous graph only.
pub trait Adversary: Send {
    /// The graph for round 0.
    fn initial_graph(&mut self) -> Graph;

    /// The graph for round `round ≥ 1`, given the previous round's graph.
    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph;
}

/// An adversary that may additionally inspect the outputs published by the
/// nodes at the end of the previous round (adaptive, but still oblivious to
/// the current round's randomness).
pub trait OutputAdversary<O>: Send {
    /// The graph for round 0.
    fn initial_graph(&mut self) -> Graph;

    /// The graph for round `round ≥ 1`, given the previous graph and the
    /// outputs published at the end of round `round - 1` (`None` for nodes
    /// that have not woken up).
    fn next_graph(&mut self, round: u64, prev: &Graph, outputs: &[Option<O>]) -> Graph;
}

/// Every output-oblivious adversary is trivially an output-aware adversary
/// that ignores the outputs.
impl<O, A: Adversary> OutputAdversary<O> for A {
    fn initial_graph(&mut self) -> Graph {
        Adversary::initial_graph(self)
    }

    fn next_graph(&mut self, round: u64, prev: &Graph, _outputs: &[Option<O>]) -> Graph {
        Adversary::next_graph(self, round, prev)
    }
}

/// Boxed adversaries are adversaries, so heterogeneous workload lists
/// (`Vec<(name, Box<dyn OutputAdversary<_>>)>`) plug straight into
/// [`crate::Scenario::adversary`].
impl<O> OutputAdversary<O> for Box<dyn OutputAdversary<O> + '_> {
    fn initial_graph(&mut self) -> Graph {
        (**self).initial_graph()
    }

    fn next_graph(&mut self, round: u64, prev: &Graph, outputs: &[Option<O>]) -> Graph {
        (**self).next_graph(round, prev, outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::generators;

    struct Freeze(Graph);

    impl Adversary for Freeze {
        fn initial_graph(&mut self) -> Graph {
            self.0.clone()
        }
        fn next_graph(&mut self, _round: u64, prev: &Graph) -> Graph {
            prev.clone()
        }
    }

    #[test]
    fn blanket_output_adversary_impl() {
        let mut adv = Freeze(generators::cycle(4));
        let g0 = <Freeze as OutputAdversary<u32>>::initial_graph(&mut adv);
        let g1 = <Freeze as OutputAdversary<u32>>::next_graph(&mut adv, 1, &g0, &[None; 4]);
        assert_eq!(g0.edge_vec(), g1.edge_vec());
    }
}
