//! Adversary traits.
//!
//! The paper's dynamic graph is "provided by a worst case adversary in a
//! synchronous round-based model" (Section 2). An [`Adversary`] produces the
//! communication graph of each round, possibly as a function of the previous
//! graph. An [`OutputAdversary`] may additionally observe the outputs that
//! the nodes published at the end of the *previous* round — this models the
//! adaptive adversaries discussed in the paper (an adversary never sees the
//! coin flips of the current round, so every adversary built from this trait
//! is at least 1-oblivious; the oblivious adversaries ignore outputs
//! entirely and are therefore also 2-oblivious as required by Lemma 5.2).

use dynnet_graph::{Graph, GraphDelta};

/// An output-oblivious adversary: produces `G_r` from the round number and
/// the previous graph only.
///
/// The round loop is delta-native: the runner keeps one persistent graph and
/// asks the adversary for the round's [`GraphDelta`] via
/// [`Adversary::next_delta`]. `next_graph` and `next_delta` are mutually
/// default-implemented — an implementation must override **at least one** of
/// them (overriding neither recurses infinitely). Legacy adversaries that
/// override only `next_graph` keep working (their delta is derived with
/// [`GraphDelta::between`], `O(n + m)`); delta-native adversaries override
/// `next_delta` and pay only `O(|δ|)` per round.
pub trait Adversary: Send {
    /// The graph for round 0.
    fn initial_graph(&mut self) -> Graph;

    /// The graph for round `round ≥ 1`, given the previous round's graph.
    ///
    /// Default: materializes [`Adversary::next_delta`] onto a copy of `prev`.
    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph {
        self.next_delta(round, prev).materialize(prev)
    }

    /// The change the adversary applies at the beginning of round
    /// `round ≥ 1`, relative to `prev` (the graph of round `round - 1`).
    ///
    /// Default: derived from [`Adversary::next_graph`] with
    /// [`GraphDelta::between`], so existing whole-graph adversaries keep
    /// working unchanged.
    ///
    /// At most one of `next_graph` / `next_delta` is called per round; an
    /// adversary that advances internal state (RNG draws, positions) must
    /// produce the same evolution through either entry point.
    fn next_delta(&mut self, round: u64, prev: &Graph) -> GraphDelta {
        let next = self.next_graph(round, prev);
        GraphDelta::between(prev, &next)
    }
}

/// An adversary that may additionally inspect the outputs published by the
/// nodes at the end of the previous round (adaptive, but still oblivious to
/// the current round's randomness).
///
/// Like [`Adversary`], the graph- and delta-producing entry points are
/// mutually default-implemented; override at least one of them.
pub trait OutputAdversary<O>: Send {
    /// The graph for round 0.
    fn initial_graph(&mut self) -> Graph;

    /// The graph for round `round ≥ 1`, given the previous graph and the
    /// outputs published at the end of round `round - 1` (`None` for nodes
    /// that have not woken up).
    fn next_graph(&mut self, round: u64, prev: &Graph, outputs: &[Option<O>]) -> Graph {
        self.next_delta(round, prev, outputs).materialize(prev)
    }

    /// The change applied at the beginning of round `round ≥ 1`, relative to
    /// `prev`, given the outputs published at the end of round `round - 1`.
    fn next_delta(&mut self, round: u64, prev: &Graph, outputs: &[Option<O>]) -> GraphDelta {
        let next = self.next_graph(round, prev, outputs);
        GraphDelta::between(prev, &next)
    }
}

/// Every output-oblivious adversary is trivially an output-aware adversary
/// that ignores the outputs.
impl<O, A: Adversary> OutputAdversary<O> for A {
    fn initial_graph(&mut self) -> Graph {
        Adversary::initial_graph(self)
    }

    fn next_graph(&mut self, round: u64, prev: &Graph, _outputs: &[Option<O>]) -> Graph {
        Adversary::next_graph(self, round, prev)
    }

    fn next_delta(&mut self, round: u64, prev: &Graph, _outputs: &[Option<O>]) -> GraphDelta {
        Adversary::next_delta(self, round, prev)
    }
}

/// Boxed adversaries are adversaries, so heterogeneous workload lists
/// (`Vec<(name, Box<dyn OutputAdversary<_>>)>`) plug straight into
/// [`crate::Scenario::adversary`].
impl<O> OutputAdversary<O> for Box<dyn OutputAdversary<O> + '_> {
    fn initial_graph(&mut self) -> Graph {
        (**self).initial_graph()
    }

    fn next_graph(&mut self, round: u64, prev: &Graph, outputs: &[Option<O>]) -> Graph {
        (**self).next_graph(round, prev, outputs)
    }

    fn next_delta(&mut self, round: u64, prev: &Graph, outputs: &[Option<O>]) -> GraphDelta {
        (**self).next_delta(round, prev, outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::generators;

    struct Freeze(Graph);

    impl Adversary for Freeze {
        fn initial_graph(&mut self) -> Graph {
            self.0.clone()
        }
        fn next_graph(&mut self, _round: u64, prev: &Graph) -> Graph {
            prev.clone()
        }
    }

    #[test]
    fn blanket_output_adversary_impl() {
        let mut adv = Freeze(generators::cycle(4));
        let g0 = <Freeze as OutputAdversary<u32>>::initial_graph(&mut adv);
        let g1 = <Freeze as OutputAdversary<u32>>::next_graph(&mut adv, 1, &g0, &[None; 4]);
        assert_eq!(g0.edge_vec(), g1.edge_vec());
    }

    #[test]
    fn default_next_delta_derives_from_next_graph() {
        // Freeze only overrides next_graph; the derived delta must be empty.
        let mut adv = Freeze(generators::cycle(4));
        let g0 = Adversary::initial_graph(&mut adv);
        let delta = Adversary::next_delta(&mut adv, 1, &g0);
        assert!(delta.is_empty());
    }

    struct DropOneEdge;

    impl Adversary for DropOneEdge {
        fn initial_graph(&mut self) -> Graph {
            generators::cycle(4)
        }
        // Only next_delta is overridden; next_graph is derived.
        fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
            let mut delta = GraphDelta::new();
            if let Some(e) = prev.edges().next() {
                delta.remove(e.u, e.v);
            }
            delta
        }
    }

    #[test]
    fn default_next_graph_derives_from_next_delta() {
        let mut adv = DropOneEdge;
        let g0 = Adversary::initial_graph(&mut adv);
        let g1 = Adversary::next_graph(&mut adv, 1, &g0);
        assert_eq!(g1.num_edges(), g0.num_edges() - 1);
    }
}
