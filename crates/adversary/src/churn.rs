//! Edge-churn adversaries: per-edge Markov on/off dynamics, uniform edge
//! flips over a footprint graph, fixed-rate random insert/remove, and
//! periodic conflict-injection bursts.
//!
//! These model the "highly dynamic" regime of the paper: changes can occur in
//! *every* round, so algorithms can never rely on a quiet recovery period.

use crate::traits::Adversary;
use dynnet_graph::{Edge, Graph, GraphDelta, NodeId};
use dynnet_runtime::rng::experiment_rng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Per-edge two-state Markov chain over the edges of a *footprint* graph:
/// a present edge disappears with probability `p_off`, an absent footprint
/// edge (re)appears with probability `p_on`. Edges outside the footprint
/// never exist.
///
/// The stationary presence probability of a footprint edge is
/// `p_on / (p_on + p_off)`.
pub struct MarkovChurnAdversary {
    footprint: Vec<Edge>,
    n: usize,
    p_on: f64,
    p_off: f64,
    start_from_footprint: bool,
    rng: ChaCha8Rng,
}

impl MarkovChurnAdversary {
    /// Creates the adversary over the edges of `footprint`.
    ///
    /// If `start_from_footprint` is true, round 0 contains all footprint
    /// edges; otherwise round 0 starts from the stationary distribution.
    pub fn new(
        footprint: &Graph,
        p_on: f64,
        p_off: f64,
        start_from_footprint: bool,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&p_on) && (0.0..=1.0).contains(&p_off));
        MarkovChurnAdversary {
            footprint: footprint.edge_vec(),
            n: footprint.num_nodes(),
            p_on,
            p_off,
            start_from_footprint,
            rng: experiment_rng(seed, "markov-churn"),
        }
    }
}

impl Adversary for MarkovChurnAdversary {
    fn initial_graph(&mut self) -> Graph {
        let mut g = Graph::new(self.n);
        let stationary = if self.p_on + self.p_off > 0.0 {
            self.p_on / (self.p_on + self.p_off)
        } else {
            1.0
        };
        for e in &self.footprint {
            if self.start_from_footprint || self.rng.gen_bool(stationary) {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }

    /// Whole-graph compatibility path: composed over the footprint only
    /// (edges outside it never exist), so a phase switch from a foreign
    /// graph resets to the Markov state instead of keeping alien edges.
    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph {
        let delta = self.next_delta(round, prev);
        let mut g = Graph::new(self.n);
        for e in &self.footprint {
            if prev.has_edge(e.u, e.v) {
                g.insert_edge(e.u, e.v);
            }
        }
        delta.apply(&mut g);
        g
    }

    /// Delta-native: one Markov step per footprint edge, emitting only the
    /// edges whose presence actually flipped — no per-round graph build.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        let mut delta = GraphDelta::new();
        for e in &self.footprint {
            let present = prev.has_edge(e.u, e.v);
            let keep = if present {
                !self.rng.gen_bool(self.p_off)
            } else {
                self.rng.gen_bool(self.p_on)
            };
            match (present, keep) {
                (true, false) => {
                    delta.removed.push(*e);
                }
                (false, true) => {
                    delta.inserted.push(*e);
                }
                _ => {}
            }
        }
        delta
    }
}

/// Every round, every footprint edge flips its presence independently with
/// probability `p` — a memoryless "churn rate p" adversary.
pub struct FlipChurnAdversary {
    footprint: Vec<Edge>,
    n: usize,
    p: f64,
    rng: ChaCha8Rng,
}

impl FlipChurnAdversary {
    /// All footprint edges are present in round 0; afterwards each flips
    /// independently with probability `p` per round.
    pub fn new(footprint: &Graph, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FlipChurnAdversary {
            footprint: footprint.edge_vec(),
            n: footprint.num_nodes(),
            p,
            rng: experiment_rng(seed, "flip-churn"),
        }
    }
}

impl Adversary for FlipChurnAdversary {
    fn initial_graph(&mut self) -> Graph {
        Graph::from_edges(self.n, self.footprint.iter().copied())
    }

    /// Delta-native: each flip becomes one inserted or removed edge. The
    /// flipping edges are located by geometric skip-sampling — the gap to
    /// the next flipping edge is `Geometric(p)`-distributed — so a round
    /// costs `O(p·m)` RNG draws (the expected delta size) instead of one
    /// Bernoulli draw per footprint edge. Each edge still flips
    /// independently with probability `p`, exactly as before.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        let mut delta = GraphDelta::new();
        if self.p <= 0.0 {
            return delta;
        }
        let mut flip = |e: &Edge| {
            if prev.has_edge(e.u, e.v) {
                delta.removed.push(*e);
            } else {
                delta.inserted.push(*e);
            }
        };
        if self.p >= 1.0 {
            for e in &self.footprint {
                flip(e);
            }
            return delta;
        }
        let ln_keep = (1.0 - self.p).ln();
        let mut i = 0usize;
        loop {
            let u: f64 = self.rng.gen();
            // Number of non-flipping edges before the next flip; saturating
            // cast and add handle u → 0 (skip to infinity ⇒ no further
            // flips).
            i = i.saturating_add((u.ln() / ln_keep) as usize);
            if i >= self.footprint.len() {
                break;
            }
            flip(&self.footprint[i]);
            i += 1;
        }
        delta
    }
}

/// Every round removes up to `removals` random existing edges and inserts up
/// to `insertions` random new edges between arbitrary node pairs — a
/// fixed-rate topology churn independent of any footprint.
pub struct RateChurnAdversary {
    initial: Graph,
    insertions: usize,
    removals: usize,
    rng: ChaCha8Rng,
}

impl RateChurnAdversary {
    /// Starts from `initial` and applies the fixed per-round change rate.
    pub fn new(initial: Graph, insertions: usize, removals: usize, seed: u64) -> Self {
        RateChurnAdversary {
            initial,
            insertions,
            removals,
            rng: experiment_rng(seed, "rate-churn"),
        }
    }
}

impl Adversary for RateChurnAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.initial.clone()
    }

    /// Delta-native: samples removals from the previous edge set and
    /// insertion candidates against the (virtually) evolving graph, without
    /// cloning or mutating a `Graph`.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        let mut delta = GraphDelta::new();
        let n = prev.num_nodes();
        let edges = prev.edge_vec();
        for e in edges.choose_multiple(&mut self.rng, self.removals.min(edges.len())) {
            delta.removed.push(*e);
        }
        let mut inserted = 0;
        let mut attempts = 0;
        while inserted < self.insertions && attempts < 20 * self.insertions.max(1) {
            let a = self.rng.gen_range(0..n);
            let b = self.rng.gen_range(0..n);
            if a != b {
                let e = Edge::new(NodeId::new(a), NodeId::new(b));
                let present = (prev.has_edge(e.u, e.v) && !delta.removed.contains(&e))
                    || delta.inserted.contains(&e);
                if !present {
                    // Re-picking an edge removed earlier this round: cancel
                    // the removal (net "stays present") instead of emitting
                    // an insert+remove pair, which would net to absent.
                    if let Some(pos) = delta.removed.iter().position(|x| *x == e) {
                        delta.removed.remove(pos);
                    } else {
                        delta.inserted.push(e);
                    }
                    inserted += 1;
                }
            }
            attempts += 1;
        }
        delta
    }
}

/// Keeps a base graph fixed but, every `period` rounds, inserts a burst of
/// `burst_size` random *new* edges which persist for `duration` rounds and
/// are then removed again. This is the "conflict injection" workload used to
/// measure how fast a newly inserted edge's conflict is resolved
/// (Corollary 1.2's headline guarantee).
pub struct BurstAdversary {
    base: Graph,
    period: u64,
    duration: u64,
    burst_size: usize,
    rng: ChaCha8Rng,
    /// Currently injected edges with their expiry round.
    live: Vec<(Edge, u64)>,
    /// All edges ever injected with their injection round (for analysis).
    injected_log: Vec<(Edge, u64)>,
}

impl BurstAdversary {
    /// Creates a burst adversary over `base`.
    pub fn new(base: Graph, period: u64, duration: u64, burst_size: usize, seed: u64) -> Self {
        assert!(period >= 1);
        BurstAdversary {
            base,
            period,
            duration,
            burst_size,
            rng: experiment_rng(seed, "burst"),
            live: Vec::new(),
            injected_log: Vec::new(),
        }
    }

    /// The log of `(edge, round)` injections performed so far.
    pub fn injected_log(&self) -> &[(Edge, u64)] {
        &self.injected_log
    }
}

impl Adversary for BurstAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.base.clone()
    }

    /// Whole-graph compatibility path: composed from the adversary's own
    /// state (base + live injections), independent of `prev` — so a
    /// [`crate::PhaseAdversary`] switching to this adversary resets the
    /// graph to its base instead of continuing from the foreign `prev`.
    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph {
        let _ = self.next_delta(round, prev);
        let mut g = self.base.clone();
        for (e, expiry) in &self.live {
            if *expiry > round {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }

    /// Delta-native: expired injections become removals, a burst round's new
    /// injections become insertions — the base graph is never re-composed.
    fn next_delta(&mut self, round: u64, _prev: &Graph) -> GraphDelta {
        let mut delta = GraphDelta::new();
        for (e, expiry) in &self.live {
            if *expiry <= round {
                delta.removed.push(*e);
            }
        }
        self.live.retain(|(_, expiry)| *expiry > round);
        if round.is_multiple_of(self.period) {
            let n = self.base.num_nodes();
            let mut added = 0;
            let mut attempts = 0;
            while added < self.burst_size && attempts < 50 * self.burst_size.max(1) {
                let a = self.rng.gen_range(0..n);
                let b = self.rng.gen_range(0..n);
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                if a != b
                    && !self.base.has_edge(a, b)
                    && !self.live.iter().any(|(e, _)| *e == Edge::new(a, b))
                {
                    let e = Edge::new(a, b);
                    self.live.push((e, round + self.duration));
                    self.injected_log.push((e, round));
                    if self.duration > 0 {
                        // A just-expired edge re-injected in the same round
                        // stays present: cancel the removal instead of
                        // emitting an insert-then-remove pair.
                        if let Some(pos) = delta.removed.iter().position(|x| *x == e) {
                            delta.removed.remove(pos);
                        } else {
                            delta.inserted.push(e);
                        }
                    }
                    added += 1;
                }
                attempts += 1;
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::generators;

    #[test]
    fn markov_stays_within_footprint() {
        let footprint = generators::cycle(10);
        let mut adv = MarkovChurnAdversary::new(&footprint, 0.3, 0.3, true, 1);
        let mut g = adv.initial_graph();
        assert_eq!(g.num_edges(), 10, "starts from the full footprint");
        for r in 1..30 {
            g = adv.next_graph(r, &g);
            for e in g.edges() {
                assert!(footprint.has_edge(e.u, e.v), "edge outside footprint");
            }
        }
    }

    #[test]
    fn markov_extremes() {
        let footprint = generators::complete(6);
        let mut frozen = MarkovChurnAdversary::new(&footprint, 0.0, 0.0, true, 2);
        let g0 = frozen.initial_graph();
        let g1 = frozen.next_graph(1, &g0);
        assert_eq!(
            g0.edge_vec(),
            g1.edge_vec(),
            "p_on = p_off = 0 freezes the graph"
        );

        let mut always_off = MarkovChurnAdversary::new(&footprint, 0.0, 1.0, true, 3);
        let g0 = always_off.initial_graph();
        let g1 = always_off.next_graph(1, &g0);
        assert_eq!(g1.num_edges(), 0);
    }

    #[test]
    fn flip_churn_zero_probability_is_static() {
        let footprint = generators::grid(4, 4);
        let mut adv = FlipChurnAdversary::new(&footprint, 0.0, 5);
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        assert_eq!(g0.edge_vec(), g1.edge_vec());
    }

    #[test]
    fn flip_churn_changes_some_edges() {
        let footprint = generators::complete(10);
        let mut adv = FlipChurnAdversary::new(&footprint, 0.2, 6);
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        assert!(!g0.edge_symmetric_difference(&g1).is_empty());
    }

    #[test]
    fn rate_churn_bounds_change_per_round() {
        let mut adv = RateChurnAdversary::new(generators::cycle(20), 3, 2, 7);
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        let diff = g0.edge_symmetric_difference(&g1).len();
        assert!(
            diff <= 5,
            "at most insertions + removals changes, got {diff}"
        );
        assert!(diff > 0);
    }

    #[test]
    fn rate_churn_delta_never_nets_out_insertions() {
        // The insertion sampler may re-pick a just-removed edge; that must
        // cancel the removal (net "stays present"), not emit an
        // insert+remove pair, which nets to absent under apply order.
        for seed in 0..20 {
            let mut adv = RateChurnAdversary::new(generators::complete(5), 4, 4, seed);
            let mut g = adv.initial_graph();
            for r in 1..30 {
                let d = adv.next_delta(r, &g);
                for e in &d.inserted {
                    assert!(
                        !d.removed.contains(e),
                        "seed {seed} round {r}: insert+remove pair for {e:?}"
                    );
                }
                d.apply(&mut g);
            }
        }
    }

    #[test]
    fn bursts_inject_and_expire() {
        let base = generators::path(12);
        let mut adv = BurstAdversary::new(base.clone(), 5, 2, 3, 11);
        let mut g = adv.initial_graph();
        assert_eq!(g.num_edges(), base.num_edges());
        // Round 5 is a burst round (multiples of period).
        for r in 1..=5 {
            g = adv.next_graph(r, &g);
        }
        assert!(g.num_edges() > base.num_edges(), "burst edges present");
        assert!(!adv.injected_log().is_empty());
        // Two rounds later the burst has expired (and round 10 not reached).
        for r in 6..=8 {
            g = adv.next_graph(r, &g);
        }
        assert_eq!(g.num_edges(), base.num_edges(), "burst edges expired");
    }
}
