//! Edge-churn adversaries: per-edge Markov on/off dynamics, uniform edge
//! flips over a footprint graph, fixed-rate random insert/remove, and
//! periodic conflict-injection bursts.
//!
//! These model the "highly dynamic" regime of the paper: changes can occur in
//! *every* round, so algorithms can never rely on a quiet recovery period.

use crate::traits::Adversary;
use dynnet_graph::{Edge, Graph, GraphDelta, NodeId};
use dynnet_runtime::rng::experiment_rng;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// The indices `i < len` of the elements flipping under independent
/// `Bernoulli(p)` trials, located by geometric skip-sampling: the gap to the
/// next flipping element is `Geometric(p)`-distributed, so the expected
/// number of RNG draws is the expected number of flips (`p·len`), not `len`.
/// Returned in ascending order.
fn geometric_flips(rng: &mut ChaCha8Rng, p: f64, len: usize) -> Vec<usize> {
    if p <= 0.0 || len == 0 {
        return Vec::new();
    }
    if p >= 1.0 {
        return (0..len).collect();
    }
    let ln_keep = (1.0 - p).ln();
    let mut flips = Vec::new();
    let mut i = 0usize;
    loop {
        let u: f64 = rng.gen();
        // Number of non-flipping elements before the next flip; saturating
        // cast and add handle u → 0 (skip to infinity ⇒ no further flips).
        i = i.saturating_add((u.ln() / ln_keep) as usize);
        if i >= len {
            return flips;
        }
        flips.push(i);
        i += 1;
    }
}

/// Per-edge two-state Markov chain over the edges of a *footprint* graph:
/// a present edge disappears with probability `p_off`, an absent footprint
/// edge (re)appears with probability `p_on`. Edges outside the footprint
/// never exist.
///
/// The stationary presence probability of a footprint edge is
/// `p_on / (p_on + p_off)`.
///
/// Delta-native: the chain state is kept as present/absent edge partitions
/// and each round's transitions are located by geometric skip-sampling over
/// the two partitions, so a round costs `O(|δ|)` expected RNG draws and
/// partition moves — never a scan of all footprint edges.
#[derive(Clone, Debug)]
pub struct MarkovChurnAdversary {
    n: usize,
    p_on: f64,
    p_off: f64,
    start_from_footprint: bool,
    rng: ChaCha8Rng,
    /// Footprint edges currently present (the chain state). Before
    /// `initialized`, holds nothing.
    present: Vec<Edge>,
    /// Footprint edges currently absent. Before `initialized`, holds the
    /// whole footprint.
    absent: Vec<Edge>,
    initialized: bool,
}

impl MarkovChurnAdversary {
    /// Creates the adversary over the edges of `footprint`.
    ///
    /// If `start_from_footprint` is true, round 0 contains all footprint
    /// edges; otherwise round 0 starts from the stationary distribution.
    pub fn new(
        footprint: &Graph,
        p_on: f64,
        p_off: f64,
        start_from_footprint: bool,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&p_on) && (0.0..=1.0).contains(&p_off));
        MarkovChurnAdversary {
            n: footprint.num_nodes(),
            p_on,
            p_off,
            start_from_footprint,
            rng: experiment_rng(seed, "markov-churn"),
            present: Vec::new(),
            absent: footprint.edge_vec(),
            initialized: false,
        }
    }

    /// Composes the current chain state as a graph.
    fn compose(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for e in &self.present {
            g.insert_edge(e.u, e.v);
        }
        g
    }

    /// One chain step: moves the flipping edges between the partitions and
    /// records them in the returned delta. Present edges are stepped first,
    /// then absent edges; both flip sets are drawn against the partitions'
    /// pre-step lengths, so every edge makes exactly one transition per
    /// round (an edge turning off cannot turn back on in the same round).
    fn step(&mut self) -> GraphDelta {
        let mut delta = GraphDelta::new();
        let off_flips = geometric_flips(&mut self.rng, self.p_off, self.present.len());
        let on_flips = geometric_flips(&mut self.rng, self.p_on, self.absent.len());
        // Descending order keeps the remaining sampled indices valid across
        // `swap_remove`s (any swapped-in element comes from a higher index).
        for &i in off_flips.iter().rev() {
            let e = self.present.swap_remove(i);
            delta.removed.push(e);
            self.absent.push(e);
        }
        // `on_flips` indices all lie below the pre-step length, so the edges
        // just appended by the off-pass are never re-flipped this round.
        for &i in on_flips.iter().rev() {
            let e = self.absent.swap_remove(i);
            delta.inserted.push(e);
            self.present.push(e);
        }
        delta
    }
}

impl Adversary for MarkovChurnAdversary {
    fn initial_graph(&mut self) -> Graph {
        let stationary = if self.p_on + self.p_off > 0.0 {
            self.p_on / (self.p_on + self.p_off)
        } else {
            1.0
        };
        let all: Vec<Edge> = self
            .present
            .drain(..)
            .chain(self.absent.drain(..))
            .collect();
        for e in all {
            if self.start_from_footprint || self.rng.gen_bool(stationary) {
                self.present.push(e);
            } else {
                self.absent.push(e);
            }
        }
        self.initialized = true;
        self.compose()
    }

    /// Whole-graph compatibility path: advances the chain exactly as
    /// [`Adversary::next_delta`] would (same RNG draws), then composes the
    /// graph from the chain state — so a phase switch from a foreign graph
    /// resets to the Markov state instead of keeping alien edges.
    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph {
        let _ = self.next_delta(round, prev);
        self.compose()
    }

    /// Delta-native: geometric skip-sampling over the present/absent
    /// partitions emits only the edges whose presence actually flipped —
    /// `O(|δ|)` expected work, no per-footprint-edge draws, no graph build.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        if !self.initialized {
            // First call without `initial_graph` (e.g. a mid-run phase
            // switch): adopt the presence state `prev` implies, once.
            let all: Vec<Edge> = self
                .present
                .drain(..)
                .chain(self.absent.drain(..))
                .collect();
            for e in all {
                if prev.has_edge(e.u, e.v) {
                    self.present.push(e);
                } else {
                    self.absent.push(e);
                }
            }
            self.initialized = true;
        }
        self.step()
    }
}

/// Every round, every footprint edge flips its presence independently with
/// probability `p` — a memoryless "churn rate p" adversary.
#[derive(Clone, Debug)]
pub struct FlipChurnAdversary {
    footprint: Vec<Edge>,
    n: usize,
    p: f64,
    rng: ChaCha8Rng,
}

impl FlipChurnAdversary {
    /// All footprint edges are present in round 0; afterwards each flips
    /// independently with probability `p` per round.
    pub fn new(footprint: &Graph, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        FlipChurnAdversary {
            footprint: footprint.edge_vec(),
            n: footprint.num_nodes(),
            p,
            rng: experiment_rng(seed, "flip-churn"),
        }
    }
}

impl Adversary for FlipChurnAdversary {
    fn initial_graph(&mut self) -> Graph {
        Graph::from_edges(self.n, self.footprint.iter().copied())
    }

    /// Delta-native: each flip becomes one inserted or removed edge. The
    /// flipping edges are located by `geometric_flips` skip-sampling, so a
    /// round costs `O(p·m)` RNG draws (the expected delta size) instead of
    /// one Bernoulli draw per footprint edge. Each edge still flips
    /// independently with probability `p`, exactly as before.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        let mut delta = GraphDelta::new();
        for i in geometric_flips(&mut self.rng, self.p, self.footprint.len()) {
            let e = self.footprint[i];
            if prev.has_edge(e.u, e.v) {
                delta.removed.push(e);
            } else {
                delta.inserted.push(e);
            }
        }
        delta
    }
}

/// Every round removes up to `removals` random existing edges and inserts up
/// to `insertions` random new edges between arbitrary node pairs — a
/// fixed-rate topology churn independent of any footprint.
///
/// Delta-native: the evolving edge set is mirrored as an edge vector plus a
/// position map, so removal sampling and insertion membership checks are
/// `O(1)` per draw — a round costs `O(insertions + removals)`, never a
/// `Graph::edge_vec` materialization of all `m` edges.
#[derive(Clone, Debug)]
pub struct RateChurnAdversary {
    initial: Graph,
    insertions: usize,
    removals: usize,
    rng: ChaCha8Rng,
    /// Mirror of the evolving edge set (insertion order irrelevant, sampled
    /// uniformly by index).
    edges: Vec<Edge>,
    /// Position of each mirrored edge in `edges`.
    pos: HashMap<Edge, usize>,
    initialized: bool,
}

impl RateChurnAdversary {
    /// Starts from `initial` and applies the fixed per-round change rate.
    pub fn new(initial: Graph, insertions: usize, removals: usize, seed: u64) -> Self {
        RateChurnAdversary {
            initial,
            insertions,
            removals,
            rng: experiment_rng(seed, "rate-churn"),
            edges: Vec::new(),
            pos: HashMap::new(),
            initialized: false,
        }
    }

    /// (Re)builds the mirror from a graph — once at startup, or after a
    /// phase switch handed us a graph we did not produce.
    fn sync_mirror(&mut self, g: &Graph) {
        self.edges = g.edge_vec();
        self.pos = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i))
            .collect();
        self.initialized = true;
    }

    /// Removes the edge at mirror index `i` in `O(1)`.
    fn mirror_remove_at(&mut self, i: usize) -> Edge {
        let e = self.edges.swap_remove(i);
        self.pos.remove(&e);
        if i < self.edges.len() {
            self.pos.insert(self.edges[i], i);
        }
        e
    }

    /// Appends an edge to the mirror.
    fn mirror_insert(&mut self, e: Edge) {
        self.pos.insert(e, self.edges.len());
        self.edges.push(e);
    }
}

impl Adversary for RateChurnAdversary {
    fn initial_graph(&mut self) -> Graph {
        let g = self.initial.clone();
        self.sync_mirror(&g);
        g
    }

    /// Delta-native: samples removals by index from the mirrored edge set
    /// and insertion candidates against the position map, without cloning,
    /// scanning, or mutating a `Graph`.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        if !self.initialized || self.edges.len() != prev.num_edges() {
            // First call without `initial_graph`, or a phase switch handed
            // us a foreign graph: re-adopt its edge set (one O(m) scan).
            // The check is an edge-count heuristic — a foreign graph with
            // exactly as many edges as the mirror goes undetected (no such
            // caller exists in-repo; the Scenario pipeline always feeds back
            // the graph built from this adversary's own deltas).
            self.sync_mirror(prev);
        }
        let mut delta = GraphDelta::new();
        let n = prev.num_nodes();
        for _ in 0..self.removals.min(self.edges.len()) {
            let i = self.rng.gen_range(0..self.edges.len());
            delta.removed.push(self.mirror_remove_at(i));
        }
        let mut inserted = 0;
        let mut attempts = 0;
        while inserted < self.insertions && attempts < 20 * self.insertions.max(1) {
            let a = self.rng.gen_range(0..n);
            let b = self.rng.gen_range(0..n);
            if a != b {
                let e = Edge::new(NodeId::new(a), NodeId::new(b));
                if !self.pos.contains_key(&e) {
                    // Re-picking an edge removed earlier this round: cancel
                    // the removal (net "stays present") instead of emitting
                    // an insert+remove pair, which would net to absent.
                    if let Some(p) = delta.removed.iter().position(|x| *x == e) {
                        delta.removed.remove(p);
                    } else {
                        delta.inserted.push(e);
                    }
                    self.mirror_insert(e);
                    inserted += 1;
                }
            }
            attempts += 1;
        }
        delta
    }
}

/// Keeps a base graph fixed but, every `period` rounds, inserts a burst of
/// `burst_size` random *new* edges which persist for `duration` rounds and
/// are then removed again. This is the "conflict injection" workload used to
/// measure how fast a newly inserted edge's conflict is resolved
/// (Corollary 1.2's headline guarantee).
#[derive(Clone, Debug)]
pub struct BurstAdversary {
    base: Graph,
    period: u64,
    duration: u64,
    burst_size: usize,
    rng: ChaCha8Rng,
    /// Currently injected edges with their expiry round.
    live: Vec<(Edge, u64)>,
    /// All edges ever injected with their injection round (for analysis).
    injected_log: Vec<(Edge, u64)>,
}

impl BurstAdversary {
    /// Creates a burst adversary over `base`.
    pub fn new(base: Graph, period: u64, duration: u64, burst_size: usize, seed: u64) -> Self {
        assert!(period >= 1);
        BurstAdversary {
            base,
            period,
            duration,
            burst_size,
            rng: experiment_rng(seed, "burst"),
            live: Vec::new(),
            injected_log: Vec::new(),
        }
    }

    /// The log of `(edge, round)` injections performed so far.
    pub fn injected_log(&self) -> &[(Edge, u64)] {
        &self.injected_log
    }
}

impl Adversary for BurstAdversary {
    fn initial_graph(&mut self) -> Graph {
        self.base.clone()
    }

    /// Whole-graph compatibility path: composed from the adversary's own
    /// state (base + live injections), independent of `prev` — so a
    /// [`crate::PhaseAdversary`] switching to this adversary resets the
    /// graph to its base instead of continuing from the foreign `prev`.
    fn next_graph(&mut self, round: u64, prev: &Graph) -> Graph {
        let _ = self.next_delta(round, prev);
        let mut g = self.base.clone();
        for (e, expiry) in &self.live {
            if *expiry > round {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }

    /// Delta-native: expired injections become removals, a burst round's new
    /// injections become insertions — the base graph is never re-composed.
    fn next_delta(&mut self, round: u64, _prev: &Graph) -> GraphDelta {
        let mut delta = GraphDelta::new();
        for (e, expiry) in &self.live {
            if *expiry <= round {
                delta.removed.push(*e);
            }
        }
        self.live.retain(|(_, expiry)| *expiry > round);
        if round.is_multiple_of(self.period) {
            let n = self.base.num_nodes();
            let mut added = 0;
            let mut attempts = 0;
            while added < self.burst_size && attempts < 50 * self.burst_size.max(1) {
                let a = self.rng.gen_range(0..n);
                let b = self.rng.gen_range(0..n);
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                if a != b
                    && !self.base.has_edge(a, b)
                    && !self.live.iter().any(|(e, _)| *e == Edge::new(a, b))
                {
                    let e = Edge::new(a, b);
                    self.live.push((e, round + self.duration));
                    self.injected_log.push((e, round));
                    if self.duration > 0 {
                        // A just-expired edge re-injected in the same round
                        // stays present: cancel the removal instead of
                        // emitting an insert-then-remove pair.
                        if let Some(pos) = delta.removed.iter().position(|x| *x == e) {
                            delta.removed.remove(pos);
                        } else {
                            delta.inserted.push(e);
                        }
                    }
                    added += 1;
                }
                attempts += 1;
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::generators;

    #[test]
    fn markov_stays_within_footprint() {
        let footprint = generators::cycle(10);
        let mut adv = MarkovChurnAdversary::new(&footprint, 0.3, 0.3, true, 1);
        let mut g = adv.initial_graph();
        assert_eq!(g.num_edges(), 10, "starts from the full footprint");
        for r in 1..30 {
            g = adv.next_graph(r, &g);
            for e in g.edges() {
                assert!(footprint.has_edge(e.u, e.v), "edge outside footprint");
            }
        }
    }

    #[test]
    fn markov_extremes() {
        let footprint = generators::complete(6);
        let mut frozen = MarkovChurnAdversary::new(&footprint, 0.0, 0.0, true, 2);
        let g0 = frozen.initial_graph();
        let g1 = frozen.next_graph(1, &g0);
        assert_eq!(
            g0.edge_vec(),
            g1.edge_vec(),
            "p_on = p_off = 0 freezes the graph"
        );

        let mut always_off = MarkovChurnAdversary::new(&footprint, 0.0, 1.0, true, 3);
        let g0 = always_off.initial_graph();
        let g1 = always_off.next_graph(1, &g0);
        assert_eq!(g1.num_edges(), 0);
    }

    #[test]
    fn flip_churn_zero_probability_is_static() {
        let footprint = generators::grid(4, 4);
        let mut adv = FlipChurnAdversary::new(&footprint, 0.0, 5);
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        assert_eq!(g0.edge_vec(), g1.edge_vec());
    }

    #[test]
    fn flip_churn_changes_some_edges() {
        let footprint = generators::complete(10);
        let mut adv = FlipChurnAdversary::new(&footprint, 0.2, 6);
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        assert!(!g0.edge_symmetric_difference(&g1).is_empty());
    }

    #[test]
    fn rate_churn_bounds_change_per_round() {
        let mut adv = RateChurnAdversary::new(generators::cycle(20), 3, 2, 7);
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        let diff = g0.edge_symmetric_difference(&g1).len();
        assert!(
            diff <= 5,
            "at most insertions + removals changes, got {diff}"
        );
        assert!(diff > 0);
    }

    #[test]
    fn rate_churn_delta_never_nets_out_insertions() {
        // The insertion sampler may re-pick a just-removed edge; that must
        // cancel the removal (net "stays present"), not emit an
        // insert+remove pair, which nets to absent under apply order.
        for seed in 0..20 {
            let mut adv = RateChurnAdversary::new(generators::complete(5), 4, 4, seed);
            let mut g = adv.initial_graph();
            for r in 1..30 {
                let d = adv.next_delta(r, &g);
                for e in &d.inserted {
                    assert!(
                        !d.removed.contains(e),
                        "seed {seed} round {r}: insert+remove pair for {e:?}"
                    );
                }
                d.apply(&mut g);
            }
        }
    }

    #[test]
    fn markov_delta_and_graph_paths_agree() {
        // The whole-graph compatibility path must consume the same RNG
        // stream and produce the same evolution as the delta path.
        let footprint = generators::erdos_renyi_avg_degree(
            60,
            6.0,
            &mut dynnet_runtime::rng::experiment_rng(9, "mdg"),
        );
        let mut by_graph = MarkovChurnAdversary::new(&footprint, 0.2, 0.3, false, 17);
        let mut by_delta = by_graph.clone();
        let mut g1 = by_graph.initial_graph();
        let mut g2 = by_delta.initial_graph();
        assert_eq!(g1.edge_vec(), g2.edge_vec());
        for r in 1..40 {
            g1 = by_graph.next_graph(r, &g1);
            let d = by_delta.next_delta(r, &g2);
            d.apply(&mut g2);
            assert_eq!(g1.edge_vec(), g2.edge_vec(), "round {r}");
        }
    }

    #[test]
    fn markov_partitions_track_presence() {
        // Every footprint edge is in exactly one partition, and the deltas
        // are tight: removed edges were present, inserted edges absent.
        let footprint = generators::complete(12);
        let m = footprint.num_edges();
        let mut adv = MarkovChurnAdversary::new(&footprint, 0.4, 0.4, false, 5);
        let mut g = adv.initial_graph();
        for r in 1..50 {
            let d = adv.next_delta(r, &g);
            for e in &d.removed {
                assert!(g.has_edge(e.u, e.v), "round {r}: removed absent edge");
            }
            for e in &d.inserted {
                assert!(!g.has_edge(e.u, e.v), "round {r}: inserted present edge");
            }
            d.apply(&mut g);
            assert_eq!(adv.present.len(), g.num_edges());
            assert_eq!(adv.present.len() + adv.absent.len(), m);
        }
    }

    #[test]
    fn markov_initializes_from_prev_without_initial_graph() {
        // A phase switch can call next_delta before initial_graph; the chain
        // must adopt the presence state of the handed graph.
        let footprint = generators::cycle(8);
        let mut adv = MarkovChurnAdversary::new(&footprint, 0.0, 0.0, true, 3);
        let mut partial = Graph::new(8);
        partial.insert_edge(dynnet_graph::NodeId::new(0), dynnet_graph::NodeId::new(1));
        let d = adv.next_delta(1, &partial);
        assert!(d.is_empty(), "p_on = p_off = 0 freezes the adopted state");
        assert_eq!(adv.present.len(), 1);
        assert_eq!(adv.absent.len(), 7);
    }

    #[test]
    fn rate_churn_mirror_stays_in_sync() {
        let mut adv = RateChurnAdversary::new(generators::complete(9), 3, 4, 13);
        let mut g = adv.initial_graph();
        for r in 1..60 {
            let d = adv.next_delta(r, &g);
            for e in &d.removed {
                assert!(g.has_edge(e.u, e.v), "round {r}: removed absent edge");
            }
            for e in &d.inserted {
                assert!(!g.has_edge(e.u, e.v), "round {r}: inserted present edge");
            }
            d.apply(&mut g);
            assert_eq!(adv.edges.len(), g.num_edges(), "round {r}");
            for (i, e) in adv.edges.iter().enumerate() {
                assert!(g.has_edge(e.u, e.v));
                assert_eq!(adv.pos[e], i);
            }
        }
    }

    #[test]
    fn geometric_flips_extremes_and_coverage() {
        let mut rng = experiment_rng(1, "gf");
        assert!(geometric_flips(&mut rng, 0.0, 100).is_empty());
        assert_eq!(
            geometric_flips(&mut rng, 1.0, 4),
            vec![0, 1, 2, 3],
            "p = 1 flips everything without drawing"
        );
        let flips = geometric_flips(&mut rng, 0.5, 1000);
        assert!(flips.len() > 350 && flips.len() < 650, "{}", flips.len());
        assert!(flips.windows(2).all(|w| w[0] < w[1]), "ascending, distinct");
    }

    #[test]
    fn bursts_inject_and_expire() {
        let base = generators::path(12);
        let mut adv = BurstAdversary::new(base.clone(), 5, 2, 3, 11);
        let mut g = adv.initial_graph();
        assert_eq!(g.num_edges(), base.num_edges());
        // Round 5 is a burst round (multiples of period).
        for r in 1..=5 {
            g = adv.next_graph(r, &g);
        }
        assert!(g.num_edges() > base.num_edges(), "burst edges present");
        assert!(!adv.injected_log().is_empty());
        // Two rounds later the burst has expired (and round 10 not reached).
        for r in 6..=8 {
            g = adv.next_graph(r, &g);
        }
        assert_eq!(g.num_edges(), base.num_edges(), "burst edges expired");
    }
}
