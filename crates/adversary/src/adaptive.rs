//! Adaptive, output-aware adversaries.
//!
//! The paper distinguishes adversary strengths: the coloring analysis holds
//! even against an *adaptive offline* adversary (which knows all random bits
//! in advance), whereas the DMis analysis requires a *2-oblivious* adversary
//! (Lemma 5.2's remark). We cannot implement a genuinely offline adversary
//! against fresh per-round randomness, but we can implement the strongest
//! adversary realizable in the simulation loop: one that inspects the outputs
//! published at the end of the previous round and rewires the graph to create
//! as much trouble as possible — inserting edges between nodes whose current
//! outputs conflict (same color / both in the MIS) and cutting edges that the
//! algorithm appears to rely on.

use crate::traits::OutputAdversary;
use dynnet_graph::{Edge, Graph, GraphDelta, NodeId};
use dynnet_runtime::rng::experiment_rng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// An adversary that inserts edges between pairs of nodes whose *published*
/// outputs conflict according to a user-supplied predicate, and additionally
/// applies background churn on a footprint graph.
pub struct ConflictSeekingAdversary<O, C> {
    footprint: Graph,
    conflict: C,
    /// Maximum number of conflict edges inserted per round.
    max_insertions: usize,
    /// Per-round flip probability of footprint edges (background churn).
    background_churn: f64,
    /// Rounds after which an injected conflict edge is removed again (so the
    /// graph does not converge to a clique of conflicting nodes).
    injected_lifetime: u64,
    injected: Vec<(Edge, u64)>,
    rng: ChaCha8Rng,
    _marker: std::marker::PhantomData<fn(&O)>,
}

/// Cloneable whenever the conflict predicate is (`O` itself need not be):
/// sweep cells can stamp copies of a configured template adversary.
impl<O, C: Clone> Clone for ConflictSeekingAdversary<O, C> {
    fn clone(&self) -> Self {
        ConflictSeekingAdversary {
            footprint: self.footprint.clone(),
            conflict: self.conflict.clone(),
            max_insertions: self.max_insertions,
            background_churn: self.background_churn,
            injected_lifetime: self.injected_lifetime,
            injected: self.injected.clone(),
            rng: self.rng.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<O, C> ConflictSeekingAdversary<O, C>
where
    C: Fn(&O, &O) -> bool + Send,
{
    /// Creates a conflict-seeking adversary.
    pub fn new(
        footprint: Graph,
        conflict: C,
        max_insertions: usize,
        background_churn: f64,
        injected_lifetime: u64,
        seed: u64,
    ) -> Self {
        ConflictSeekingAdversary {
            footprint,
            conflict,
            max_insertions,
            background_churn,
            injected_lifetime: injected_lifetime.max(1),
            injected: Vec::new(),
            rng: experiment_rng(seed, "conflict-seeking"),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of conflict edges injected so far (for analysis).
    pub fn total_injected(&self) -> usize {
        self.injected.len()
    }
}

impl<O, C> OutputAdversary<O> for ConflictSeekingAdversary<O, C>
where
    O: Sync,
    C: Fn(&O, &O) -> bool + Send,
{
    fn initial_graph(&mut self) -> Graph {
        self.footprint.clone()
    }

    /// Delta-native: background churn, expiries, and conflict injections are
    /// emitted as edge changes against a *virtually* evolving graph (presence
    /// = `prev` minus removals plus insertions so far) — the previous graph
    /// is never cloned or mutated.
    fn next_delta(&mut self, round: u64, prev: &Graph, outputs: &[Option<O>]) -> GraphDelta {
        let n = self.footprint.num_nodes();
        let mut delta = GraphDelta::new();
        let mut removed_set: HashSet<Edge> = HashSet::new();
        let mut inserted_set: HashSet<Edge> = HashSet::new();

        // Background churn on footprint edges.
        for e in self.footprint.edge_vec() {
            if self.background_churn > 0.0 && self.rng.gen_bool(self.background_churn) {
                if prev.has_edge(e.u, e.v) {
                    delta.removed.push(e);
                    removed_set.insert(e);
                } else {
                    delta.inserted.push(e);
                    inserted_set.insert(e);
                }
            }
        }

        // Remove expired injected edges.
        for (e, inserted_at) in &self.injected {
            if round.saturating_sub(*inserted_at) >= self.injected_lifetime
                && removed_set.insert(*e)
            {
                delta.removed.push(*e);
            }
        }
        self.injected
            .retain(|(_, inserted_at)| round.saturating_sub(*inserted_at) < self.injected_lifetime);

        // Insert edges between conflicting pairs. Scan a random sample of
        // node pairs to keep the adversary cheap on large graphs.
        let mut candidates: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        candidates.shuffle(&mut self.rng);
        let sample = &candidates[..candidates.len().min(200)];
        let mut inserted = 0;
        'outer: for (i, &u) in sample.iter().enumerate() {
            for &v in &sample[i + 1..] {
                if inserted >= self.max_insertions {
                    break 'outer;
                }
                let e = Edge::new(u, v);
                // Virtual presence mirrors the sequential old path (churn,
                // then expiry, then injections): a removal recorded this
                // round wins over an earlier churn insertion.
                let present =
                    !removed_set.contains(&e) && (prev.has_edge(u, v) || inserted_set.contains(&e));
                if present {
                    continue;
                }
                if let (Some(ou), Some(ov)) = (&outputs[u.index()], &outputs[v.index()]) {
                    if (self.conflict)(ou, ov) {
                        if removed_set.remove(&e) {
                            // Removed earlier in this same round (churn or
                            // expiry) and now re-injected: cancel the
                            // removal. If that removal targeted an edge that
                            // was already absent (expiry of an injection
                            // churned off in an earlier round), cancelling
                            // is not enough — a real insertion is needed.
                            delta.removed.retain(|x| *x != e);
                            if !prev.has_edge(u, v) && !inserted_set.contains(&e) {
                                delta.inserted.push(e);
                                inserted_set.insert(e);
                            }
                        } else {
                            delta.inserted.push(e);
                            inserted_set.insert(e);
                        }
                        self.injected.push((e, round));
                        inserted += 1;
                    }
                }
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::generators;

    #[test]
    fn inserts_edges_between_equal_outputs() {
        let footprint = generators::path(10);
        let mut adv: ConflictSeekingAdversary<u32, _> =
            ConflictSeekingAdversary::new(footprint, |a: &u32, b: &u32| a == b, 5, 0.0, 3, 1);
        let g0 = OutputAdversary::<u32>::initial_graph(&mut adv);
        // All nodes output the same value -> plenty of conflicts to attack.
        let outputs: Vec<Option<u32>> = vec![Some(7); 10];
        let g1 = adv.next_graph(1, &g0, &outputs);
        assert!(g1.num_edges() > g0.num_edges());
        assert!(adv.total_injected() > 0);
    }

    #[test]
    fn no_conflicts_means_no_insertions() {
        let footprint = generators::path(6);
        let mut adv: ConflictSeekingAdversary<u32, _> =
            ConflictSeekingAdversary::new(footprint, |a: &u32, b: &u32| a == b, 5, 0.0, 3, 2);
        let g0 = OutputAdversary::<u32>::initial_graph(&mut adv);
        let outputs: Vec<Option<u32>> = (0..6).map(|i| Some(i as u32)).collect();
        let g1 = adv.next_graph(1, &g0, &outputs);
        assert_eq!(g1.num_edges(), g0.num_edges());
    }

    #[test]
    fn all_conflicting_pairs_rewired_on_conflict_rounds() {
        // Alternate all-conflicting and all-clean output rounds. On a clean
        // round, churned-off injected edges stay absent; when such an edge's
        // expiry then fires on a conflicting round, the re-injection must
        // emit a *real* insertion (not merely cancel the expiry removal of
        // an already-absent edge). With every pair conflicting and an
        // insertion budget covering all pairs, the graph must be complete
        // after every conflicting round.
        for seed in 0..10u64 {
            let footprint = generators::complete(5);
            let mut adv: ConflictSeekingAdversary<u32, _> = ConflictSeekingAdversary::new(
                footprint,
                |a: &u32, b: &u32| a == b,
                10,
                0.5,
                2,
                seed,
            );
            let conflicting: Vec<Option<u32>> = vec![Some(1); 5];
            let clean: Vec<Option<u32>> = (0..5).map(|i| Some(i as u32)).collect();
            let mut g = OutputAdversary::<u32>::initial_graph(&mut adv);
            for r in 1..60u64 {
                let outputs = if r % 2 == 0 { &conflicting } else { &clean };
                let d = adv.next_delta(r, &g, outputs);
                d.apply(&mut g);
                if r % 2 == 0 {
                    assert_eq!(
                        g.num_edges(),
                        10,
                        "seed {seed} round {r}: every conflicting pair must be wired"
                    );
                }
            }
        }
    }

    #[test]
    fn injected_edges_expire() {
        let footprint = Graph::new(4);
        let mut adv: ConflictSeekingAdversary<u32, _> =
            ConflictSeekingAdversary::new(footprint, |a: &u32, b: &u32| a == b, 10, 0.0, 2, 3);
        let g0 = OutputAdversary::<u32>::initial_graph(&mut adv);
        let conflicting: Vec<Option<u32>> = vec![Some(1); 4];
        let clean: Vec<Option<u32>> = (0..4).map(|i| Some(i as u32)).collect();
        let g1 = adv.next_graph(1, &g0, &conflicting);
        assert!(g1.num_edges() > 0);
        let g2 = adv.next_graph(2, &g1, &clean);
        let g3 = adv.next_graph(3, &g2, &clean);
        assert_eq!(
            g3.num_edges(),
            0,
            "injected edges removed after their lifetime"
        );
    }
}
