//! Mobility adversary: a random-waypoint wireless ad-hoc network.
//!
//! Nodes live in the unit square and move toward randomly chosen waypoints;
//! in every round the communication graph is the unit-disk graph of the
//! current positions. This models the mobile wireless networks that motivate
//! the paper ("communication links might appear and disappear constantly"),
//! and produces realistic *locally correlated* topology changes: a moving
//! node changes many of its incident edges while far-away regions stay
//! static.

use crate::traits::Adversary;
use dynnet_graph::{generators, Graph, GraphDelta, NodeId};
use dynnet_runtime::rng::experiment_rng;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Random-waypoint mobility in the unit square with unit-disk connectivity.
#[derive(Clone, Debug)]
pub struct MobilityAdversary {
    positions: Vec<(f64, f64)>,
    waypoints: Vec<(f64, f64)>,
    /// Per-round movement speed of each node.
    speeds: Vec<f64>,
    radius: f64,
    rng: ChaCha8Rng,
}

/// Configuration for [`MobilityAdversary`].
#[derive(Clone, Copy, Debug)]
pub struct MobilityConfig {
    /// Number of nodes.
    pub n: usize,
    /// Unit-disk communication radius.
    pub radius: f64,
    /// Minimum per-round speed.
    pub min_speed: f64,
    /// Maximum per-round speed.
    pub max_speed: f64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            n: 100,
            radius: 0.15,
            min_speed: 0.005,
            max_speed: 0.03,
        }
    }
}

impl MobilityAdversary {
    /// Creates a mobility adversary with the given configuration and seed.
    pub fn new(config: MobilityConfig, seed: u64) -> Self {
        let mut rng = experiment_rng(seed, "mobility");
        let positions = generators::random_positions(config.n, &mut rng);
        let waypoints = generators::random_positions(config.n, &mut rng);
        let speeds = (0..config.n)
            .map(|_| rng.gen_range(config.min_speed..=config.max_speed))
            .collect();
        MobilityAdversary {
            positions,
            waypoints,
            speeds,
            radius: config.radius,
            rng,
        }
    }

    /// The current node positions (for visualisation / analysis).
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    fn advance(&mut self) {
        for i in 0..self.positions.len() {
            let (px, py) = self.positions[i];
            let (wx, wy) = self.waypoints[i];
            let dx = wx - px;
            let dy = wy - py;
            let dist = (dx * dx + dy * dy).sqrt();
            let speed = self.speeds[i];
            if dist <= speed {
                // Reached the waypoint: snap to it and pick a fresh one.
                self.positions[i] = (wx, wy);
                self.waypoints[i] = (self.rng.gen(), self.rng.gen());
            } else {
                self.positions[i] = (px + dx / dist * speed, py + dy / dist * speed);
            }
        }
    }
}

impl Adversary for MobilityAdversary {
    fn initial_graph(&mut self) -> Graph {
        generators::unit_disk(&self.positions, self.radius)
    }

    /// Whole-graph compatibility path: the unit-disk graph of the advanced
    /// positions, independent of `prev` (phase switches reset to the
    /// geometry instead of continuing from a foreign graph).
    fn next_graph(&mut self, _round: u64, _prev: &Graph) -> Graph {
        self.advance();
        generators::unit_disk(&self.positions, self.radius)
    }

    /// Delta-native round step: advances the waypoint dynamics, then derives
    /// the edge changes directly from the geometry instead of rebuilding the
    /// whole unit-disk graph. New edges are found with a uniform grid over
    /// the unit square (`O(n · k)` for `k` nodes per disk, instead of the
    /// `O(n²)` all-pairs scan of `generators::unit_disk`); removals are
    /// found by re-checking the distance of the previous round's edges.
    fn next_delta(&mut self, _round: u64, prev: &Graph) -> GraphDelta {
        self.advance();
        let n = self.positions.len();
        let r2 = self.radius * self.radius;
        let within = |i: usize, j: usize| {
            let dx = self.positions[i].0 - self.positions[j].0;
            let dy = self.positions[i].1 - self.positions[j].1;
            dx * dx + dy * dy <= r2
        };
        let mut delta = GraphDelta::new();

        // Removed: previous edges whose endpoints drifted out of range.
        for e in prev.edges() {
            if !within(e.u.index(), e.v.index()) {
                delta.removed.push(e);
            }
        }

        // Inserted: pairs now within range that were not adjacent before.
        // Grid cells are at least `radius` wide (but never more than ~√n
        // cells per axis), so scanning `reach` cells in each direction
        // covers the communication disk.
        let cell = self.radius.max(1.0 / (n as f64).sqrt()).min(1.0);
        let cols = ((1.0 / cell).ceil() as usize).max(1);
        // The actual cell width is 1/cols (≤ `cell` after the ceil), so the
        // scan reach must be measured in those units or in-range pairs more
        // than `reach` cells apart would be missed.
        let reach = (self.radius * cols as f64).ceil() as usize;
        let cell_of = |(x, y): (f64, f64)| {
            let cx = ((x * cols as f64) as usize).min(cols - 1);
            let cy = ((y * cols as f64) as usize).min(cols - 1);
            (cx, cy)
        };
        let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cols * cols];
        for (i, &p) in self.positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            grid[cy * cols + cx].push(i as u32);
        }
        for (i, &p) in self.positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for gy in cy.saturating_sub(reach)..=(cy + reach).min(cols - 1) {
                for gx in cx.saturating_sub(reach)..=(cx + reach).min(cols - 1) {
                    for &j in &grid[gy * cols + gx] {
                        let j = j as usize;
                        if j > i && within(i, j) && !prev.has_edge(NodeId::new(i), NodeId::new(j)) {
                            delta.inserted.push(dynnet_graph::Edge::of(i, j));
                        }
                    }
                }
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_stay_in_unit_square() {
        let mut adv = MobilityAdversary::new(
            MobilityConfig {
                n: 30,
                ..Default::default()
            },
            9,
        );
        let mut g = adv.initial_graph();
        for r in 1..50 {
            g = adv.next_graph(r, &g);
            for &(x, y) in adv.positions() {
                assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
            }
        }
        assert_eq!(g.num_nodes(), 30);
    }

    #[test]
    fn graphs_change_over_time_but_gradually() {
        let mut adv = MobilityAdversary::new(
            MobilityConfig {
                n: 60,
                radius: 0.25,
                min_speed: 0.01,
                max_speed: 0.02,
            },
            3,
        );
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        let mut g_far = g1.clone();
        for r in 2..60 {
            g_far = adv.next_graph(r, &g_far);
        }
        let near_diff = g0.edge_symmetric_difference(&g1).len();
        let far_diff = g0.edge_symmetric_difference(&g_far).len();
        assert!(
            near_diff < far_diff,
            "movement accumulates: {near_diff} vs {far_diff}"
        );
    }

    #[test]
    fn delta_matches_unit_disk_at_non_integer_grid_radius() {
        // radius 0.3 ⇒ cols = 4 with actual cell width 0.25 < radius: pairs
        // two grid cells apart can still be in range, so the scan reach must
        // be measured in actual cell widths (regression test).
        for radius in [0.3, 0.45, 0.7] {
            let mut adv = MobilityAdversary::new(
                MobilityConfig {
                    n: 80,
                    radius,
                    min_speed: 0.02,
                    max_speed: 0.08,
                },
                17,
            );
            let mut g = adv.initial_graph();
            for r in 1..20 {
                let delta = adv.next_delta(r, &g);
                delta.apply(&mut g);
                let expected = generators::unit_disk(adv.positions(), radius);
                assert_eq!(
                    g.edge_vec(),
                    expected.edge_vec(),
                    "radius {radius}, round {r}"
                );
            }
        }
    }

    #[test]
    fn zero_speed_is_static() {
        let mut adv = MobilityAdversary::new(
            MobilityConfig {
                n: 20,
                radius: 0.3,
                min_speed: 0.0,
                max_speed: 0.0,
            },
            5,
        );
        let g0 = adv.initial_graph();
        let g1 = adv.next_graph(1, &g0);
        assert_eq!(g0.edge_vec(), g1.edge_vec());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = MobilityAdversary::new(MobilityConfig::default(), 42);
        let mut b = MobilityAdversary::new(MobilityConfig::default(), 42);
        let ga = a.initial_graph();
        let gb = b.initial_graph();
        assert_eq!(ga.edge_vec(), gb.edge_vec());
        assert_eq!(
            a.next_graph(1, &ga).edge_vec(),
            b.next_graph(1, &gb).edge_vec()
        );
    }
}
