//! Coupling the simulator with an adversary.
//!
//! [`run`] executes the full round loop of the paper — adversary changes the
//! graph, nodes compute, outputs are published — for a fixed number of
//! rounds, recording per round the communication graph and the outputs. The
//! adversary sees the previous round's outputs only (never the current
//! round's randomness).

use crate::traits::OutputAdversary;
use dynnet_graph::{DynamicGraphTrace, Graph};
use dynnet_runtime::{AlgorithmFactory, NodeAlgorithm, RoundReport, Simulator, WakeupSchedule};

/// The full record of one adversarial execution.
pub struct ExecutionRecord<O> {
    /// The dynamic graph sequence that the adversary produced.
    pub trace: DynamicGraphTrace,
    /// Per-round reports (same length as the trace).
    pub reports: Vec<RoundReport<O>>,
}

impl<O> ExecutionRecord<O> {
    /// Number of executed rounds.
    pub fn num_rounds(&self) -> usize {
        self.reports.len()
    }

    /// The outputs at the end of round `r`.
    pub fn outputs_at(&self, r: usize) -> &[Option<O>] {
        &self.reports[r].outputs
    }

    /// The communication graph of round `r`.
    pub fn graph_at(&self, r: usize) -> Graph {
        self.trace.graph_at(r)
    }
}

/// Runs `sim` against `adversary` for `rounds` rounds and records everything.
///
/// The recorded trace contains the *effective* communication graph of each
/// round (the adversary's graph restricted to the nodes that have woken up),
/// i.e. the paper's `G_r` over `V_r` — this is the graph against which the
/// T-dynamic guarantees are checked.
pub fn run<A, F, W, Adv>(
    sim: &mut Simulator<A, F, W>,
    adversary: &mut Adv,
    rounds: usize,
) -> ExecutionRecord<A::Output>
where
    A: NodeAlgorithm,
    F: AlgorithmFactory<A>,
    W: WakeupSchedule,
    Adv: OutputAdversary<A::Output> + ?Sized,
{
    assert!(rounds >= 1);
    let mut graph = adversary.initial_graph();
    let mut reports = Vec::with_capacity(rounds);
    let first = sim.step(&graph);
    let mut trace = DynamicGraphTrace::new(first.graph.to_graph());
    reports.push(first);
    for r in 1..rounds {
        let prev_outputs = reports[r - 1].outputs.clone();
        graph = adversary.next_graph(r as u64, &graph, &prev_outputs);
        let report = sim.step(&graph);
        trace.push(&report.graph.to_graph());
        reports.push(report);
    }
    ExecutionRecord { trace, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::StaticAdversary;
    use dynnet_graph::{generators, NodeId};
    use dynnet_runtime::{AllAtStart, Incoming, NodeContext, SimConfig};

    struct Echo;

    impl NodeAlgorithm for Echo {
        type Msg = u32;
        type Output = u32;
        fn send(&mut self, ctx: &mut NodeContext<'_>) -> u32 {
            ctx.node.0
        }
        fn receive(&mut self, _ctx: &mut NodeContext<'_>, _inbox: &[Incoming<u32>]) {}
        fn output(&self) -> u32 {
            1
        }
    }

    #[test]
    fn run_records_trace_and_reports() {
        let g = generators::cycle(6);
        let mut sim = Simulator::new(6, |_v: NodeId| Echo, AllAtStart, SimConfig::sequential(0));
        let mut adv = StaticAdversary::new(g.clone());
        let record = run(&mut sim, &mut adv, 5);
        assert_eq!(record.num_rounds(), 5);
        assert_eq!(record.trace.num_rounds(), 5);
        assert_eq!(record.graph_at(3).edge_vec(), g.edge_vec());
        assert_eq!(record.outputs_at(4)[2], Some(1));
    }
}
