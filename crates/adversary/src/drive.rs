//! Coupling the simulator with an adversary (legacy entry point).
//!
//! [`run`] executes the full round loop of the paper — adversary changes the
//! graph, nodes compute, outputs are published — for a fixed number of
//! rounds, recording per round the communication graph and the outputs. The
//! adversary sees the previous round's outputs only (never the current
//! round's randomness).
//!
//! This is now a thin shim over the streaming execution path: it drives the
//! simulator with [`Simulator::step_streaming`] and feeds a
//! [`TraceRecorder`] observer, exactly as [`crate::Scenario`] does. New code
//! should prefer [`crate::Scenario`], which owns the loop and lets any
//! number of [`dynnet_runtime::RoundObserver`]s stream over the execution
//! without materializing it.

use crate::traits::OutputAdversary;
use dynnet_runtime::observer::{RoundObserver, RoundView, TraceRecorder};
use dynnet_runtime::{AlgorithmFactory, NodeAlgorithm, Simulator, WakeupSchedule};

pub use dynnet_runtime::observer::ExecutionRecord;

/// Runs `sim` against `adversary` for `rounds` rounds and records everything.
///
/// The recorded trace contains the *effective* communication graph of each
/// round (the adversary's graph restricted to the nodes that have woken up),
/// i.e. the paper's `G_r` over `V_r` — this is the graph against which the
/// T-dynamic guarantees are checked.
pub fn run<A, F, W, Adv>(
    sim: &mut Simulator<A, F, W>,
    adversary: &mut Adv,
    rounds: usize,
) -> ExecutionRecord<A::Output>
where
    A: NodeAlgorithm,
    F: AlgorithmFactory<A>,
    W: WakeupSchedule,
    Adv: OutputAdversary<A::Output> + ?Sized,
{
    assert!(rounds >= 1);
    let mut recorder = TraceRecorder::new();
    let mut graph = adversary.initial_graph();
    for r in 0..rounds as u64 {
        let summary = if r == 0 {
            sim.step_streaming(&graph)
        } else {
            // Delta-native round loop, exactly as `Scenario`'s runner: the
            // adversary emits the round's delta, the persistent graph is
            // patched in place, the simulator patches its effective CSR.
            let delta = adversary.next_delta(r, &graph, sim.outputs());
            delta.apply(&mut graph);
            sim.step_delta(&graph, &delta)
        };
        let graph_cell = std::cell::OnceCell::new();
        recorder.on_round(&RoundView {
            round: summary.round,
            graph: &summary.graph,
            delta: summary.delta.as_ref(),
            outputs: sim.outputs(),
            changed_outputs: Some(&summary.changed_outputs),
            newly_awake: &summary.newly_awake,
            num_awake: summary.num_awake,
            graph_cell: &graph_cell,
        });
    }
    recorder.finish();
    recorder.into_record()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::StaticAdversary;
    use dynnet_graph::{generators, NodeId};
    use dynnet_runtime::{AllAtStart, Incoming, NodeContext, SimConfig};

    struct Echo;

    impl NodeAlgorithm for Echo {
        type Msg = u32;
        type Output = u32;
        fn send(&mut self, ctx: &mut NodeContext<'_>) -> u32 {
            ctx.node.0
        }
        fn receive(&mut self, _ctx: &mut NodeContext<'_>, _inbox: &[Incoming<u32>]) {}
        fn output(&self) -> u32 {
            1
        }
    }

    #[test]
    fn run_records_trace_and_reports() {
        let g = generators::cycle(6);
        let mut sim = Simulator::new(6, |_v: NodeId| Echo, AllAtStart, SimConfig::sequential(0));
        let mut adv = StaticAdversary::new(g.clone());
        let record = run(&mut sim, &mut adv, 5);
        assert_eq!(record.num_rounds(), 5);
        assert_eq!(record.trace.num_rounds(), 5);
        assert_eq!(record.graph_at(3).edge_vec(), g.edge_vec());
        assert_eq!(record.outputs_at(4)[2], Some(1));
    }
}
