//! # dynnet-adversary
//!
//! Dynamic-graph adversaries (workload generators) for the `dynnet`
//! reproduction of *"Local Distributed Algorithms in Highly Dynamic
//! Networks"*.
//!
//! The paper's dynamic graph is chosen by a worst-case adversary; this crate
//! provides a spectrum of adversaries ranging from fully static to
//! output-aware conflict seekers. Adversaries are *delta-native*: the round
//! loop asks them for the round's [`dynnet_graph::GraphDelta`]
//! ([`Adversary::next_delta`]) and patches one persistent graph, so a round
//! costs `O(|δ|)` instead of a full graph build — the whole-graph
//! `next_graph` interface remains as a default-bridged compatibility path.
//!
//! * [`StaticAdversary`], [`ScriptedAdversary`], [`PhaseAdversary`] — static
//!   graphs, recorded traces, and phase schedules.
//! * [`MarkovChurnAdversary`], [`FlipChurnAdversary`], [`RateChurnAdversary`],
//!   [`BurstAdversary`] — edge churn at configurable rates and periodic
//!   conflict-injection bursts.
//! * [`NodeChurnAdversary`], [`GrowthAdversary`] — nodes leaving/joining.
//! * [`MobilityAdversary`] — random-waypoint wireless ad-hoc mobility.
//! * [`LocallyStaticAdversary`] — keeps a protected region static while
//!   churning the rest (the workload behind the locally-static guarantees).
//! * [`ConflictSeekingAdversary`] — adaptive, output-aware attacks.
//! * [`Scenario`] / [`Runner`] — the unified execution API: builds one
//!   complete run (algorithm + adversary + wake-up + seed + rounds) and
//!   streams every round to pluggable [`dynnet_runtime::RoundObserver`]s.
//! * [`drive::run`] — the legacy "record everything" entry point, now a thin
//!   shim over the streaming path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod churn;
pub mod drive;
pub mod locally_static;
pub mod mobility;
pub mod node_churn;
pub mod scenario;
pub mod simple;
pub mod traits;

pub use adaptive::ConflictSeekingAdversary;
pub use churn::{BurstAdversary, FlipChurnAdversary, MarkovChurnAdversary, RateChurnAdversary};
pub use drive::{run, ExecutionRecord};
pub use locally_static::LocallyStaticAdversary;
pub use mobility::{MobilityAdversary, MobilityConfig};
pub use node_churn::{GrowthAdversary, NodeChurnAdversary};
pub use scenario::{Runner, Scenario};
pub use simple::{PhaseAdversary, ScriptedAdversary, StaticAdversary};
pub use traits::{Adversary, OutputAdversary};
