//! `DYNNET_TRACE` environment gating, exercised in a fresh process: the
//! integration-test binary has its own copy of the trace statics, so the
//! first `enabled()` call below is the one that resolves the variable.
//!
//! One test function only — resolution happens once per process.

use dynnet_obs as obs;

#[cfg(feature = "trace")]
#[test]
fn env_var_resolves_on_first_use_and_set_enabled_overrides() {
    // Must run before any other obs call in this process.
    std::env::set_var("DYNNET_TRACE", "on");
    assert!(obs::enabled(), "DYNNET_TRACE=on must enable tracing");
    {
        let _s = obs::phase_span("test", "env");
    }
    assert_eq!(obs::events_len(), 1, "enabled span must record");

    // Explicit override beats the (already resolved) environment.
    obs::set_enabled(false);
    assert!(!obs::enabled());
    {
        let _s = obs::phase_span("test", "env");
    }
    assert_eq!(obs::events_len(), 1, "disabled span must not record");

    let events = obs::take_events();
    assert_eq!(events.len(), 1);
    assert_eq!((events[0].cat, events[0].name), ("test", "env"));
    assert_eq!(obs::dropped_events(), 0);
}

#[cfg(not(feature = "trace"))]
#[test]
fn stub_api_is_compiled_out() {
    std::env::set_var("DYNNET_TRACE", "on");
    assert!(
        !obs::enabled(),
        "trace feature off: enabled() is const false"
    );
    obs::set_enabled(true);
    {
        let mut s = obs::phase_span("test", "env");
        s.set_arg("x", 1);
    }
    assert_eq!(obs::events_len(), 0);
    assert!(obs::take_events().is_empty());
}
