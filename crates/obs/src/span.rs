//! Phase spans: RAII timing regions collected into an in-memory trace
//! buffer, exported via [`crate::chrome`].
//!
//! Design constraints, in order:
//!
//! 1. **Zero overhead when off.** Tracing defaults to off; constructing a
//!    span then costs one relaxed atomic load and touches neither the clock
//!    nor the allocator. With the `trace` cargo feature disabled the whole
//!    API is a compile-to-nothing stub ([`enabled`] is `const false`).
//! 2. **Deterministically inert.** Spans only *observe*: no measured
//!    duration ever feeds back into the computation, so enabling tracing
//!    cannot change simulation outputs. Every clock read sits at a
//!    `// TIMING:`-labelled site (enforced by `dynnet-lint`).
//! 3. **Bounded memory.** The global buffer holds at most
//!    `DYNNET_TRACE_CAP` events (default 4 Mi); beyond that events are
//!    counted as dropped, never silently lost.
//!
//! Timestamps are nanoseconds since the process's *trace epoch* — the
//! instant the first span of the process opened — so they are stable across
//! threads and monotonically consistent within one trace.

/// One completed span, ready for export. Produced by dropping a
/// [`PhaseSpan`] while tracing is enabled; drained with [`take_events`].
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Static span name (the phase: `"send"`, `"receive"`, `"cell"`, …).
    pub name: &'static str,
    /// Static category (the subsystem: `"round"`, `"sweep"`, `"verify"`).
    pub cat: &'static str,
    /// Dynamic label refining `name` (e.g. a sweep cell label); `None` for
    /// the allocation-free static constructors.
    pub label: Option<Box<str>>,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small sequential id of the thread that recorded the span.
    pub tid: u64,
    /// Name of the span's one numeric argument (`""` = no argument).
    pub arg_name: &'static str,
    /// Value of the span's numeric argument (meaningful when `arg_name` is
    /// non-empty).
    pub arg: u64,
}

#[cfg(feature = "trace")]
mod imp {
    use super::TraceEvent;
    use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Instant;

    const STATE_UNRESOLVED: u8 = 0;
    const STATE_OFF: u8 = 1;
    const STATE_ON: u8 = 2;

    /// Tri-state so the `DYNNET_TRACE` env variable is read exactly once;
    /// after resolution `enabled()` is a single relaxed load.
    static TRACE_STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);
    /// Events rejected by the buffer cap (see [`dropped_events`]).
    static DROPPED: AtomicU64 = AtomicU64::new(0);
    /// Next thread id to hand out; ids are assigned on a thread's first span.
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    /// Buffer cap, resolved from `DYNNET_TRACE_CAP` on first recording.
    static CAP: AtomicUsize = AtomicUsize::new(0);

    /// Whether span recording is currently on. One relaxed atomic load on
    /// the hot path; the first call resolves the `DYNNET_TRACE` env
    /// variable (`1`/`true`/`on` enable, anything else disables).
    #[inline]
    pub fn enabled() -> bool {
        // ORDERING: a tri-state flag read in isolation; the worst a stale
        // read costs is one extra recorded/skipped span.
        match TRACE_STATE.load(Ordering::Relaxed) {
            STATE_ON => true,
            STATE_OFF => false,
            _ => resolve_env(),
        }
    }

    #[cold]
    fn resolve_env() -> bool {
        let on = matches!(
            std::env::var("DYNNET_TRACE").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        );
        // ORDERING: idempotent cache of an env var; every racer computes
        // the same value, so publication order is irrelevant.
        TRACE_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
        on
    }

    /// Turns span recording on or off, overriding `DYNNET_TRACE`. Used by
    /// the `--trace-out` flag and by tests.
    pub fn set_enabled(on: bool) {
        // ORDERING: standalone flag; spans racing with the toggle may be
        // recorded or not either way, which is acceptable for tracing.
        TRACE_STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    }

    fn collector() -> &'static Mutex<Vec<TraceEvent>> {
        static COLLECTOR: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
        COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// The process's trace epoch: the instant the first span opened.
    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        // TIMING: establishes the origin all span timestamps are relative
        // to; read once per process, never fed into simulation state.
        *EPOCH.get_or_init(Instant::now)
    }

    fn cap() -> usize {
        // ORDERING: idempotent env-var cache, same as resolve_env — every
        // thread that races the 0 state stores the identical value.
        match CAP.load(Ordering::Relaxed) {
            0 => {
                let cap = std::env::var("DYNNET_TRACE_CAP")
                    .ok()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&c| c > 0)
                    .unwrap_or(1 << 22);
                // ORDERING: same idempotent-cache argument as the load above.
                CAP.store(cap, Ordering::Relaxed);
                cap
            }
            cap => cap,
        }
    }

    fn current_tid() -> u64 {
        thread_local! {
            // ORDERING: unique-id allocation only needs atomicity of the
            // increment, not ordering against other memory.
            static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        TID.with(|t| *t)
    }

    /// A span that has started; recorded on drop.
    struct OpenSpan {
        name: &'static str,
        cat: &'static str,
        label: Option<Box<str>>,
        arg_name: &'static str,
        arg: u64,
        start: Instant,
    }

    /// An RAII phase span: records one [`TraceEvent`] covering its lifetime
    /// when dropped — if tracing was enabled when it was constructed.
    /// Constructed via [`phase_span`] / [`phase_span_arg`] /
    /// [`labeled_span`]; when tracing is off the struct holds `None` and
    /// drop is free.
    pub struct PhaseSpan(Option<OpenSpan>);

    impl PhaseSpan {
        /// Attaches (or replaces) the span's numeric argument after
        /// construction — for values only known once the phase ran. No-op
        /// when tracing is off.
        pub fn set_arg(&mut self, name: &'static str, value: u64) {
            if let Some(open) = &mut self.0 {
                open.arg_name = name;
                open.arg = value;
            }
        }
    }

    impl Drop for PhaseSpan {
        fn drop(&mut self) {
            if let Some(open) = self.0.take() {
                record(open);
            }
        }
    }

    fn open(
        cat: &'static str,
        name: &'static str,
        label: Option<Box<str>>,
        arg_name: &'static str,
        arg: u64,
    ) -> PhaseSpan {
        // Pin the epoch at-or-before every span start.
        let _ = epoch();
        // TIMING: span start timestamp; observes the execution, never feeds
        // back into it.
        let start = Instant::now();
        PhaseSpan(Some(OpenSpan {
            name,
            cat,
            label,
            arg_name,
            arg,
            start,
        }))
    }

    /// Opens a span of category `cat` named `name`. When tracing is off
    /// this is one atomic load — no clock read, no allocation.
    #[inline]
    pub fn phase_span(cat: &'static str, name: &'static str) -> PhaseSpan {
        if !enabled() {
            return PhaseSpan(None);
        }
        open(cat, name, None, "", 0)
    }

    /// Opens a span carrying one named numeric argument (e.g.
    /// `phase_span_arg("round", "csr_patch", "delta_edges", 12)`).
    #[inline]
    pub fn phase_span_arg(
        cat: &'static str,
        name: &'static str,
        arg_name: &'static str,
        arg: u64,
    ) -> PhaseSpan {
        if !enabled() {
            return PhaseSpan(None);
        }
        open(cat, name, None, arg_name, arg)
    }

    /// Opens a span with a dynamic label (e.g. a sweep cell's label). The
    /// label is copied *only* when tracing is enabled, so the off path
    /// stays allocation-free.
    #[inline]
    pub fn labeled_span(cat: &'static str, name: &'static str, label: &str) -> PhaseSpan {
        if !enabled() {
            return PhaseSpan(None);
        }
        open(cat, name, Some(Box::from(label)), "", 0)
    }

    fn record(open: OpenSpan) {
        // TIMING: span end timestamp, paired with the start read above.
        let end = Instant::now();
        let epoch = epoch();
        let event = TraceEvent {
            name: open.name,
            cat: open.cat,
            label: open.label,
            start_ns: open
                .start
                .saturating_duration_since(epoch)
                .as_nanos()
                .min(u64::MAX as u128) as u64,
            dur_ns: end
                .saturating_duration_since(open.start)
                .as_nanos()
                .min(u64::MAX as u128) as u64,
            tid: current_tid(),
            arg_name: open.arg_name,
            arg: open.arg,
        };
        let cap = cap();
        let mut buf = collector().lock().unwrap_or_else(PoisonError::into_inner);
        if buf.len() >= cap {
            drop(buf);
            // ORDERING: independent overflow counter, reported out-of-band.
            DROPPED.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(event);
        }
    }

    /// Drains and returns every event recorded so far (in recording order).
    pub fn take_events() -> Vec<TraceEvent> {
        std::mem::take(&mut *collector().lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Number of events currently buffered.
    pub fn events_len() -> usize {
        collector()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Number of events rejected because the buffer cap was reached.
    pub fn dropped_events() -> u64 {
        // ORDERING: advisory counter read; callers only report the number.
        DROPPED.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::TraceEvent;

    /// Stub span: the `trace` feature is off, so this is a unit struct and
    /// every constructor is a no-op the optimizer removes entirely.
    pub struct PhaseSpan(());

    impl PhaseSpan {
        /// No-op stub (`trace` feature off).
        #[inline(always)]
        pub fn set_arg(&mut self, _name: &'static str, _value: u64) {}
    }

    /// Always `false`: the `trace` feature is compiled out.
    #[inline(always)]
    pub const fn enabled() -> bool {
        false
    }

    /// No-op stub (`trace` feature off).
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// No-op stub (`trace` feature off).
    #[inline(always)]
    pub fn phase_span(_cat: &'static str, _name: &'static str) -> PhaseSpan {
        PhaseSpan(())
    }

    /// No-op stub (`trace` feature off).
    #[inline(always)]
    pub fn phase_span_arg(
        _cat: &'static str,
        _name: &'static str,
        _arg_name: &'static str,
        _arg: u64,
    ) -> PhaseSpan {
        PhaseSpan(())
    }

    /// No-op stub (`trace` feature off).
    #[inline(always)]
    pub fn labeled_span(_cat: &'static str, _name: &'static str, _label: &str) -> PhaseSpan {
        PhaseSpan(())
    }

    /// Always empty (`trace` feature off).
    pub fn take_events() -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always 0 (`trace` feature off).
    pub fn events_len() -> usize {
        0
    }

    /// Always 0 (`trace` feature off).
    pub fn dropped_events() -> u64 {
        0
    }
}

pub use imp::{
    dropped_events, enabled, events_len, labeled_span, phase_span, phase_span_arg, set_enabled,
    take_events, PhaseSpan,
};

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// Span tests toggle the process-global trace state; serialize them.
    fn state_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = state_lock();
        set_enabled(false);
        let before = events_len();
        {
            let mut s = phase_span("round", "send");
            s.set_arg("x", 1);
            let _l = labeled_span("sweep", "cell", "n=4");
        }
        assert_eq!(events_len(), before);
    }

    #[test]
    fn enabled_spans_record_and_drain() {
        let _guard = state_lock();
        set_enabled(true);
        let _ = take_events();
        {
            let _a = phase_span("round", "send");
            let _b = phase_span_arg("round", "csr_patch", "delta_edges", 7);
            let _c = labeled_span("sweep", "cell", "n=4 p=0.1");
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 3);
        // Drop order is c, b, a (reverse declaration order).
        assert_eq!(events[0].label.as_deref(), Some("n=4 p=0.1"));
        assert_eq!(events[1].arg_name, "delta_edges");
        assert_eq!(events[1].arg, 7);
        assert_eq!(events[2].name, "send");
        assert_eq!(events[2].cat, "round");
        for e in &events {
            assert!(e.start_ns <= events[0].start_ns + 1_000_000_000);
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn set_arg_attaches_late_argument() {
        let _guard = state_lock();
        set_enabled(true);
        let _ = take_events();
        {
            let mut s = phase_span("round", "receive");
            s.set_arg("churn", 42);
        }
        set_enabled(false);
        let events = take_events();
        assert_eq!(events.len(), 1);
        assert_eq!((events[0].arg_name, events[0].arg), ("churn", 42));
    }
}
