//! CLI wrapper over [`dynnet_obs::validate`]: checks emitted Chrome-trace
//! and metrics-JSONL artifacts in CI smoke jobs.
//!
//! ```text
//! obs-validate chrome <trace.json>...
//! obs-validate jsonl  <metrics.jsonl>...
//! ```
//!
//! Exits 0 when every file validates, 1 otherwise.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: obs-validate <chrome|jsonl> <path>...");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((kind, paths)) = args.split_first() else {
        return usage();
    };
    if paths.is_empty() {
        return usage();
    }
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("obs-validate: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let outcome = match kind.as_str() {
            "chrome" => dynnet_obs::validate_chrome_trace(&text).map(|report| {
                let cats: Vec<&str> = report.categories.iter().map(String::as_str).collect();
                format!(
                    "{} events, categories: [{}]",
                    report.events,
                    cats.join(", ")
                )
            }),
            "jsonl" => dynnet_obs::validate_metrics_jsonl(&text).map(|report| {
                let scopes: Vec<&str> = report.scopes.iter().map(String::as_str).collect();
                format!("{} lines, scopes: [{}]", report.lines, scopes.join(", "))
            }),
            _ => return usage(),
        };
        match outcome {
            Ok(summary) => println!("obs-validate: {path}: OK ({summary})"),
            Err(e) => {
                eprintln!("obs-validate: {path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
