//! Observability for the dynnet stack: phase spans, a unified metric
//! registry, and Chrome-trace / JSONL exporters — all zero-overhead when
//! disabled.
//!
//! The paper's T-dynamic framework is all about *per-round* behavior under
//! churn, yet runtime signals used to live in scattered one-off structs
//! (`DeltaStats`, pool stats, verifier ledger counters, sweep shard
//! progress). This crate unifies them behind three small APIs:
//!
//! * **Phase spans** ([`span`]) — RAII timing regions the simulator drops
//!   around each round phase (wakeup, CSR patch/rebuild, send,
//!   receive+publish) and the sweep engine drops around each cell. Gated by
//!   the `DYNNET_TRACE` env variable (or [`set_enabled`]): when tracing is
//!   off, constructing a span is one relaxed atomic load — no clock read,
//!   no allocation. When the `trace` cargo feature is off the API is a
//!   compile-to-nothing stub.
//! * **Metric registry** ([`registry()`]) — named atomic counters/gauges plus
//!   a [`MetricSource`] trait for pull-style producers, snapshotted into a
//!   deterministically ordered [`Snapshot`].
//! * **Exporters** ([`chrome`], [`jsonl`]) — a Chrome trace-event JSON
//!   writer (loadable in Perfetto / `chrome://tracing`) and a line-oriented
//!   JSONL metrics writer that reuses the bench report's "one record per
//!   line, merge by source" idiom.
//! * **Validator** ([`validate`], `obs-validate` binary) — a dependency-free
//!   JSON parser plus schema checks for both emitted formats, so CI can
//!   assert smoke-run artifacts are well-formed.
//!
//! Everything here is *deterministically inert*: spans and metrics observe
//! an execution but never feed values back into it, so enabling tracing
//! cannot change simulation outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod jsonl;
pub mod registry;
pub mod span;
pub mod validate;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use jsonl::JsonlWriter;
pub use registry::{registry, CounterHandle, MetricSource, Registry, Snapshot};
pub use span::{
    dropped_events, enabled, events_len, labeled_span, phase_span, phase_span_arg, set_enabled,
    take_events, PhaseSpan, TraceEvent,
};
pub use validate::{validate_chrome_trace, validate_metrics_jsonl, ChromeReport, JsonlReport};

/// A sink for coarse progress events of a long-running activity (a sweep, a
/// long replay). Lives here so executors can report progress without
/// choosing a destination: stderr, the metric registry, or both.
///
/// Implementations must be cheap and side-effect-free with respect to the
/// computation being observed (progress events carry no data the activity
/// reads back).
pub trait ProgressSink: Send + Sync {
    /// `done` of `total` work units have completed in activity `scope`.
    fn progress(&self, scope: &str, done: u64, total: u64);

    /// Activity `scope` finished; `summary` is a human-readable one-liner.
    fn finished(&self, scope: &str, summary: &str);
}

/// A [`ProgressSink`] that mirrors progress into the metric registry
/// (`progress.done` / `progress.total` gauges) — the destination used when
/// a metrics stream, not a terminal, is watching the run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegistrySink;

impl ProgressSink for RegistrySink {
    fn progress(&self, _scope: &str, done: u64, total: u64) {
        registry().counter("progress.done").set(done);
        registry().counter("progress.total").set(total);
    }

    fn finished(&self, _scope: &str, _summary: &str) {
        registry().counter("progress.finished").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_sink_updates_gauges() {
        RegistrySink.progress("s", 3, 10);
        RegistrySink.finished("s", "done");
        let snap = registry().snapshot();
        assert_eq!(snap.get("progress.done"), Some(3));
        assert_eq!(snap.get("progress.total"), Some(10));
        assert!(snap.get("progress.finished").is_some());
    }
}
