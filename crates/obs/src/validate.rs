//! Schema validation for the emitted artifacts.
//!
//! CI smoke runs emit a Chrome trace and a metrics JSONL; these validators
//! (and the `obs-validate` binary wrapping them) check the files are
//! well-formed so the exporters cannot rot silently. The JSON parser is a
//! minimal hand-rolled recursive-descent parser — the build is fully
//! offline, so no serde.

use std::collections::{BTreeMap, BTreeSet};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }

    fn as_obj(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, String> {
        match self {
            JsonValue::Obj(m) => Ok(m),
            other => Err(format!(
                "{what}: expected object, got {}",
                other.type_name()
            )),
        }
    }

    fn as_num(&self, what: &str) -> Result<f64, String> {
        match self {
            JsonValue::Num(n) => Ok(*n),
            other => Err(format!(
                "{what}: expected number, got {}",
                other.type_name()
            )),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(format!(
                "{what}: expected string, got {}",
                other.type_name()
            )),
        }
    }
}

/// Recursion guard: the emitted formats nest at most 4 levels.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn fail(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.fail("unexpected character")),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        // INVARIANT: the parser only advances pos by peeked bytes, so
        // pos <= bytes.len() and the open range is always valid.
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        // INVARIANT: start was an earlier pos and pos <= bytes.len().
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.fail("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.fail("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar.
                    // INVARIANT: peek() returned Some, so pos < bytes.len().
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid utf-8 in string"))?;
                    match rest.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.fail("unterminated string")),
                    }
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing data after JSON document"));
    }
    Ok(value)
}

/// Summary of a validated Chrome trace (see [`validate_chrome_trace`]).
#[derive(Clone, Debug, Default)]
pub struct ChromeReport {
    /// Number of trace events.
    pub events: usize,
    /// The categories seen.
    pub categories: BTreeSet<String>,
    /// Sum of event durations per category, in microseconds.
    pub dur_us_by_cat: BTreeMap<String, f64>,
    /// Sum of event durations per (category, display name), in microseconds.
    pub dur_us_by_name: BTreeMap<String, f64>,
}

/// Validates a Chrome trace-event JSON document as produced by
/// [`crate::chrome::write_chrome_trace`]: a top-level object with a
/// `traceEvents` array of complete (`ph == "X"`) events carrying string
/// `name`/`cat` and non-negative numeric `ts`/`dur`/`tid`/`pid`.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeReport, String> {
    let doc = parse_json(text)?;
    let top = doc.as_obj("top level")?;
    let events = match top.get("traceEvents") {
        Some(JsonValue::Arr(events)) => events,
        Some(other) => {
            return Err(format!(
                "traceEvents: expected array, got {}",
                other.type_name()
            ))
        }
        None => return Err("missing 'traceEvents' key".to_string()),
    };
    let mut report = ChromeReport::default();
    for (i, event) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        let obj = event.as_obj(&what)?;
        let field = |key: &str| {
            obj.get(key)
                .ok_or_else(|| format!("{what}: missing '{key}'"))
        };
        let name = field("name")?.as_str(&format!("{what}.name"))?;
        let cat = field("cat")?.as_str(&format!("{what}.cat"))?;
        let ph = field("ph")?.as_str(&format!("{what}.ph"))?;
        if ph != "X" {
            return Err(format!("{what}.ph: expected \"X\", got \"{ph}\""));
        }
        for key in ["ts", "dur", "tid", "pid"] {
            let v = field(key)?.as_num(&format!("{what}.{key}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{what}.{key}: not a finite non-negative number"));
            }
        }
        let dur = field("dur")?.as_num("dur")?;
        report.events += 1;
        report.categories.insert(cat.to_string());
        *report.dur_us_by_cat.entry(cat.to_string()).or_insert(0.0) += dur;
        *report
            .dur_us_by_name
            .entry(format!("{cat}/{name}"))
            .or_insert(0.0) += dur;
    }
    Ok(report)
}

/// Summary of a validated metrics JSONL file (see
/// [`validate_metrics_jsonl`]).
#[derive(Clone, Debug, Default)]
pub struct JsonlReport {
    /// Number of snapshot lines.
    pub lines: usize,
    /// The scopes seen.
    pub scopes: BTreeSet<String>,
}

/// Validates a metrics JSONL file as produced by [`crate::JsonlWriter`]:
/// every non-empty line is an object with a string `scope`, a numeric
/// `seq` strictly increasing within its scope, and a `metrics` object with
/// numeric values.
pub fn validate_metrics_jsonl(text: &str) -> Result<JsonlReport, String> {
    let mut report = JsonlReport::default();
    let mut last_seq: BTreeMap<String, f64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let what = format!("line {}", lineno + 1);
        let doc = parse_json(line).map_err(|e| format!("{what}: {e}"))?;
        let obj = doc.as_obj(&what)?;
        let scope = obj
            .get("scope")
            .ok_or_else(|| format!("{what}: missing 'scope'"))?
            .as_str(&format!("{what}.scope"))?;
        let seq = obj
            .get("seq")
            .ok_or_else(|| format!("{what}: missing 'seq'"))?
            .as_num(&format!("{what}.seq"))?;
        if let Some(prev) = last_seq.get(scope) {
            if seq <= *prev {
                return Err(format!(
                    "{what}: seq {seq} not increasing within scope '{scope}' (previous {prev})"
                ));
            }
        }
        last_seq.insert(scope.to_string(), seq);
        let metrics = obj
            .get("metrics")
            .ok_or_else(|| format!("{what}: missing 'metrics'"))?
            .as_obj(&format!("{what}.metrics"))?;
        for (name, value) in metrics {
            value.as_num(&format!("{what}.metrics[{name}]"))?;
        }
        report.lines += 1;
        report.scopes.insert(scope.to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse_json("null"), Ok(JsonValue::Null));
        assert_eq!(parse_json(" true "), Ok(JsonValue::Bool(true)));
        assert_eq!(parse_json("-1.5e2"), Ok(JsonValue::Num(-150.0)));
        assert_eq!(
            parse_json("\"a\\n\\u0041\""),
            Ok(JsonValue::Str("a\nA".to_string()))
        );
        let doc = parse_json("{\"a\":[1,{\"b\":[]}],\"c\":\"x\"}").expect("parse");
        let JsonValue::Obj(top) = doc else {
            panic!("expected object")
        };
        assert!(matches!(top.get("a"), Some(JsonValue::Arr(v)) if v.len() == 2));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn chrome_validator_accepts_writer_output_and_sums_durations() {
        let text = "{\"traceEvents\":[\
            {\"name\":\"send\",\"cat\":\"round\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.0,\"dur\":2.5},\
            {\"name\":\"send\",\"cat\":\"round\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":3.0,\"dur\":1.5}\
            ],\"displayTimeUnit\":\"ms\"}";
        let report = validate_chrome_trace(text).expect("valid");
        assert_eq!(report.events, 2);
        assert!(report.categories.contains("round"));
        assert!((report.dur_us_by_cat["round"] - 4.0).abs() < 1e-9);
        assert!((report.dur_us_by_name["round/send"] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_validator_rejects_bad_events() {
        for bad in [
            "[]",                                                  // not an object
            "{}",                                                  // missing traceEvents
            "{\"traceEvents\":[{\"cat\":\"c\",\"ph\":\"X\"}]}",    // missing name
            "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":1}]}",
            "{\"traceEvents\":[{\"name\":\"n\",\"cat\":\"c\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":-1,\"dur\":1}]}",
        ] {
            assert!(validate_chrome_trace(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn jsonl_validator_checks_seq_per_scope() {
        let good = "{\"scope\":\"a\",\"seq\":0,\"metrics\":{\"m\":1}}\n\
                    {\"scope\":\"b\",\"seq\":0,\"metrics\":{}}\n\
                    {\"scope\":\"a\",\"seq\":1,\"metrics\":{\"m\":2}}\n";
        let report = validate_metrics_jsonl(good).expect("valid");
        assert_eq!(report.lines, 3);
        assert_eq!(report.scopes.len(), 2);

        let stale = "{\"scope\":\"a\",\"seq\":1,\"metrics\":{}}\n\
                     {\"scope\":\"a\",\"seq\":1,\"metrics\":{}}\n";
        assert!(validate_metrics_jsonl(stale).is_err());
        assert!(validate_metrics_jsonl("{\"seq\":0,\"metrics\":{}}").is_err());
        assert!(
            validate_metrics_jsonl("{\"scope\":\"a\",\"seq\":0,\"metrics\":{\"m\":\"x\"}}")
                .is_err()
        );
    }
}
