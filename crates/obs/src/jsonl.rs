//! Periodic JSONL metrics snapshots.
//!
//! A [`JsonlWriter`] appends one JSON object per line to a metrics file:
//!
//! ```text
//! {"scope":"e3","seq":0,"metrics":{"pool.budget":2,"sweep.cells_done":4}}
//! {"scope":"e3","seq":1,"metrics":{"pool.budget":2,"sweep.cells_done":9}}
//! ```
//!
//! The file uses the same merge idiom as the bench report
//! (`bench/src/report.rs`): every writer owns the lines carrying its
//! `scope` tag — opening a writer drops stale lines of the same scope and
//! preserves everyone else's, so several experiments can share one metrics
//! file without a JSON parser ever touching it.

use crate::registry::Snapshot;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Appends scope-tagged metric snapshots to a JSONL file. See the module
/// docs for the line format and the merge semantics.
#[derive(Debug)]
pub struct JsonlWriter {
    path: PathBuf,
    scope: String,
    seq: u64,
}

impl JsonlWriter {
    /// Opens a writer for `scope` at `path`. Existing lines written under
    /// the same scope are dropped (this run replaces them); lines of other
    /// scopes are preserved.
    pub fn create(path: impl Into<PathBuf>, scope: &str) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut marker = String::from("\"scope\":\"");
        crate::chrome::escape_json_into(scope, &mut marker);
        marker.push('"');
        let mut kept: Vec<String> = Vec::new();
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in existing.lines() {
                let line = line.trim();
                if line.starts_with('{') && !line.contains(&marker) {
                    kept.push(line.to_string());
                }
            }
        }
        let mut f = std::fs::File::create(&path)?;
        for line in &kept {
            writeln!(f, "{line}")?;
        }
        Ok(JsonlWriter {
            path,
            scope: scope.to_string(),
            seq: 0,
        })
    }

    /// Appends one snapshot line and returns the sequence number it was
    /// written under (0-based, per writer).
    pub fn write(&mut self, snapshot: &Snapshot) -> std::io::Result<u64> {
        let seq = self.seq;
        let mut line = String::with_capacity(48);
        line.push_str("{\"scope\":\"");
        crate::chrome::escape_json_into(&self.scope, &mut line);
        line.push_str("\",\"seq\":");
        line.push_str(&seq.to_string());
        line.push_str(",\"metrics\":");
        line.push_str(&snapshot.to_json());
        line.push('}');
        let mut f = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        writeln!(f, "{line}")?;
        self.seq += 1;
        Ok(seq)
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The scope tag on every line this writer emits.
    pub fn scope(&self) -> &str {
        &self.scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(v: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.set("sweep.cells_done", v);
        s
    }

    #[test]
    fn appends_and_merges_by_scope() {
        let dir = std::env::temp_dir().join(format!("dynnet-jsonl-{}", std::process::id()));
        let path = dir.join("metrics.jsonl");
        let mut a = JsonlWriter::create(&path, "a").expect("create a");
        a.write(&snap(1)).expect("a line");
        let mut b = JsonlWriter::create(&path, "b").expect("create b");
        b.write(&snap(2)).expect("b line");
        // Re-opening scope "a" drops its old lines but keeps scope "b".
        let mut a2 = JsonlWriter::create(&path, "a").expect("recreate a");
        assert_eq!(a2.scope(), "a");
        a2.write(&snap(3)).expect("a2 line 0");
        assert_eq!(a2.write(&snap(4)).expect("a2 line 1"), 1);
        let text = std::fs::read_to_string(a2.path()).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"scope\":\"b\""));
        assert!(lines[1].contains("\"seq\":0"));
        assert!(lines[1].contains("\"sweep.cells_done\":3"));
        assert!(lines[2].contains("\"seq\":1"));
        crate::validate::validate_metrics_jsonl(&text).expect("valid jsonl");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
