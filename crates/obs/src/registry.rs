//! The unified metric registry: named atomic counters/gauges plus a
//! pull-style [`MetricSource`] trait, snapshotted into a deterministically
//! ordered [`Snapshot`].
//!
//! Producers resolve a [`CounterHandle`] once (one registry lock) and then
//! update it with plain atomic operations — safe to call from the round
//! loop. Consumers take a [`Registry::snapshot`] whenever they want a
//! consistent-enough view (metrics are monotone counters or gauges; no
//! cross-metric atomicity is promised) and merge in any [`MetricSource`]s
//! they hold.
//!
//! ## Metric name taxonomy
//!
//! Names are `subsystem.metric`, both lowercase:
//!
//! | prefix      | producer                               | examples |
//! |-------------|----------------------------------------|----------|
//! | `sim.*`     | `MetricsObserver` (dynnet-runtime)     | `sim.rounds`, `sim.output_churn`, `sim.delta_edges`, `sim.newly_awake`, `sim.num_awake` |
//! | `pool.*`    | `MetricsObserver`, from `rayon::pool_stats()` | `pool.budget`, `pool.workers_spawned`, `pool.tasks_pooled`, `pool.calls_inline`, `pool.peak_active` |
//! | `verify.*`  | `TDynamicVerifier` (dynnet-core)       | `verify.rounds_checked`, `verify.rounds_valid`, `verify.packing_violations`, `verify.covering_violations`, `verify.undecided` |
//! | `window.*`  | `TDynamicVerifier`'s `GraphWindow`     | `window.gc_queue_depth`, `window.edge_maturity_depth`, `window.node_maturity_depth` |
//! | `sweep.*`   | the sweep engine's progress sink       | `sweep.cells_done`, `sweep.cells_total`, `sweep.threads` |
//! | `obs.*`     | this crate                             | `obs.trace_events`, `obs.trace_dropped` |

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A handle to one named metric: a shared `u64` cell usable as a monotone
/// counter ([`CounterHandle::inc`]/[`CounterHandle::add`]) or a gauge
/// ([`CounterHandle::set`]). Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Adds `1` to the metric.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta` to the metric.
    #[inline]
    pub fn add(&self, delta: u64) {
        // ORDERING: independent monotonic counter; no other memory is
        // published through it, so no happens-before edge is needed.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the metric to `value` (gauge semantics).
    #[inline]
    pub fn set(&self, value: u64) {
        // ORDERING: gauge write stands alone; readers only need *a* recent
        // value, not synchronization with surrounding writes.
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ORDERING: metrics are advisory; a slightly stale read is fine and
        // guards no other data.
        self.0.load(Ordering::Relaxed)
    }
}

/// The process-wide metric registry. Obtain it via [`registry`].
#[derive(Debug, Default)]
pub struct Registry {
    /// `BTreeMap` so snapshots iterate in name order (deterministic output).
    metrics: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
}

/// The process-wide [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// Returns the handle for metric `name`, registering it (at 0) on first
    /// use. Takes the registry lock; resolve handles once and reuse them in
    /// hot loops.
    pub fn counter(&self, name: &'static str) -> CounterHandle {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        CounterHandle(Arc::clone(metrics.entry(name).or_default()))
    }

    /// A point-in-time copy of every registered metric, in name order.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let mut snap = Snapshot::new();
        for (name, cell) in metrics.iter() {
            // ORDERING: snapshot is advisory (each cell read independently;
            // the registry lock only guards the map, not the values).
            snap.set(*name, cell.load(Ordering::Relaxed));
        }
        snap
    }

    /// Resets every registered metric to 0 (testing aid; handles stay
    /// valid).
    pub fn reset(&self) {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        for cell in metrics.values() {
            // ORDERING: test-only reset; racing increments may survive it by
            // design, so no stronger ordering would buy anything.
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// A pull-style producer of named metric values — implemented by stateful
/// components that already keep their own counters (delta stats, verifier
/// ledgers, window queues) so a snapshot can collect them without the
/// component pushing on every update.
pub trait MetricSource {
    /// Writes this source's current metric values into `out`.
    fn collect(&self, out: &mut Snapshot);
}

/// A point-in-time set of named metric values, ordered by name. Produced by
/// [`Registry::snapshot`] and extended by [`MetricSource`]s; serialized by
/// [`crate::jsonl`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    values: BTreeMap<String, u64>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Sets metric `name` to `value` (overwriting any previous value).
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.values.insert(name.into(), value);
    }

    /// The value of metric `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merges `source`'s metrics into this snapshot.
    pub fn collect_from(&mut self, source: &dyn MetricSource) {
        source.collect(self);
    }

    /// The snapshot as one JSON object, keys in name order:
    /// `{"pool.budget":2,"sim.rounds":40}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(16 + self.values.len() * 24);
        out.push('{');
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::chrome::escape_json_into(name, &mut out);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = Registry::default();
        let c = reg.counter("t.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let same = reg.counter("t.count");
        same.inc();
        assert_eq!(c.get(), 6);
        let g = reg.counter("t.gauge");
        g.set(17);
        g.set(9);
        let snap = reg.snapshot();
        assert_eq!(snap.get("t.count"), Some(6));
        assert_eq!(snap.get("t.gauge"), Some(9));
        reg.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn snapshot_json_is_name_ordered() {
        let mut snap = Snapshot::new();
        snap.set("b.two", 2);
        snap.set("a.one", 1);
        assert_eq!(snap.to_json(), "{\"a.one\":1,\"b.two\":2}");
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
    }

    #[test]
    fn metric_sources_merge() {
        struct Fixed;
        impl MetricSource for Fixed {
            fn collect(&self, out: &mut Snapshot) {
                out.set("fixed.x", 3);
            }
        }
        let mut snap = Snapshot::new();
        snap.collect_from(&Fixed);
        assert_eq!(snap.get("fixed.x"), Some(3));
    }
}
