//! Chrome trace-event JSON export.
//!
//! Writes the collected [`TraceEvent`]s in the Trace Event Format's JSON
//! object form — `{"traceEvents":[…],"displayTimeUnit":"ms"}` with one
//! complete (`"ph":"X"`) event per span — loadable in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`.
//!
//! Timestamps are microseconds since the trace epoch, formatted as decimal
//! numbers with exactly three fractional digits (nanosecond precision).
//! Formatting goes through integer arithmetic only, so the emitted bytes
//! are deterministic for given events.

use crate::span::TraceEvent;
use std::io::Write;
use std::path::Path;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters).
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4, 0] {
                    let digit = (b >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

/// Nanoseconds rendered as a microsecond decimal (`1234567` → `"1234.567"`).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn event_json(e: &TraceEvent, out: &mut String) {
    out.push_str("{\"name\":\"");
    match &e.label {
        Some(label) => escape_json_into(label, out),
        None => escape_json_into(e.name, out),
    }
    out.push_str("\",\"cat\":\"");
    escape_json_into(e.cat, out);
    out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
    out.push_str(&e.tid.to_string());
    out.push_str(",\"ts\":");
    out.push_str(&micros(e.start_ns));
    out.push_str(",\"dur\":");
    out.push_str(&micros(e.dur_ns));
    if !e.arg_name.is_empty() {
        out.push_str(",\"args\":{\"");
        escape_json_into(e.arg_name, out);
        out.push_str("\":");
        out.push_str(&e.arg.to_string());
        out.push('}');
    } else if e.label.is_some() {
        // Keep the static phase name reachable when the display name is the
        // dynamic label.
        out.push_str(",\"args\":{\"phase\":\"");
        escape_json_into(e.name, out);
        out.push_str("\"}");
    }
    out.push('}');
}

/// Renders `events` as one Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        event_json(e, &mut out);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes `events` to `path` as a Chrome trace-event JSON file (see the
/// module docs for how to open it).
pub fn write_chrome_trace(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(events).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str) -> TraceEvent {
        TraceEvent {
            name,
            cat: "round",
            label: None,
            start_ns: 1_234_567,
            dur_ns: 890,
            tid: 3,
            arg_name: "",
            arg: 0,
        }
    }

    #[test]
    fn renders_complete_events() {
        let json = chrome_trace_json(&[event("send")]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"send\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"dur\":0.890"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn labels_and_args_are_escaped() {
        let mut labeled = event("cell");
        labeled.label = Some(Box::from("n=4 \"p\"=0.1\\x"));
        let mut with_arg = event("csr_patch");
        with_arg.arg_name = "delta_edges";
        with_arg.arg = 12;
        let json = chrome_trace_json(&[labeled, with_arg]);
        assert!(json.contains("n=4 \\\"p\\\"=0.1\\\\x"));
        assert!(json.contains("\"args\":{\"phase\":\"cell\"}"));
        assert!(json.contains("\"args\":{\"delta_edges\":12}"));
        crate::validate::validate_chrome_trace(&json).expect("valid trace");
    }

    #[test]
    fn control_chars_escape_to_unicode() {
        let mut out = String::new();
        escape_json_into("a\u{1}b\tc", &mut out);
        assert_eq!(out, "a\\u0001b\\tc");
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join(format!("dynnet-obs-{}", std::process::id()));
        let path = dir.join("trace.json");
        write_chrome_trace(&path, &[event("send")]).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        crate::validate::validate_chrome_trace(&text).expect("valid trace");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
