//! The **Concat** combiner (Algorithm 1, Theorem 1.1).
//!
//! `Concat` combines a `(T2, α)`-network-static algorithm `SAlg` with a
//! `T1`-dynamic algorithm `DAlg`:
//!
//! * one `SAlg` instance runs from the node's wake-up onwards and produces a
//!   partial solution `φ_r` every round;
//! * every round a **new** `DAlg` instance is started with the previous
//!   round's `SAlg` output `φ_{r-1}` as input; at most `T1 - 1` instances are
//!   kept alive (older ones are discarded);
//! * the combiner's output is the output of the *oldest* live `DAlg`
//!   instance — which by then has run for `T1 - 1` rounds and, by property
//!   A.2, extends `φ` to a `T1`-dynamic solution.
//!
//! `Concat` is itself a [`NodeAlgorithm`], so it runs unchanged inside the
//! simulator; its broadcast message bundles the `SAlg` message with one
//! message per live `DAlg` instance.
//!
//! Instance alignment across nodes uses the global round number as a tag.
//! The paper notes that round numbers are "only for the sake of analysis";
//! in a real deployment any shared epoch identifier (e.g. a coarse clock)
//! serves the same purpose, and the node algorithms themselves never read
//! the round number.

use crate::output::HasBottom;
use dynnet_graph::NodeId;
use dynnet_runtime::{AlgorithmFactory, Incoming, NodeAlgorithm, NodeContext};
use std::collections::VecDeque;
use std::sync::Arc;

/// Creates fresh `DAlg` instances started on a given input `φ_v`
/// (the dynamic-algorithm side of the framework, Definition 3.3).
pub trait DynamicAlgorithmFactory<D: NodeAlgorithm>: Send + Sync {
    /// Creates a `DAlg` instance for node `v` with input `input` (= the
    /// node's entry of the partial solution the instance must extend).
    fn create(&self, v: NodeId, input: D::Output) -> D;
}

impl<D: NodeAlgorithm, F> DynamicAlgorithmFactory<D> for F
where
    F: Fn(NodeId, D::Output) -> D + Send + Sync,
{
    fn create(&self, v: NodeId, input: D::Output) -> D {
        self(v, input)
    }
}

/// Creates the single long-running `SAlg` instance per node
/// (the network-static side of the framework, Definition 3.3).
pub trait StaticAlgorithmFactory<S: NodeAlgorithm>: Send + Sync {
    /// Creates the `SAlg` instance for node `v`.
    fn create(&self, v: NodeId) -> S;
}

impl<S: NodeAlgorithm, F> StaticAlgorithmFactory<S> for F
where
    F: Fn(NodeId) -> S + Send + Sync,
{
    fn create(&self, v: NodeId) -> S {
        self(v)
    }
}

/// The broadcast message of [`Concat`]: the `SAlg` message plus one tagged
/// message per live `DAlg` instance.
#[derive(Clone, Debug)]
pub struct ConcatMsg<SM, DM> {
    /// The network-static algorithm's message.
    pub s: SM,
    /// `(instance tag, message)` for every live dynamic-algorithm instance.
    pub d: Vec<(u64, DM)>,
}

/// Per-node state of Algorithm 1.
pub struct Concat<S, D, DF>
where
    S: NodeAlgorithm,
    D: NodeAlgorithm<Output = S::Output>,
    S::Output: HasBottom,
    DF: DynamicAlgorithmFactory<D>,
{
    node: NodeId,
    t1: usize,
    salg: S,
    /// `φ_{r-1}`: the SAlg output at the end of the previous round.
    phi_prev: S::Output,
    /// Live DAlg instances, oldest first, tagged by their start round.
    dalgs: VecDeque<(u64, D)>,
    dfactory: Arc<DF>,
}

impl<S, D, DF> Concat<S, D, DF>
where
    S: NodeAlgorithm,
    D: NodeAlgorithm<Output = S::Output>,
    S::Output: HasBottom,
    DF: DynamicAlgorithmFactory<D>,
{
    /// Creates the combiner for node `v` with window parameter `t1 ≥ 2`.
    pub fn new(v: NodeId, t1: usize, salg: S, dfactory: Arc<DF>) -> Self {
        assert!(t1 >= 2, "Concat requires T1 ≥ 2");
        Concat {
            node: v,
            t1,
            salg,
            phi_prev: S::Output::bottom(),
            dalgs: VecDeque::with_capacity(t1),
            dfactory,
        }
    }

    /// Number of live DAlg instances (≤ T1 − 1).
    pub fn num_instances(&self) -> usize {
        self.dalgs.len()
    }

    /// The current SAlg output `φ` (the backbone partial solution).
    pub fn static_output(&self) -> S::Output {
        self.salg.output()
    }

    /// Immutable access to the SAlg instance (for inspection in tests).
    pub fn static_algorithm(&self) -> &S {
        &self.salg
    }
}

impl<S, D, DF> NodeAlgorithm for Concat<S, D, DF>
where
    S: NodeAlgorithm,
    D: NodeAlgorithm<Output = S::Output>,
    S::Output: HasBottom,
    DF: DynamicAlgorithmFactory<D>,
{
    type Msg = ConcatMsg<S::Msg, D::Msg>;
    type Output = S::Output;

    fn on_wake(&mut self, ctx: &mut NodeContext<'_>) {
        self.salg.on_wake(ctx);
    }

    fn send(&mut self, ctx: &mut NodeContext<'_>) -> Self::Msg {
        // Line 1: start a new DAlg instance on φ_{r-1}.
        let new_instance = self.dfactory.create(self.node, self.phi_prev.clone());
        self.dalgs.push_back((ctx.round, new_instance));
        // Lines 2-3: keep at most T1 - 1 instances (discard the oldest).
        while self.dalgs.len() > self.t1 - 1 {
            self.dalgs.pop_front();
        }
        // Line 6 (send half): one further round of SAlg.
        let s = self.salg.send(ctx);
        // Lines 4-5 (send half): one round of every DAlg instance.
        let d = self
            .dalgs
            .iter_mut()
            .map(|(tag, alg)| (*tag, alg.send(ctx)))
            .collect();
        ConcatMsg { s, d }
    }

    fn receive(&mut self, ctx: &mut NodeContext<'_>, inbox: &[Incoming<Self::Msg>]) {
        // SAlg receives the SAlg components.
        let s_inbox: Vec<Incoming<S::Msg>> =
            inbox.iter().map(|(from, m)| (*from, m.s.clone())).collect();
        self.salg.receive(ctx, &s_inbox);
        // Each DAlg instance receives the messages of the matching instance
        // at the neighbors (matched by start-round tag).
        for (tag, alg) in self.dalgs.iter_mut() {
            let d_inbox: Vec<Incoming<D::Msg>> = inbox
                .iter()
                .filter_map(|(from, m)| {
                    m.d.iter()
                        .find(|(t, _)| t == tag)
                        .map(|(_, dm)| (*from, dm.clone()))
                })
                .collect();
            alg.receive(ctx, &d_inbox);
        }
        // Line 6: φ_r becomes the input of the instance started next round.
        self.phi_prev = self.salg.output();
    }

    fn output(&self) -> Self::Output {
        // Line 7: output the oldest DAlg instance's output.
        self.dalgs
            .front()
            .map(|(_, alg)| alg.output())
            .unwrap_or_else(S::Output::bottom)
    }
}

/// [`AlgorithmFactory`] that builds [`Concat`] nodes for the simulator.
pub struct ConcatFactory<S, D, SF, DF>
where
    S: NodeAlgorithm,
    D: NodeAlgorithm<Output = S::Output>,
    S::Output: HasBottom,
    SF: StaticAlgorithmFactory<S>,
    DF: DynamicAlgorithmFactory<D>,
{
    t1: usize,
    sfactory: SF,
    dfactory: Arc<DF>,
    _marker: std::marker::PhantomData<fn() -> (S, D)>,
}

impl<S, D, SF, DF> ConcatFactory<S, D, SF, DF>
where
    S: NodeAlgorithm,
    D: NodeAlgorithm<Output = S::Output>,
    S::Output: HasBottom,
    SF: StaticAlgorithmFactory<S>,
    DF: DynamicAlgorithmFactory<D>,
{
    /// Creates a factory producing `Concat` nodes with window parameter `t1`.
    pub fn new(t1: usize, sfactory: SF, dfactory: DF) -> Self {
        ConcatFactory {
            t1,
            sfactory,
            dfactory: Arc::new(dfactory),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, D, SF, DF> AlgorithmFactory<Concat<S, D, DF>> for ConcatFactory<S, D, SF, DF>
where
    S: NodeAlgorithm,
    D: NodeAlgorithm<Output = S::Output>,
    S::Output: HasBottom,
    SF: StaticAlgorithmFactory<S>,
    DF: DynamicAlgorithmFactory<D>,
{
    fn create(&self, v: NodeId) -> Concat<S, D, DF> {
        Concat::new(
            v,
            self.t1,
            self.sfactory.create(v),
            Arc::clone(&self.dfactory),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::{generators, Graph};
    use dynnet_runtime::{AllAtStart, SimConfig, Simulator};

    /// Toy "network-static" algorithm: after `delay` rounds it outputs
    /// `Some(node id)` and never changes again.
    struct ToyStatic {
        node: NodeId,
        rounds: u64,
        delay: u64,
    }

    impl NodeAlgorithm for ToyStatic {
        type Msg = ();
        type Output = Option<u32>;
        fn send(&mut self, _ctx: &mut NodeContext<'_>) {}
        fn receive(&mut self, _ctx: &mut NodeContext<'_>, _inbox: &[Incoming<()>]) {
            self.rounds += 1;
        }
        fn output(&self) -> Option<u32> {
            (self.rounds >= self.delay).then_some(self.node.0)
        }
    }

    /// Toy "dynamic" algorithm: input-extending (keeps a decided input) and
    /// finalizing (decides `Some(node id + 1000)` after 1 round if the input
    /// was ⊥).
    struct ToyDynamic {
        node: NodeId,
        value: Option<u32>,
        from_input: bool,
        rounds: u64,
    }

    impl NodeAlgorithm for ToyDynamic {
        type Msg = ();
        type Output = Option<u32>;
        fn send(&mut self, _ctx: &mut NodeContext<'_>) {}
        fn receive(&mut self, _ctx: &mut NodeContext<'_>, _inbox: &[Incoming<()>]) {
            self.rounds += 1;
            if self.value.is_none() && self.rounds >= 1 {
                self.value = Some(self.node.0 + 1000);
            }
        }
        fn output(&self) -> Option<u32> {
            self.value
        }
    }

    fn toy_concat_factory(
        t1: usize,
        delay: u64,
    ) -> ConcatFactory<
        ToyStatic,
        ToyDynamic,
        impl StaticAlgorithmFactory<ToyStatic>,
        impl DynamicAlgorithmFactory<ToyDynamic>,
    > {
        ConcatFactory::new(
            t1,
            move |v: NodeId| ToyStatic {
                node: v,
                rounds: 0,
                delay,
            },
            |v: NodeId, input: Option<u32>| ToyDynamic {
                node: v,
                from_input: input.is_some(),
                value: input,
                rounds: 0,
            },
        )
    }

    #[test]
    fn keeps_at_most_t1_minus_1_instances() {
        let g = generators::cycle(4);
        let factory = toy_concat_factory(4, 2);
        let mut sim = Simulator::new(4, factory, AllAtStart, SimConfig::sequential(0));
        for _ in 0..10 {
            sim.step(&g);
        }
        let node = sim.node(NodeId::new(0)).unwrap();
        assert_eq!(node.num_instances(), 3);
    }

    #[test]
    fn output_comes_from_oldest_instance_and_inherits_static_backbone() {
        // The static algorithm decides after 2 rounds. Instances started
        // afterwards receive that decision as input (input-extending), so the
        // combiner's output eventually equals the static backbone.
        let g = generators::cycle(4);
        let factory = toy_concat_factory(3, 2);
        let mut sim = Simulator::new(4, factory, AllAtStart, SimConfig::sequential(0));
        let mut last = None;
        for _ in 0..8 {
            last = Some(sim.step(&g));
        }
        let outputs = last.unwrap().outputs;
        #[allow(clippy::needless_range_loop)]
        for i in 0..4 {
            assert_eq!(
                outputs[i],
                Some(Some(i as u32)),
                "backbone value propagated"
            );
        }
        // The oldest instance at this point was created from a decided φ.
        let node = sim.node(NodeId::new(1)).unwrap();
        assert_eq!(node.static_output(), Some(1));
        assert!(node.dalgs.front().unwrap().1.from_input);
    }

    #[test]
    fn early_rounds_use_dynamic_fallback_values() {
        // Before the static algorithm decides (delay 100), the dynamic
        // instances decide on their own (+1000 values), so the combined
        // output is never stuck at ⊥ for long.
        let g = generators::cycle(3);
        let factory = toy_concat_factory(3, 100);
        let mut sim = Simulator::new(3, factory, AllAtStart, SimConfig::sequential(0));
        let mut reports = Vec::new();
        for _ in 0..5 {
            reports.push(sim.step(&g));
        }
        // Round 0: the single instance has run 1 round and decided the fallback.
        assert_eq!(reports[0].outputs[0], Some(Some(1000)));
        assert_eq!(reports[4].outputs[2], Some(Some(1002)));
    }

    #[test]
    #[should_panic]
    fn t1_must_be_at_least_two() {
        let _ = Concat::new(
            NodeId::new(0),
            1,
            ToyStatic {
                node: NodeId::new(0),
                rounds: 0,
                delay: 0,
            },
            Arc::new(|v: NodeId, input: Option<u32>| ToyDynamic {
                node: v,
                from_input: input.is_some(),
                value: input,
                rounds: 0,
            }),
        );
    }

    #[test]
    fn messages_are_tagged_per_instance() {
        let g: Graph = generators::complete(2);
        let factory = toy_concat_factory(4, 1);
        let mut sim = Simulator::new(2, factory, AllAtStart, SimConfig::sequential(0));
        sim.step(&g);
        sim.step(&g);
        let node = sim.node(NodeId::new(0)).unwrap();
        let tags: Vec<u64> = node.dalgs.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, vec![0, 1], "instances tagged by start round");
    }
}
