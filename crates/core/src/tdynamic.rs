//! T-dynamic solution checking (Section 1.1 / Section 3).
//!
//! An output vector is a *T-dynamic solution* at round `r` if it satisfies
//! the packing property on the intersection graph `G^∩T_r` and the covering
//! property on the union graph `G^∪T_r`. The checks are restricted to the
//! node set `V^∩T_r` — nodes awake throughout the window — exactly as in
//! Definition 2.1. While fewer than `T` rounds have been pushed into the
//! window the guarantee is vacuous only when nodes genuinely have not been
//! awake for `T` rounds; for synchronous starts the caller should begin
//! asserting at round `T-1` (cf. the proof of Theorem 1.1).

use crate::output::HasBottom;
use crate::problem::{densify_outputs, DynamicProblem};
use dynnet_graph::{Graph, GraphWindow, NodeId};

/// Result of checking one round's output against the window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TDynamicReport {
    /// Nodes in `V^∩T_r` that are still `⊥` (a full T-dynamic solution
    /// requires all of them to be decided).
    pub undecided: Vec<NodeId>,
    /// Nodes violating the packing property on `G^∩T_r`.
    pub packing_violations: Vec<NodeId>,
    /// Nodes violating the covering property on `G^∪T_r`.
    pub covering_violations: Vec<NodeId>,
    /// Number of nodes that were subject to the check (`|V^∩T_r|`).
    pub checked_nodes: usize,
}

impl TDynamicReport {
    /// Returns `true` if the output is a T-dynamic solution: every node of
    /// `V^∩T_r` is decided, packing holds on the intersection graph and
    /// covering holds on the union graph.
    pub fn is_solution(&self) -> bool {
        self.undecided.is_empty()
            && self.packing_violations.is_empty()
            && self.covering_violations.is_empty()
    }

    /// Returns `true` if the decided part is consistent (no packing/covering
    /// violations), ignoring undecided nodes — the "partial solution" notion
    /// on the window graphs.
    pub fn is_partial_solution(&self) -> bool {
        self.packing_violations.is_empty() && self.covering_violations.is_empty()
    }

    /// Total number of violations (excluding undecided nodes).
    pub fn num_violations(&self) -> usize {
        self.packing_violations.len() + self.covering_violations.len()
    }
}

/// The verdict of one node's T-dynamic check: the three facts the round
/// summary is built from. Produced by [`node_verdict`]; the batch
/// [`check_t_dynamic`] evaluates it for every node of `V^∩T_r`, the
/// incremental verifier (`dynnet_core::verify::ViolationLedger`) only for
/// the round's dirty nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeVerdict {
    /// The node's output is `⊥` (blocks a *full* T-dynamic solution).
    pub undecided: bool,
    /// The packing property holds at the node on `G^∩T_r`. Vacuously `true`
    /// for undecided nodes — the packing/covering predicates are only
    /// evaluated on decided outputs.
    pub packing_ok: bool,
    /// The covering property holds at the node on `G^∪T_r` (vacuously `true`
    /// for undecided nodes).
    pub covering_ok: bool,
}

impl NodeVerdict {
    /// The verdict of a node that is not subject to checking at all (outside
    /// `V^∩T_r`): decided-enough, violating nothing.
    pub const CLEAR: NodeVerdict = NodeVerdict {
        undecided: false,
        packing_ok: true,
        covering_ok: true,
    };

    /// Returns `true` if the node contributes nothing against a full
    /// T-dynamic solution (decided, packing and covering both hold).
    pub fn is_clean(&self) -> bool {
        !self.undecided && self.packing_ok && self.covering_ok
    }
}

/// Evaluates one node of `V^∩T_r` against materialized window graphs: the
/// per-node kernel shared by the batch checker and the incremental verifier.
///
/// `dense` must be the ⊥-densified output vector (see
/// [`crate::problem::densify_outputs`]); `intersection` / `union` must carry
/// the adjacency of `G^∩T_r` / `G^∪T_r`. Cost: `O(deg_union(v))` for the
/// radius-1 problems of the paper.
pub fn node_verdict<P: DynamicProblem>(
    problem: &P,
    intersection: &Graph,
    union: &Graph,
    v: NodeId,
    dense: &[P::Output],
) -> NodeVerdict {
    if dense[v.index()].is_bottom() {
        return NodeVerdict {
            undecided: true,
            packing_ok: true,
            covering_ok: true,
        };
    }
    NodeVerdict {
        undecided: false,
        packing_ok: problem.packing_solution_ok_at(intersection, v, dense),
        covering_ok: problem.covering_solution_ok_at(union, v, dense),
    }
}

/// Checks whether `outputs` (as published by the simulator, `None` = asleep)
/// is a T-dynamic solution with respect to the given window — the full
/// re-check: both window graphs are materialized and every node of `V^∩T_r`
/// is re-evaluated (`O(n + |G^∪T|)` per call). The streaming
/// [`crate::TDynamicVerifier`] reaches the same verdicts in
/// `O(|δ| + output churn)` per round.
pub fn check_t_dynamic<P: DynamicProblem>(
    problem: &P,
    window: &GraphWindow,
    outputs: &[Option<P::Output>],
) -> TDynamicReport {
    let dense = densify_outputs(outputs);
    let nodes = window.intersection_nodes();
    let inter = window.intersection_graph();
    let union = window.union_graph();

    let mut undecided = Vec::new();
    let mut packing_violations = Vec::new();
    let mut covering_violations = Vec::new();
    for &v in &nodes {
        let verdict = node_verdict(problem, &inter, &union, v, &dense);
        if verdict.undecided {
            undecided.push(v);
            continue;
        }
        if !verdict.packing_ok {
            packing_violations.push(v);
        }
        if !verdict.covering_ok {
            covering_violations.push(v);
        }
    }
    TDynamicReport {
        undecided,
        packing_violations,
        covering_violations,
        checked_nodes: nodes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::ColoringProblem;
    use crate::mis::MisProblem;
    use crate::output::{ColorOutput, MisOutput};
    use dynnet_graph::{Edge, Graph, GraphWindow};

    fn window_from(n: usize, rounds: &[&[(usize, usize)]], t: usize) -> GraphWindow {
        let mut w = GraphWindow::new(n, t);
        for edges in rounds {
            let g = Graph::from_edges(n, edges.iter().map(|&(a, b)| Edge::of(a, b)));
            w.push(&g);
        }
        w
    }

    #[test]
    fn coloring_t_dynamic_packing_on_intersection_only() {
        // Edge {0,1} present only in the first of two rounds -> not in G^∩2,
        // so equal colors on 0 and 1 do NOT violate packing; but {1,2} is in
        // every round and must be properly colored.
        let w = window_from(3, &[&[(0, 1), (1, 2)], &[(1, 2)]], 2);
        let p = ColoringProblem;
        let out = vec![
            Some(ColorOutput::Colored(1)),
            Some(ColorOutput::Colored(1)),
            Some(ColorOutput::Colored(2)),
        ];
        let report = check_t_dynamic(&p, &w, &out);
        assert!(report.is_solution(), "{report:?}");

        let conflict = vec![
            Some(ColorOutput::Colored(1)),
            Some(ColorOutput::Colored(2)),
            Some(ColorOutput::Colored(2)),
        ];
        let report = check_t_dynamic(&p, &w, &conflict);
        assert!(!report.is_solution());
        assert_eq!(
            report.packing_violations,
            vec![NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn coloring_t_dynamic_covering_on_union_degree() {
        // Node 0 sees neighbor 1 in round 0 and neighbor 2 in round 1:
        // union degree 2, so color 3 is allowed even though the current
        // degree is 1.
        let w = window_from(3, &[&[(0, 1)], &[(0, 2)]], 2);
        let p = ColoringProblem;
        let out = vec![
            Some(ColorOutput::Colored(3)),
            Some(ColorOutput::Colored(1)),
            Some(ColorOutput::Colored(1)),
        ];
        assert!(check_t_dynamic(&p, &w, &out).is_solution());
        // Color 4 exceeds union degree + 1 = 3.
        let too_big = vec![
            Some(ColorOutput::Colored(4)),
            Some(ColorOutput::Colored(1)),
            Some(ColorOutput::Colored(1)),
        ];
        let report = check_t_dynamic(&p, &w, &too_big);
        assert_eq!(report.covering_violations, vec![NodeId::new(0)]);
        assert!(report.packing_violations.is_empty());
    }

    #[test]
    fn undecided_nodes_block_full_solution_but_not_partial() {
        let w = window_from(2, &[&[(0, 1)]], 1);
        let p = ColoringProblem;
        let out = vec![Some(ColorOutput::Colored(1)), Some(ColorOutput::Undecided)];
        let report = check_t_dynamic(&p, &w, &out);
        assert!(!report.is_solution());
        assert!(report.is_partial_solution());
        assert_eq!(report.undecided, vec![NodeId::new(1)]);
        assert_eq!(report.checked_nodes, 2);
    }

    #[test]
    fn mis_t_dynamic_domination_on_union() {
        // Node 2 is dominated by node 0 only via an edge that existed in
        // round 0 but not round 1: domination is checked on the union graph,
        // so this is still valid.
        let w = window_from(3, &[&[(0, 2), (0, 1)], &[(0, 1)]], 2);
        let p = MisProblem;
        let out = vec![
            Some(MisOutput::InMis),
            Some(MisOutput::Dominated),
            Some(MisOutput::Dominated),
        ];
        assert!(check_t_dynamic(&p, &w, &out).is_solution());
    }

    #[test]
    fn mis_t_dynamic_independence_on_intersection() {
        // Nodes 0 and 1 adjacent in every round: both in MIS is a packing
        // violation; if the edge is missing in one round it is not.
        let p = MisProblem;
        let out = vec![Some(MisOutput::InMis), Some(MisOutput::InMis)];
        let persistent = window_from(2, &[&[(0, 1)], &[(0, 1)]], 2);
        assert!(!check_t_dynamic(&p, &persistent, &out).is_solution());
        let transient = window_from(2, &[&[(0, 1)], &[]], 2);
        let report = check_t_dynamic(&p, &transient, &out);
        assert!(report.packing_violations.is_empty());
        // But both-in-MIS with no edges at all is a fine T-dynamic solution.
        assert!(report.is_solution());
    }

    #[test]
    fn sleeping_nodes_are_excluded_from_checks() {
        let mut w = GraphWindow::new(3, 2);
        let mut g0 = Graph::new_all_asleep(3);
        g0.insert_edge(NodeId::new(0), NodeId::new(1));
        w.push(&g0);
        w.push(&g0);
        let p = MisProblem;
        // Node 2 is asleep (None) and not in V^∩T: not required to be decided.
        let out = vec![Some(MisOutput::InMis), Some(MisOutput::Dominated), None];
        let report = check_t_dynamic(&p, &w, &out);
        assert_eq!(report.checked_nodes, 2);
        assert!(report.is_solution());
    }

    #[test]
    fn report_accessors() {
        let w = window_from(2, &[&[(0, 1)], &[(0, 1)]], 2);
        let p = ColoringProblem;
        let out = vec![Some(ColorOutput::Colored(1)), Some(ColorOutput::Colored(1))];
        let report = check_t_dynamic(&p, &w, &out);
        assert_eq!(report.num_violations(), 2);
        assert!(!report.is_partial_solution());
    }
}
