//! Output value types for the two concrete problems and the `⊥` (undecided)
//! abstraction shared by the framework.
//!
//! The paper's outputs `y_v` may be `⊥` while an algorithm is still working
//! (partial solutions, Definition 2.2/3.2). [`HasBottom`] captures that
//! notion generically so the `Concat` combiner and the checkers can treat any
//! problem's output uniformly.

/// A color; valid colors are `1, 2, …` (the paper's `[k] = {1, …, k}`).
pub type Color = usize;

/// Output types that have a distinguished "undecided" value `⊥`.
pub trait HasBottom: Clone + PartialEq {
    /// The `⊥` value.
    fn bottom() -> Self;

    /// Returns `true` if `self` is `⊥`.
    fn is_bottom(&self) -> bool;

    /// Returns `true` if `self` is a decided (non-`⊥`) value.
    fn is_decided(&self) -> bool {
        !self.is_bottom()
    }
}

/// Output of the (degree+1)-coloring problem at one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ColorOutput {
    /// `⊥` — no color chosen yet.
    #[default]
    Undecided,
    /// A permanently chosen color (≥ 1).
    Colored(Color),
}

impl ColorOutput {
    /// The chosen color, if any.
    pub fn color(&self) -> Option<Color> {
        match self {
            ColorOutput::Undecided => None,
            ColorOutput::Colored(c) => Some(*c),
        }
    }
}

impl HasBottom for ColorOutput {
    fn bottom() -> Self {
        ColorOutput::Undecided
    }

    fn is_bottom(&self) -> bool {
        matches!(self, ColorOutput::Undecided)
    }
}

/// Output of the MIS problem at one node (the paper's set notation
/// `(M, D, U)` translated to per-node states).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MisOutput {
    /// `⊥` — the node is still undecided (`U`).
    #[default]
    Undecided,
    /// The node is in the independent set `M` (output `1`).
    InMis,
    /// The node is dominated (`D`, output `0`).
    Dominated,
}

impl MisOutput {
    /// Returns `true` if this node is an MIS member.
    pub fn in_mis(&self) -> bool {
        matches!(self, MisOutput::InMis)
    }
}

impl HasBottom for MisOutput {
    fn bottom() -> Self {
        MisOutput::Undecided
    }

    fn is_bottom(&self) -> bool {
        matches!(self, MisOutput::Undecided)
    }
}

/// Convenience: treat an `Option` as a value with bottom = `None`. Used when
/// a problem's natural output is a plain value.
impl<T: Clone + PartialEq> HasBottom for Option<T> {
    fn bottom() -> Self {
        None
    }

    fn is_bottom(&self) -> bool {
        self.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_output_bottom() {
        assert!(ColorOutput::Undecided.is_bottom());
        assert!(!ColorOutput::Colored(3).is_bottom());
        assert!(ColorOutput::Colored(3).is_decided());
        assert_eq!(ColorOutput::bottom(), ColorOutput::Undecided);
        assert_eq!(ColorOutput::Colored(3).color(), Some(3));
        assert_eq!(ColorOutput::Undecided.color(), None);
        assert_eq!(ColorOutput::default(), ColorOutput::Undecided);
    }

    #[test]
    fn mis_output_bottom() {
        assert!(MisOutput::Undecided.is_bottom());
        assert!(!MisOutput::InMis.is_bottom());
        assert!(!MisOutput::Dominated.is_bottom());
        assert!(MisOutput::InMis.in_mis());
        assert!(!MisOutput::Dominated.in_mis());
        assert_eq!(MisOutput::bottom(), MisOutput::Undecided);
        assert_eq!(MisOutput::default(), MisOutput::Undecided);
    }

    #[test]
    fn option_bottom() {
        assert!(Option::<u32>::bottom().is_bottom());
        assert!(Some(5u32).is_decided());
    }

    #[test]
    fn outputs_roundtrip_via_clone_and_eq() {
        let c = ColorOutput::Colored(2);
        assert_eq!(c, c.clone());
        let m = MisOutput::InMis;
        assert_eq!(m, m.clone());
        assert_ne!(ColorOutput::Colored(2), ColorOutput::Colored(3));
    }
}
