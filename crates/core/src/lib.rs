//! # dynnet-core
//!
//! The framework of *"Local Distributed Algorithms in Highly Dynamic
//! Networks"* (Bamberger, Kuhn, Maus): packing/covering graph problems,
//! partial solutions, `T`-dynamic solutions, and the **Concat** combiner of
//! Theorem 1.1.
//!
//! * [`output`] — output value types with a `⊥` notion ([`ColorOutput`],
//!   [`MisOutput`], [`HasBottom`]).
//! * [`problem`] — the [`DynamicProblem`] trait: packing/covering LCL checks
//!   and partial-solution predicates (Definitions 3.1/3.2).
//! * [`coloring`] / [`mis`] — the two concrete problems of the paper.
//! * [`tdynamic`] — the T-dynamic solution checker (packing on `G^∩T`,
//!   covering on `G^∪T`), factored into a per-node [`NodeVerdict`] kernel
//!   shared by the batch and incremental paths.
//! * [`mod@concat`] — Algorithm 1: combining a network-static and a dynamic
//!   algorithm into one that satisfies Theorem 1.1.
//! * [`verify`] — execution-level verification harnesses for both parts of
//!   Theorem 1.1, used by tests and experiments. [`TDynamicVerifier`] is the
//!   streaming (`RoundObserver`) form: it consumes the delta pipeline's
//!   per-round [`dynnet_graph::WindowUpdate`] dirty sets and output churn,
//!   re-evaluating only the affected nodes via a [`verify::ViolationLedger`]
//!   (`O(|δ| + churn)` per checked round); the full re-check remains as its
//!   [`TDynamicVerifier::full_recheck`] oracle mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod concat;
pub mod mis;
pub mod output;
pub mod problem;
pub mod tdynamic;
pub mod verify;

pub use coloring::ColoringProblem;
pub use concat::{
    Concat, ConcatFactory, ConcatMsg, DynamicAlgorithmFactory, StaticAlgorithmFactory,
};
pub use mis::MisProblem;
pub use output::{Color, ColorOutput, HasBottom, MisOutput};
pub use problem::DynamicProblem;
pub use tdynamic::{check_t_dynamic, node_verdict, NodeVerdict, TDynamicReport};
pub use verify::{
    last_change_round, output_churn_series, verify_locally_static, verify_t_dynamic_run,
    InvalidRounds, TDynamicVerifier, VerificationSummary, VerifyError, ViolationLedger,
};

/// Recommended window size `T = Θ(log n)` for the paper's algorithms.
///
/// Both DColor and DMis complete w.h.p. within `c · log₂ n + c'` rounds; this
/// helper picks a window large enough for the constants observed empirically
/// (see EXPERIMENTS.md) with a comfortable safety margin, while staying
/// `O(log n)`.
pub fn recommended_window(n: usize) -> usize {
    let log = (n.max(2) as f64).log2();
    (8.0 * log).ceil() as usize + 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_window_grows_logarithmically() {
        let w16 = recommended_window(16);
        let w256 = recommended_window(256);
        let w65536 = recommended_window(65_536);
        assert!(w16 < w256 && w256 < w65536);
        // Doubling the exponent doubles the log term: close to affine in log n.
        assert!((w65536 - w256) <= 2 * (w256 - w16) + 1);
        assert!(w65536 < 200, "stays small: {w65536}");
        assert!(recommended_window(0) >= 8);
    }
}
