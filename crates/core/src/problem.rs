//! Packing/covering problem abstraction (Definitions 3.1 and 3.2).
//!
//! A distributed graph problem is *packing* if solutions survive edge
//! removals and *covering* if they survive edge additions. The framework
//! works with problems that decompose into a packing part `P` and a covering
//! part `C` and whose feasibility is locally checkable (LCL, radius 1 for
//! both MIS and coloring).
//!
//! A [`DynamicProblem`] bundles the checks the framework needs:
//!
//! * *partial packing / partial covering* (Definition 3.2) of a partial
//!   output vector on a graph — used for property B.1 of network-static
//!   algorithms;
//! * *full packing / covering solutions* on a graph — used for the T-dynamic
//!   solution checks on the intersection/union graphs.
//!
//! The trait exposes per-node violation queries so that the experiment
//! harness can count violations instead of only seeing a boolean.

use crate::output::HasBottom;
use dynnet_graph::{Graph, NodeId};

/// A graph problem decomposed into a packing part and a covering part, with
/// locally checkable validity.
pub trait DynamicProblem: Send + Sync {
    /// The per-node output type (must have a `⊥` value).
    type Output: HasBottom + Send + Sync;

    /// Human-readable problem name (used in reports).
    fn name(&self) -> &'static str;

    /// The LCL checking radius (1 for coloring and MIS).
    fn radius(&self) -> usize {
        1
    }

    /// Returns `true` if the *packing* LCL condition holds at `v` assuming
    /// the decided part of `out` around `v`. Per Definition 3.2 this is the
    /// check that must be satisfiable by *some* full extension; for the
    /// problems considered here the characterizations from the paper are
    /// used (e.g. "no two adjacent decided nodes share a color").
    fn partial_packing_ok_at(&self, g: &Graph, v: NodeId, out: &[Self::Output]) -> bool;

    /// Returns `true` if the *covering* LCL condition at `v` holds for *all*
    /// extensions of the decided part of `out` (Definition 3.2).
    fn partial_covering_ok_at(&self, g: &Graph, v: NodeId, out: &[Self::Output]) -> bool;

    /// Returns `true` if the packing condition holds at `v` for a *full*
    /// solution (additionally requiring `v` to be decided).
    fn packing_solution_ok_at(&self, g: &Graph, v: NodeId, out: &[Self::Output]) -> bool {
        out[v.index()].is_decided() && self.partial_packing_ok_at(g, v, out)
    }

    /// Returns `true` if the covering condition holds at `v` for a *full*
    /// solution (additionally requiring `v` to be decided).
    fn covering_solution_ok_at(&self, g: &Graph, v: NodeId, out: &[Self::Output]) -> bool;

    /// Nodes (among `restrict_to`) violating the partial-solution conditions.
    fn partial_violations(
        &self,
        g: &Graph,
        out: &[Self::Output],
        restrict_to: &[NodeId],
    ) -> Vec<NodeId> {
        restrict_to
            .iter()
            .copied()
            .filter(|&v| {
                out[v.index()].is_decided()
                    && !(self.partial_packing_ok_at(g, v, out)
                        && self.partial_covering_ok_at(g, v, out))
            })
            .collect()
    }

    /// Returns `true` if `out` restricted to `restrict_to` is a partial
    /// solution for (P, C) on `g` (Definition 3.2): every decided node
    /// satisfies partial packing and partial covering.
    fn is_partial_solution(&self, g: &Graph, out: &[Self::Output], restrict_to: &[NodeId]) -> bool {
        self.partial_violations(g, out, restrict_to).is_empty()
    }
}

/// Converts the simulator's "asleep = `None`" outputs into problem outputs
/// with `⊥` for sleeping nodes.
pub fn densify_outputs<O: HasBottom>(outputs: &[Option<O>]) -> Vec<O> {
    outputs
        .iter()
        .map(|o| o.clone().unwrap_or_else(O::bottom))
        .collect()
}

/// Counts decided (non-`⊥`) entries among the given nodes.
pub fn count_decided<O: HasBottom>(out: &[O], nodes: &[NodeId]) -> usize {
    nodes.iter().filter(|v| out[v.index()].is_decided()).count()
}

/// Counts output changes between two rounds, restricted to the given nodes —
/// the "output churn" metric used throughout the experiments.
pub fn count_changes<O: PartialEq>(prev: &[O], cur: &[O], nodes: &[NodeId]) -> usize {
    nodes
        .iter()
        .filter(|v| prev[v.index()] != cur[v.index()])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::ColorOutput;

    #[test]
    fn densify_replaces_none_with_bottom() {
        let outs = vec![
            Some(ColorOutput::Colored(1)),
            None,
            Some(ColorOutput::Undecided),
        ];
        let dense = densify_outputs(&outs);
        assert_eq!(
            dense,
            vec![
                ColorOutput::Colored(1),
                ColorOutput::Undecided,
                ColorOutput::Undecided
            ]
        );
    }

    #[test]
    fn counting_helpers() {
        let prev = vec![
            ColorOutput::Undecided,
            ColorOutput::Colored(1),
            ColorOutput::Colored(2),
        ];
        let cur = vec![
            ColorOutput::Colored(3),
            ColorOutput::Colored(1),
            ColorOutput::Colored(1),
        ];
        let nodes: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert_eq!(count_decided(&prev, &nodes), 2);
        assert_eq!(count_decided(&cur, &nodes), 3);
        assert_eq!(count_changes(&prev, &cur, &nodes), 2);
        assert_eq!(count_changes(&prev, &cur, &nodes[1..2]), 0);
    }
}
