//! The MIS problem as a packing/covering pair (Section 5).
//!
//! * Packing part `MP`: independent set — removing edges keeps independence.
//! * Covering part `MC`: dominating set — adding edges keeps domination.
//!
//! Their intersection is the maximal independent set problem. The paper's
//! characterization of partial solutions (before the proof of Lemma 5.5):
//!
//! * a vector is **partial packing** iff no two adjacent nodes are in state
//!   `mis`;
//! * a vector is **partial covering** iff every node in state `dominated`
//!   has a neighbor in state `mis`.

use crate::output::MisOutput;
use crate::problem::DynamicProblem;
use dynnet_graph::{Graph, NodeId};

/// The MIS problem `(MP, MC)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MisProblem;

impl DynamicProblem for MisProblem {
    type Output = MisOutput;

    fn name(&self) -> &'static str {
        "maximal independent set"
    }

    fn partial_packing_ok_at(&self, g: &Graph, v: NodeId, out: &[MisOutput]) -> bool {
        if out[v.index()] != MisOutput::InMis {
            return true;
        }
        g.neighbors(v).all(|w| out[w.index()] != MisOutput::InMis)
    }

    fn partial_covering_ok_at(&self, g: &Graph, v: NodeId, out: &[MisOutput]) -> bool {
        if out[v.index()] != MisOutput::Dominated {
            return true;
        }
        g.neighbors(v).any(|w| out[w.index()] == MisOutput::InMis)
    }

    fn covering_solution_ok_at(&self, g: &Graph, v: NodeId, out: &[MisOutput]) -> bool {
        // In a full solution every node must be decided and every node must
        // be in the MIS or dominated *by an MIS neighbor in g* — i.e. the MIS
        // is a dominating set of g.
        match out[v.index()] {
            MisOutput::Undecided => false,
            MisOutput::InMis => true,
            MisOutput::Dominated => g.neighbors(v).any(|w| out[w.index()] == MisOutput::InMis),
        }
    }
}

/// Number of nodes currently in the MIS.
pub fn mis_size(out: &[MisOutput]) -> usize {
    out.iter().filter(|o| o.in_mis()).count()
}

/// Number of edges whose both endpoints are in the MIS — the packing
/// violations that Corollary 1.3 keeps transient.
pub fn independence_violations(g: &Graph, out: &[MisOutput]) -> usize {
    g.edges()
        .filter(|e| out[e.u.index()].in_mis() && out[e.v.index()].in_mis())
        .count()
}

/// Number of dominated nodes without an MIS neighbor in `g`.
pub fn domination_violations(g: &Graph, out: &[MisOutput]) -> usize {
    g.nodes()
        .filter(|&v| {
            out[v.index()] == MisOutput::Dominated
                && !g.neighbors(v).any(|w| out[w.index()].in_mis())
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::Edge;

    fn path4() -> Graph {
        Graph::from_edges(4, [Edge::of(0, 1), Edge::of(1, 2), Edge::of(2, 3)])
    }

    fn states(s: &str) -> Vec<MisOutput> {
        s.chars()
            .map(|c| match c {
                'M' => MisOutput::InMis,
                'D' => MisOutput::Dominated,
                _ => MisOutput::Undecided,
            })
            .collect()
    }

    #[test]
    fn partial_packing_rejects_adjacent_mis_nodes() {
        let g = path4();
        let p = MisProblem;
        assert!((0..4).all(|i| p.partial_packing_ok_at(&g, NodeId::new(i), &states("MDMD"))));
        let bad = states("MMDD");
        assert!(!p.partial_packing_ok_at(&g, NodeId::new(0), &bad));
        assert!(!p.partial_packing_ok_at(&g, NodeId::new(1), &bad));
        assert!(
            p.partial_packing_ok_at(&g, NodeId::new(2), &bad),
            "dominated node never violates packing"
        );
    }

    #[test]
    fn partial_covering_requires_mis_neighbor_for_dominated() {
        let g = path4();
        let p = MisProblem;
        let good = states("MD..");
        assert!(p.partial_covering_ok_at(&g, NodeId::new(1), &good));
        let bad = states(".D..");
        assert!(!p.partial_covering_ok_at(&g, NodeId::new(1), &bad));
        // Undecided and MIS nodes always satisfy partial covering.
        assert!(p.partial_covering_ok_at(&g, NodeId::new(2), &bad));
        assert!(p.partial_covering_ok_at(&g, NodeId::new(0), &states("M...")));
    }

    #[test]
    fn full_covering_requires_every_node_decided_and_dominated() {
        let g = path4();
        let p = MisProblem;
        let full = states("MDMD");
        assert!((0..4).all(|i| p.covering_solution_ok_at(&g, NodeId::new(i), &full)));
        assert!(!p.covering_solution_ok_at(&g, NodeId::new(3), &states("MDM.")));
        // A dominated node whose dominator left the graph violates covering.
        let orphan = states("DDMD");
        assert!(!p.covering_solution_ok_at(&g, NodeId::new(0), &orphan));
    }

    #[test]
    fn packing_solution_requires_decided() {
        let g = path4();
        let p = MisProblem;
        assert!(!p.packing_solution_ok_at(&g, NodeId::new(0), &states(".DMD")));
        assert!(p.packing_solution_ok_at(&g, NodeId::new(0), &states("MDMD")));
    }

    #[test]
    fn metrics() {
        let g = path4();
        assert_eq!(mis_size(&states("MDMD")), 2);
        assert_eq!(independence_violations(&g, &states("MMDD")), 1);
        assert_eq!(independence_violations(&g, &states("MDMD")), 0);
        assert_eq!(domination_violations(&g, &states("DDMD")), 1);
        assert_eq!(domination_violations(&g, &states("MDMD")), 0);
    }

    #[test]
    fn partial_solution_interface() {
        let g = path4();
        let p = MisProblem;
        let nodes: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        assert!(
            !p.is_partial_solution(&g, &states("M.D."), &nodes),
            "dominated node 2 has no MIS neighbor"
        );
        assert!(p.is_partial_solution(&g, &states("MD.."), &nodes));
        assert_eq!(p.name(), "maximal independent set");
    }
}
