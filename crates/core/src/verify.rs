//! End-to-end verification harnesses for the Theorem 1.1 guarantees, used by
//! the integration tests and the experiment harness.
//!
//! The harness works on raw data — a sequence of graphs and the per-round
//! output snapshots — so it is independent of how the execution was produced
//! (any adversary, any wake-up schedule, sequential or parallel simulator).

use crate::output::HasBottom;
use crate::problem::DynamicProblem;
use crate::tdynamic::{check_t_dynamic, TDynamicReport};
use dynnet_graph::{Graph, GraphDelta, GraphWindow, NodeId};

/// Per-round verification result plus aggregate counters.
#[derive(Clone, Debug, Default)]
pub struct VerificationSummary {
    /// Number of rounds that were subject to checking.
    pub rounds_checked: usize,
    /// Number of checked rounds in which the output was a full T-dynamic solution.
    pub rounds_valid: usize,
    /// Number of checked rounds in which the decided part was consistent
    /// (partial solution on the window graphs).
    pub rounds_partial_valid: usize,
    /// Total packing violations summed over the checked rounds.
    pub total_packing_violations: usize,
    /// Total covering violations summed over the checked rounds.
    pub total_covering_violations: usize,
    /// Total undecided nodes (within `V^∩T`) summed over the checked rounds.
    pub total_undecided: usize,
    /// First checked round (0-based, absolute) in which the output was a full
    /// T-dynamic solution, if any.
    pub first_valid_round: Option<usize>,
    /// Rounds (absolute indices) whose output was *not* a full solution.
    pub invalid_rounds: Vec<usize>,
}

impl VerificationSummary {
    /// Returns `true` if every checked round carried a full T-dynamic solution.
    pub fn all_valid(&self) -> bool {
        self.rounds_checked == self.rounds_valid
    }

    /// Fraction of checked rounds with a full T-dynamic solution (1.0 if no
    /// round was checked).
    pub fn valid_fraction(&self) -> f64 {
        if self.rounds_checked == 0 {
            1.0
        } else {
            self.rounds_valid as f64 / self.rounds_checked as f64
        }
    }
}

/// Streaming T-dynamic verifier (Theorem 1.1, part 1).
///
/// Observes an execution round by round — either through the
/// [`dynnet_runtime::RoundObserver`] hook from a
/// `dynnet_adversary::Scenario`, or by feeding rounds directly via
/// [`TDynamicVerifier::observe`] — and maintains the same
/// [`VerificationSummary`] that the batch [`verify_t_dynamic_run`] computes.
///
/// Memory: an `O(window)` ring of graphs (inside [`GraphWindow`]) plus the
/// aggregate counters. The execution itself is never materialized, so
/// verification no longer bounds the scenario sizes that can be checked.
pub struct TDynamicVerifier<P: DynamicProblem> {
    problem: P,
    window_size: usize,
    check_from: usize,
    window: Option<GraphWindow>,
    round: usize,
    summary: VerificationSummary,
}

impl<P: DynamicProblem> TDynamicVerifier<P> {
    /// Creates a verifier for `problem` with window size `window` (the
    /// paper's `T`). Checking starts at round `T - 1` (the first round with
    /// a full window, right for synchronous starts); use
    /// [`TDynamicVerifier::check_from`] to allow a longer warm-up.
    pub fn new(problem: P, window: usize) -> Self {
        assert!(window >= 1, "window size T must be at least 1");
        TDynamicVerifier {
            problem,
            window_size: window,
            check_from: window - 1,
            window: None,
            round: 0,
            summary: VerificationSummary::default(),
        }
    }

    /// Sets the first round (0-based) at which the guarantee is asserted.
    pub fn check_from(mut self, round: usize) -> Self {
        self.check_from = round;
        self
    }

    /// Feeds the next round (graph + output snapshot) into the verifier.
    pub fn observe(&mut self, graph: &Graph, outputs: &[Option<P::Output>]) {
        let w = self
            .window
            .get_or_insert_with(|| GraphWindow::new(graph.num_nodes(), self.window_size));
        w.push(graph);
        self.check_round(outputs);
    }

    /// Feeds the next round as a delta relative to the previously observed
    /// graph — the `O(|δ|)` window-maintenance path of the delta pipeline.
    /// The first round must have been observed as a whole graph (via
    /// [`TDynamicVerifier::observe`] or the observer hook).
    pub fn observe_delta(&mut self, delta: &GraphDelta, outputs: &[Option<P::Output>]) {
        let w = self
            .window
            .as_mut()
            .expect("observe the initial round as a whole graph before deltas");
        w.push_delta(delta);
        self.check_round(outputs);
    }

    fn check_round(&mut self, outputs: &[Option<P::Output>]) {
        let w = self.window.as_ref().expect("window initialized");
        let r = self.round;
        self.round += 1;
        if r < self.check_from {
            return;
        }
        let report: TDynamicReport = check_t_dynamic(&self.problem, w, outputs);
        let summary = &mut self.summary;
        summary.rounds_checked += 1;
        summary.total_packing_violations += report.packing_violations.len();
        summary.total_covering_violations += report.covering_violations.len();
        summary.total_undecided += report.undecided.len();
        if report.is_partial_solution() {
            summary.rounds_partial_valid += 1;
        }
        if report.is_solution() {
            summary.rounds_valid += 1;
            if summary.first_valid_round.is_none() {
                summary.first_valid_round = Some(r);
            }
        } else {
            summary.invalid_rounds.push(r);
        }
    }

    /// Number of rounds observed so far.
    pub fn rounds_observed(&self) -> usize {
        self.round
    }

    /// The verification summary accumulated so far.
    pub fn summary(&self) -> &VerificationSummary {
        &self.summary
    }

    /// Consumes the verifier into its summary.
    pub fn into_summary(self) -> VerificationSummary {
        self.summary
    }
}

impl<P: DynamicProblem> dynnet_runtime::RoundObserver<P::Output> for TDynamicVerifier<P> {
    fn on_round(&mut self, view: &dynnet_runtime::RoundView<'_, P::Output>) {
        match view.delta {
            // Delta path: O(|δ|) window update, no CSR→Graph conversion.
            Some(delta) if self.window.is_some() => self.observe_delta(delta, view.outputs),
            _ => self.observe(view.current_graph(), view.outputs),
        }
    }
}

/// Verifies the T-dynamic property (Theorem 1.1, part 1) over a fully
/// materialized execution — a batch convenience over [`TDynamicVerifier`].
///
/// * `graphs` — the dynamic graph sequence `G_0, G_1, …` (one per round);
/// * `outputs` — per round, the simulator's outputs (`None` = asleep);
/// * `window` — the window size `T`;
/// * `check_from` — first round (0-based) at which the guarantee is asserted
///   (use `T - 1` for synchronous starts, or later to allow a warm-up).
pub fn verify_t_dynamic_run<P: DynamicProblem + Clone>(
    problem: &P,
    graphs: &[Graph],
    outputs: &[Vec<Option<P::Output>>],
    window: usize,
    check_from: usize,
) -> VerificationSummary {
    assert_eq!(graphs.len(), outputs.len(), "one output snapshot per round");
    let mut verifier = TDynamicVerifier::new(problem.clone(), window).check_from(check_from);
    for (g, outs) in graphs.iter().zip(outputs) {
        verifier.observe(g, outs);
    }
    verifier.into_summary()
}

/// Returns the last round in which node `v`'s output differs from its output
/// in the following round, i.e. the round after which the output is stable to
/// the end of the execution. Returns `None` if the output never changes.
pub fn last_change_round<O: PartialEq>(outputs: &[Vec<Option<O>>], v: NodeId) -> Option<usize> {
    let mut last = None;
    for r in 1..outputs.len() {
        if outputs[r][v.index()] != outputs[r - 1][v.index()] {
            last = Some(r);
        }
    }
    last
}

/// Checks the locally-static guarantee (Theorem 1.1, part 2) for one node:
/// the output of `v` must be decided and unchanged in every round of
/// `[stable_from, to]` (inclusive bounds, absolute round indices).
pub fn verify_locally_static<O: HasBottom>(
    outputs: &[Vec<Option<O>>],
    v: NodeId,
    stable_from: usize,
    to: usize,
) -> bool {
    if stable_from > to || to >= outputs.len() {
        return false;
    }
    let reference = &outputs[stable_from][v.index()];
    let Some(ref_val) = reference.as_ref() else {
        return false;
    };
    if ref_val.is_bottom() {
        return false;
    }
    (stable_from..=to).all(|r| outputs[r][v.index()].as_ref() == Some(ref_val))
}

/// Counts, per round, how many of the given nodes changed their output
/// relative to the previous round — the "output churn" time series.
pub fn output_churn_series<O: PartialEq>(
    outputs: &[Vec<Option<O>>],
    nodes: &[NodeId],
) -> Vec<usize> {
    let mut series = vec![0usize];
    for r in 1..outputs.len() {
        let changed = nodes
            .iter()
            .filter(|v| outputs[r][v.index()] != outputs[r - 1][v.index()])
            .count();
        series.push(changed);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::ColoringProblem;
    use crate::output::ColorOutput;
    use dynnet_graph::Edge;

    fn g(n: usize, edges: &[(usize, usize)]) -> Graph {
        Graph::from_edges(n, edges.iter().map(|&(a, b)| Edge::of(a, b)))
    }

    fn colored(cs: &[usize]) -> Vec<Option<ColorOutput>> {
        cs.iter()
            .map(|&c| {
                Some(if c == 0 {
                    ColorOutput::Undecided
                } else {
                    ColorOutput::Colored(c)
                })
            })
            .collect()
    }

    #[test]
    fn verify_run_counts_valid_rounds() {
        let graphs = vec![g(2, &[(0, 1)]), g(2, &[(0, 1)]), g(2, &[(0, 1)])];
        let outputs = vec![
            colored(&[0, 0]),
            colored(&[1, 2]),
            colored(&[1, 1]), // conflict in the last round
        ];
        let p = ColoringProblem;
        let summary = verify_t_dynamic_run(&p, &graphs, &outputs, 2, 1);
        assert_eq!(summary.rounds_checked, 2);
        assert_eq!(summary.rounds_valid, 1);
        assert_eq!(summary.first_valid_round, Some(1));
        assert_eq!(summary.invalid_rounds, vec![2]);
        assert!(!summary.all_valid());
        assert!((summary.valid_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(summary.total_packing_violations, 2);
    }

    #[test]
    fn check_from_skips_warmup() {
        let graphs = vec![g(2, &[(0, 1)]); 4];
        let outputs = vec![
            colored(&[0, 0]),
            colored(&[0, 0]),
            colored(&[1, 2]),
            colored(&[1, 2]),
        ];
        let p = ColoringProblem;
        let summary = verify_t_dynamic_run(&p, &graphs, &outputs, 2, 2);
        assert!(summary.all_valid());
        assert_eq!(summary.rounds_checked, 2);
    }

    #[test]
    fn locally_static_verification() {
        let outputs = vec![
            colored(&[0, 1]),
            colored(&[2, 1]),
            colored(&[2, 1]),
            colored(&[2, 3]),
        ];
        let v0 = NodeId::new(0);
        let v1 = NodeId::new(1);
        assert!(verify_locally_static(&outputs, v0, 1, 3));
        assert!(!verify_locally_static(&outputs, v0, 0, 3), "⊥ at the start");
        assert!(
            !verify_locally_static(&outputs, v1, 1, 3),
            "changes in round 3"
        );
        assert!(verify_locally_static(&outputs, v1, 0, 2));
        assert!(!verify_locally_static(&outputs, v0, 2, 5), "out of range");
        assert_eq!(last_change_round(&outputs, v0), Some(1));
        assert_eq!(last_change_round(&outputs, v1), Some(3));
    }

    #[test]
    fn churn_series() {
        let outputs = vec![
            colored(&[0, 0]),
            colored(&[1, 0]),
            colored(&[1, 2]),
            colored(&[1, 2]),
        ];
        let nodes: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        assert_eq!(output_churn_series(&outputs, &nodes), vec![0, 1, 1, 0]);
    }
}
