//! End-to-end verification harnesses for the Theorem 1.1 guarantees, used by
//! the integration tests and the experiment harness.
//!
//! The harness works on raw data — a sequence of graphs and the per-round
//! output snapshots — so it is independent of how the execution was produced
//! (any adversary, any wake-up schedule, sequential or parallel simulator).

use crate::output::HasBottom;
use crate::problem::DynamicProblem;
use crate::tdynamic::{check_t_dynamic, node_verdict, NodeVerdict};
use dynnet_graph::{Graph, GraphDelta, GraphWindow, NodeId, WindowUpdate};

/// Per-round verification result plus aggregate counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerificationSummary {
    /// Number of rounds that were subject to checking.
    pub rounds_checked: usize,
    /// Number of checked rounds in which the output was a full T-dynamic solution.
    pub rounds_valid: usize,
    /// Number of checked rounds in which the decided part was consistent
    /// (partial solution on the window graphs).
    pub rounds_partial_valid: usize,
    /// Total packing violations summed over the checked rounds.
    pub total_packing_violations: usize,
    /// Total covering violations summed over the checked rounds.
    pub total_covering_violations: usize,
    /// Total undecided nodes (within `V^∩T`) summed over the checked rounds.
    pub total_undecided: usize,
    /// First checked round (0-based, absolute) in which the output was a full
    /// T-dynamic solution, if any.
    pub first_valid_round: Option<usize>,
    /// Rounds (absolute indices) whose output was *not* a full solution,
    /// stored run-length encoded with a bounded run count — a
    /// million-round always-invalid run costs one run, not a million
    /// entries, and adversarial valid/invalid alternation caps out at
    /// [`InvalidRounds::MAX_RUNS`] recorded runs (the total count stays
    /// exact; see [`InvalidRounds::truncated`]).
    pub invalid_rounds: InvalidRounds,
}

/// Bounded, run-length-encoded set of invalid round indices.
///
/// Verification summaries of unbounded executions must not grow with the
/// round count: consecutive invalid rounds collapse into one `(start, len)`
/// run, and the number of *recorded* runs is capped at
/// [`InvalidRounds::MAX_RUNS`]. Pushes beyond the cap keep the aggregate
/// counters exact ([`InvalidRounds::len`]) but drop the individual indices
/// ([`InvalidRounds::truncated`] reports how many). Rounds must be pushed in
/// strictly increasing order (the verifier's natural order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvalidRounds {
    /// Maximal runs of consecutive invalid rounds, as `(start, len)`,
    /// ascending and non-adjacent.
    runs: Vec<(usize, usize)>,
    /// Total invalid rounds pushed (recorded or dropped).
    total: usize,
    /// Invalid rounds dropped after the run cap was reached.
    dropped: usize,
}

impl InvalidRounds {
    /// Upper bound on the number of *recorded* runs. Memory is
    /// `O(MAX_RUNS)` regardless of execution length.
    pub const MAX_RUNS: usize = 1024;

    /// Records `round` as invalid. Rounds arrive in strictly increasing
    /// order; a round adjacent to the last recorded run extends it in place
    /// (`O(1)`, no allocation — the always-invalid case stays at one run).
    pub fn push(&mut self, round: usize) {
        self.total += 1;
        if self.dropped == 0 {
            if let Some(last) = self.runs.last_mut() {
                debug_assert!(round >= last.0 + last.1, "rounds must be pushed in order");
                if round == last.0 + last.1 {
                    last.1 += 1;
                    return;
                }
            }
            if self.runs.len() < Self::MAX_RUNS {
                self.runs.push((round, 1));
                return;
            }
        }
        self.dropped += 1;
    }

    /// Total number of invalid rounds (exact even past the run cap).
    pub fn len(&self) -> usize {
        self.total
    }

    /// Returns `true` if no round was recorded as invalid.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of invalid rounds whose indices were dropped because the run
    /// cap was reached (`0` in the overwhelmingly common case).
    pub fn truncated(&self) -> usize {
        self.dropped
    }

    /// The recorded maximal runs as `(start, len)`, ascending.
    pub fn runs(&self) -> &[(usize, usize)] {
        &self.runs
    }

    /// Iterates the recorded invalid round indices in ascending order
    /// (excludes truncated rounds).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.runs
            .iter()
            .flat_map(|&(start, len)| start..start + len)
    }

    /// Returns `true` if `round` is among the recorded invalid rounds.
    pub fn contains(&self, round: usize) -> bool {
        match self.runs.binary_search_by_key(&round, |&(start, _)| start) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => {
                let (start, len) = self.runs[i - 1];
                round < start + len
            }
        }
    }

    /// Materializes the recorded rounds into a vector (testing/reporting).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Reconstructs an `InvalidRounds` from its serialized parts,
    /// validating every structural invariant [`InvalidRounds::push`]
    /// maintains: runs ascending, non-empty and non-adjacent, at most
    /// [`InvalidRounds::MAX_RUNS`] of them, rounds only dropped once the
    /// cap is full, and `total` consistent with `runs + dropped`.
    ///
    /// Checkpoint decoders use this so a corrupt payload yields a typed
    /// error instead of a summary that violates the type's invariants.
    pub fn from_parts(
        runs: Vec<(usize, usize)>,
        total: usize,
        dropped: usize,
    ) -> Result<Self, &'static str> {
        if runs.len() > Self::MAX_RUNS {
            return Err("more recorded runs than MAX_RUNS");
        }
        if dropped > 0 && runs.len() != Self::MAX_RUNS {
            return Err("rounds were dropped but the run list is not at the cap");
        }
        let mut recorded = 0usize;
        let mut prev_end: Option<usize> = None;
        for &(start, len) in &runs {
            if len == 0 {
                return Err("empty run");
            }
            if prev_end.is_some_and(|end| start <= end) {
                // `start == end` would mean two adjacent runs that `push`
                // would have merged; `start < end` is overlap/disorder.
                return Err("runs not ascending and non-adjacent");
            }
            prev_end = Some(start.checked_add(len).ok_or("run end overflows usize")?);
            recorded = recorded
                .checked_add(len)
                .ok_or("run total overflows usize")?;
        }
        if recorded.checked_add(dropped) != Some(total) {
            return Err("total does not equal recorded + dropped");
        }
        Ok(InvalidRounds {
            runs,
            total,
            dropped,
        })
    }
}

/// Equality against a plain round list — convenience for tests. Holds only
/// when nothing was truncated.
impl PartialEq<Vec<usize>> for InvalidRounds {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.dropped == 0 && self.total == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl VerificationSummary {
    /// Returns `true` if every checked round carried a full T-dynamic solution.
    pub fn all_valid(&self) -> bool {
        self.rounds_checked == self.rounds_valid
    }

    /// Fraction of checked rounds with a full T-dynamic solution (1.0 if no
    /// round was checked).
    pub fn valid_fraction(&self) -> f64 {
        if self.rounds_checked == 0 {
            1.0
        } else {
            self.rounds_valid as f64 / self.rounds_checked as f64
        }
    }
}

/// Error returned by the delta observation path of [`TDynamicVerifier`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// [`TDynamicVerifier::observe_delta`] was called before any initial
    /// whole graph was observed: a delta is a change *relative to the
    /// previous round*, so round 0 must be supplied via
    /// [`TDynamicVerifier::observe`] (the `RoundObserver` hook does this
    /// automatically by falling back to the materialized graph).
    DeltaBeforeInitialGraph,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::DeltaBeforeInitialGraph => f.write_str(
                "observe the initial round as a whole graph (TDynamicVerifier::observe) \
                 before feeding deltas",
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Persistent per-node verdict state of the incremental T-dynamic verifier.
///
/// The ledger holds materialized copies of the window graphs (`G^∩T_r`
/// adjacency in `intersection`, `G^∪T_r` adjacency in `union`), the `V^∩T_r`
/// membership flags, the ⊥-densified output vector, and one [`NodeVerdict`]
/// bit-triple per node together with the three violation counters the round
/// summary is built from.
///
/// Per round it consumes the window's [`WindowUpdate`] and the round's
/// output churn, and re-evaluates *only the dirty nodes* — the union of
///
/// * nodes incident to a window-membership event (delta endpoints, edges
///   aging out of the union, runs maturing into the intersection, `V^∩T`
///   entries/exits), and
/// * nodes whose densified output changed, plus their `G^∪T` neighbors
///   (the paper's problems are radius-1 LCLs, so no other node's verdict
///   can depend on the changed output).
///
/// Every other node's verdict is unchanged by construction, which is what
/// makes a checked round `O((|δ| + churn) · Δ)` instead of `O(n + |G^∪T|)`.
/// The full re-check ([`check_t_dynamic`], used by the
/// [`TDynamicVerifier::full_recheck`] oracle mode) remains the reference
/// the equivalence tests compare against.
pub struct ViolationLedger<O> {
    intersection: Graph,
    union: Graph,
    in_vcap: Vec<bool>,
    dense: Vec<O>,
    verdicts: Vec<NodeVerdict>,
    undecided_count: usize,
    packing_count: usize,
    covering_count: usize,
    /// Round-stamped dirty marks (`stamp[v] == cur_stamp` ⇔ already queued
    /// this round), so the dirty set is deduplicated in `O(1)` per mark.
    stamp: Vec<u64>,
    cur_stamp: u64,
    dirty: Vec<NodeId>,
}

impl<O: HasBottom> ViolationLedger<O> {
    /// Builds the ledger by materializing the window graphs once and
    /// evaluating every node of `V^∩T` — the one full check the incremental
    /// verifier performs (on its first checked round).
    pub fn init<P>(problem: &P, window: &GraphWindow, outputs: &[Option<P::Output>]) -> Self
    where
        P: DynamicProblem<Output = O>,
    {
        let n = outputs.len();
        let mut ledger = ViolationLedger {
            intersection: window.intersection_graph(),
            union: window.union_graph(),
            in_vcap: vec![false; n],
            dense: crate::problem::densify_outputs(outputs),
            verdicts: vec![NodeVerdict::CLEAR; n],
            undecided_count: 0,
            packing_count: 0,
            covering_count: 0,
            stamp: vec![0; n],
            cur_stamp: 0,
            dirty: Vec::new(),
        };
        for v in window.intersection_nodes() {
            ledger.in_vcap[v.index()] = true;
            let verdict = node_verdict(
                problem,
                &ledger.intersection,
                &ledger.union,
                v,
                &ledger.dense,
            );
            ledger.set_verdict(v, verdict);
        }
        ledger
    }

    /// Applies one round: patches the materialized window graphs and `V^∩T`
    /// flags from `update`, folds in the round's output churn (`changed`
    /// when the producer tracked it, otherwise a full diff of `outputs`
    /// against the stored dense vector), and re-evaluates the dirty nodes.
    pub fn apply_round<P>(
        &mut self,
        problem: &P,
        update: &WindowUpdate,
        outputs: &[Option<P::Output>],
        changed: Option<&[NodeId]>,
    ) where
        P: DynamicProblem<Output = O>,
    {
        debug_assert!(!update.initial, "initial rounds are handled by init");
        self.cur_stamp += 1;
        self.dirty.clear();

        // 1. Structural patch: every membership event dirties its endpoints.
        for e in &update.inserted {
            self.union.insert_edge(e.u, e.v);
            self.mark(e.u);
            self.mark(e.v);
        }
        for e in &update.removed {
            self.intersection.remove_edge(e.u, e.v);
            self.mark(e.u);
            self.mark(e.v);
        }
        for e in &update.edges_left_union {
            self.union.remove_edge(e.u, e.v);
            self.mark(e.u);
            self.mark(e.v);
        }
        for e in &update.edges_joined_intersection {
            self.intersection.insert_edge(e.u, e.v);
            self.mark(e.u);
            self.mark(e.v);
        }
        for &v in &update.deactivated {
            self.in_vcap[v.index()] = false;
            self.mark(v);
        }
        for &v in &update.woken {
            self.mark(v);
        }
        for &v in &update.nodes_joined_intersection {
            self.in_vcap[v.index()] = true;
            self.mark(v);
        }

        // 2. Output churn: a changed output can flip the verdict of the node
        // itself and of its G^∪T neighbors (radius-1 LCLs) — nobody else.
        match changed {
            Some(list) => {
                for &v in list {
                    self.refresh_output(outputs, v);
                }
            }
            None => {
                for i in 0..self.dense.len() {
                    self.refresh_output(outputs, NodeId::new(i));
                }
            }
        }

        // 3. Re-evaluate exactly the dirty nodes.
        for idx in 0..self.dirty.len() {
            let v = self.dirty[idx];
            let verdict = if self.in_vcap[v.index()] {
                node_verdict(problem, &self.intersection, &self.union, v, &self.dense)
            } else {
                NodeVerdict::CLEAR
            };
            self.set_verdict(v, verdict);
        }
    }

    /// Folds node `v`'s current output into the dense vector, dirtying `v`
    /// and its union neighbors if the densified value actually changed.
    fn refresh_output(&mut self, outputs: &[Option<O>], v: NodeId) {
        let new = outputs[v.index()].clone().unwrap_or_else(O::bottom);
        if new == self.dense[v.index()] {
            return;
        }
        self.dense[v.index()] = new;
        let ViolationLedger {
            union,
            stamp,
            cur_stamp,
            dirty,
            ..
        } = self;
        Self::mark_into(stamp, *cur_stamp, dirty, v);
        for u in union.neighbors(v) {
            Self::mark_into(stamp, *cur_stamp, dirty, u);
        }
    }

    fn mark(&mut self, v: NodeId) {
        let ViolationLedger {
            stamp,
            cur_stamp,
            dirty,
            ..
        } = self;
        Self::mark_into(stamp, *cur_stamp, dirty, v);
    }

    fn mark_into(stamp: &mut [u64], cur: u64, dirty: &mut Vec<NodeId>, v: NodeId) {
        if stamp[v.index()] != cur {
            stamp[v.index()] = cur;
            dirty.push(v);
        }
    }

    /// Replaces `v`'s stored verdict, keeping the three counters consistent.
    fn set_verdict(&mut self, v: NodeId, new: NodeVerdict) {
        let old = &mut self.verdicts[v.index()];
        fn adjust(count: &mut usize, was_bad: bool, is_bad: bool) {
            match (was_bad, is_bad) {
                (false, true) => *count += 1,
                (true, false) => *count -= 1,
                _ => {}
            }
        }
        adjust(&mut self.undecided_count, old.undecided, new.undecided);
        adjust(&mut self.packing_count, !old.packing_ok, !new.packing_ok);
        adjust(&mut self.covering_count, !old.covering_ok, !new.covering_ok);
        *old = new;
    }

    /// Number of undecided nodes in `V^∩T` (as of the last applied round).
    pub fn undecided_count(&self) -> usize {
        self.undecided_count
    }

    /// Number of packing violations on `G^∩T` among `V^∩T`.
    pub fn packing_violation_count(&self) -> usize {
        self.packing_count
    }

    /// Number of covering violations on `G^∪T` among `V^∩T`.
    pub fn covering_violation_count(&self) -> usize {
        self.covering_count
    }
}

/// Streaming T-dynamic verifier (Theorem 1.1, part 1).
///
/// Observes an execution round by round — either through the
/// [`dynnet_runtime::RoundObserver`] hook from a
/// `dynnet_adversary::Scenario`, or by feeding rounds directly via
/// [`TDynamicVerifier::observe`] — and maintains the same
/// [`VerificationSummary`] that the batch [`verify_t_dynamic_run`] computes.
///
/// From its first checked round on, the verifier is *incremental*: a
/// [`ViolationLedger`] keeps per-node verdicts and only re-evaluates the
/// nodes a round can actually flip (the window's [`WindowUpdate`] dirty set
/// plus the output churn and its radius-1 neighborhood), so a checked round
/// costs `O(|δ| + output churn)` instead of materializing and re-checking
/// the whole window. [`TDynamicVerifier::full_recheck`] switches to the
/// materialize-everything oracle path, which the equivalence test suite
/// pins the incremental path against.
///
/// Memory: an `O(window)` ring of deltas (inside [`GraphWindow`]) plus the
/// `O(n + |G^∪T|)` ledger. The execution itself is never materialized, so
/// verification does not bound the scenario sizes that can be checked.
pub struct TDynamicVerifier<P: DynamicProblem> {
    problem: P,
    window_size: usize,
    check_from: usize,
    full_recheck: bool,
    window: Option<GraphWindow>,
    ledger: Option<ViolationLedger<P::Output>>,
    round: usize,
    summary: VerificationSummary,
}

impl<P: DynamicProblem> TDynamicVerifier<P> {
    /// Creates a verifier for `problem` with window size `window` (the
    /// paper's `T`). Checking starts at round `T - 1` (the first round with
    /// a full window, right for synchronous starts); use
    /// [`TDynamicVerifier::check_from`] to allow a longer warm-up.
    pub fn new(problem: P, window: usize) -> Self {
        assert!(window >= 1, "window size T must be at least 1");
        TDynamicVerifier {
            problem,
            window_size: window,
            check_from: window - 1,
            full_recheck: false,
            window: None,
            ledger: None,
            round: 0,
            summary: VerificationSummary::default(),
        }
    }

    /// Sets the first round (0-based) at which the guarantee is asserted.
    pub fn check_from(mut self, round: usize) -> Self {
        self.check_from = round;
        self
    }

    /// Switches to the *oracle* mode: every checked round materializes the
    /// window graphs and re-evaluates all of `V^∩T` via [`check_t_dynamic`]
    /// instead of patching the incremental [`ViolationLedger`]. Slower by
    /// construction — it exists as the reference implementation that the
    /// batch path and the equivalence tests compare the incremental
    /// summaries against.
    pub fn full_recheck(mut self) -> Self {
        self.full_recheck = true;
        self
    }

    /// Feeds the next round (graph + output snapshot) into the verifier.
    ///
    /// On the first call this fixes the universe size and window. Later
    /// calls are the compatibility path: the graph is diffed against the
    /// previous round (`O(n + |E|)`) and the outputs are re-scanned
    /// (`O(n)`); only the *check* stays dirty-set incremental. Streaming
    /// callers holding the round's delta should use
    /// [`TDynamicVerifier::observe_delta`] /
    /// [`TDynamicVerifier::observe_delta_with_churn`], which skip both
    /// scans.
    pub fn observe(&mut self, graph: &Graph, outputs: &[Option<P::Output>]) {
        let _span = dynnet_obs::phase_span("verify", "observe");
        let w = self
            .window
            .get_or_insert_with(|| GraphWindow::new(graph.num_nodes(), self.window_size));
        let update = w.push(graph);
        self.check_round(&update, outputs, None);
    }

    /// Feeds the next round as a delta relative to the previously observed
    /// graph — the `O(|δ|)` window-maintenance path of the delta pipeline.
    ///
    /// # Errors
    /// Returns [`VerifyError::DeltaBeforeInitialGraph`] if no round has been
    /// observed yet: round 0 must be supplied as a whole graph via
    /// [`TDynamicVerifier::observe`] (the [`dynnet_runtime::RoundObserver`]
    /// hook falls back to the materialized graph automatically).
    pub fn observe_delta(
        &mut self,
        delta: &GraphDelta,
        outputs: &[Option<P::Output>],
    ) -> Result<(), VerifyError> {
        self.observe_delta_with_churn(delta, outputs, None)
    }

    /// Like [`TDynamicVerifier::observe_delta`], additionally supplying the
    /// round's output churn: `changed` must list every node whose output
    /// differs from the previous round (extra entries are tolerated). With
    /// it, a checked round costs `O(|δ| + |changed|)`; without it the
    /// verifier diffs the outputs itself in `O(n)`.
    pub fn observe_delta_with_churn(
        &mut self,
        delta: &GraphDelta,
        outputs: &[Option<P::Output>],
        changed: Option<&[NodeId]>,
    ) -> Result<(), VerifyError> {
        let Some(w) = self.window.as_mut() else {
            return Err(VerifyError::DeltaBeforeInitialGraph);
        };
        let _span = dynnet_obs::phase_span("verify", "observe_delta");
        let update = w.push_delta(delta);
        self.check_round(&update, outputs, changed);
        Ok(())
    }

    fn check_round(
        &mut self,
        update: &WindowUpdate,
        outputs: &[Option<P::Output>],
        changed: Option<&[NodeId]>,
    ) {
        let r = self.round;
        self.round += 1;
        if r < self.check_from {
            return;
        }
        // Disjoint field borrows: the window is read while the ledger and
        // summary are written; destructuring proves that to the borrow
        // checker without re-looking the `Option`s up through `expect`.
        let Self {
            problem,
            full_recheck,
            window,
            ledger,
            summary,
            ..
        } = self;
        let Some(w) = window.as_ref() else {
            // Both callers create the window before producing the round's
            // WindowUpdate, so there is nothing to check here.
            debug_assert!(false, "check_round before the first observed round");
            return;
        };
        let (undecided, packing, covering) = if *full_recheck {
            let report = check_t_dynamic(problem, w, outputs);
            (
                report.undecided.len(),
                report.packing_violations.len(),
                report.covering_violations.len(),
            )
        } else {
            // First checked round: one full evaluation seeds the ledger.
            // Every following round is checked too (rounds are consecutive
            // past `check_from`), so patching from the round's WindowUpdate
            // keeps the ledger exact.
            let ledger = match ledger {
                Some(ledger) => {
                    ledger.apply_round(problem, update, outputs, changed);
                    ledger
                }
                None => ledger.insert(ViolationLedger::init(problem, w, outputs)),
            };
            (
                ledger.undecided_count(),
                ledger.packing_violation_count(),
                ledger.covering_violation_count(),
            )
        };
        summary.rounds_checked += 1;
        summary.total_packing_violations += packing;
        summary.total_covering_violations += covering;
        summary.total_undecided += undecided;
        if packing == 0 && covering == 0 {
            summary.rounds_partial_valid += 1;
            if undecided == 0 {
                summary.rounds_valid += 1;
                if summary.first_valid_round.is_none() {
                    summary.first_valid_round = Some(r);
                }
                return;
            }
        }
        summary.invalid_rounds.push(r);
    }

    /// Number of rounds observed so far.
    pub fn rounds_observed(&self) -> usize {
        self.round
    }

    /// The verification summary accumulated so far.
    pub fn summary(&self) -> &VerificationSummary {
        &self.summary
    }

    /// Consumes the verifier into its summary.
    pub fn into_summary(self) -> VerificationSummary {
        self.summary
    }
}

/// Pull-style metric export: the verifier's aggregate ledger counters
/// (`verify.*`) plus its window's maintenance-queue depths (`window.*`), for
/// inclusion in a [`dynnet_obs::Snapshot`]. Window metrics appear once the
/// first round has been observed.
impl<P: DynamicProblem> dynnet_obs::MetricSource for TDynamicVerifier<P> {
    fn collect(&self, out: &mut dynnet_obs::Snapshot) {
        let s = &self.summary;
        out.set("verify.rounds_checked", s.rounds_checked as u64);
        out.set("verify.rounds_valid", s.rounds_valid as u64);
        out.set("verify.rounds_partial_valid", s.rounds_partial_valid as u64);
        out.set(
            "verify.packing_violations",
            s.total_packing_violations as u64,
        );
        out.set(
            "verify.covering_violations",
            s.total_covering_violations as u64,
        );
        out.set("verify.undecided", s.total_undecided as u64);
        if let Some(w) = &self.window {
            let depths = w.queue_depths();
            out.set("window.gc_queue_depth", depths.gc as u64);
            out.set("window.edge_maturity_depth", depths.edge_maturity as u64);
            out.set("window.node_maturity_depth", depths.node_maturity as u64);
        }
    }
}

impl<P: DynamicProblem> dynnet_runtime::RoundObserver<P::Output> for TDynamicVerifier<P> {
    fn on_round(&mut self, view: &dynnet_runtime::RoundView<'_, P::Output>) {
        match view.delta {
            // Delta path: O(|δ|) window update, no CSR→Graph conversion;
            // the simulator's churn list makes the check O(|δ| + churn).
            Some(delta) if self.window.is_some() => self
                .observe_delta_with_churn(delta, view.outputs, view.changed_outputs)
                .expect("window initialized"),
            _ => self.observe(view.current_graph(), view.outputs),
        }
    }
}

/// Verifies the T-dynamic property (Theorem 1.1, part 1) over a fully
/// materialized execution — a batch convenience over [`TDynamicVerifier`].
///
/// This is the *oracle* path: every checked round materializes the window
/// graphs and re-evaluates all of `V^∩T` ([`TDynamicVerifier::full_recheck`]
/// mode). The equivalence tests assert that the incremental streaming
/// verifier produces an identical [`VerificationSummary`].
///
/// * `graphs` — the dynamic graph sequence `G_0, G_1, …` (one per round);
/// * `outputs` — per round, the simulator's outputs (`None` = asleep);
/// * `window` — the window size `T`;
/// * `check_from` — first round (0-based) at which the guarantee is asserted
///   (use `T - 1` for synchronous starts, or later to allow a warm-up).
pub fn verify_t_dynamic_run<P: DynamicProblem + Clone>(
    problem: &P,
    graphs: &[Graph],
    outputs: &[Vec<Option<P::Output>>],
    window: usize,
    check_from: usize,
) -> VerificationSummary {
    assert_eq!(graphs.len(), outputs.len(), "one output snapshot per round");
    let mut verifier = TDynamicVerifier::new(problem.clone(), window)
        .check_from(check_from)
        .full_recheck();
    for (g, outs) in graphs.iter().zip(outputs) {
        verifier.observe(g, outs);
    }
    verifier.into_summary()
}

/// Returns the last round in which node `v`'s output differs from its output
/// in the following round, i.e. the round after which the output is stable to
/// the end of the execution. Returns `None` if the output never changes.
pub fn last_change_round<O: PartialEq>(outputs: &[Vec<Option<O>>], v: NodeId) -> Option<usize> {
    let mut last = None;
    for r in 1..outputs.len() {
        if outputs[r][v.index()] != outputs[r - 1][v.index()] {
            last = Some(r);
        }
    }
    last
}

/// Checks the locally-static guarantee (Theorem 1.1, part 2) for one node:
/// the output of `v` must be decided and unchanged in every round of
/// `[stable_from, to]` (inclusive bounds, absolute round indices).
pub fn verify_locally_static<O: HasBottom>(
    outputs: &[Vec<Option<O>>],
    v: NodeId,
    stable_from: usize,
    to: usize,
) -> bool {
    if stable_from > to || to >= outputs.len() {
        return false;
    }
    let reference = &outputs[stable_from][v.index()];
    let Some(ref_val) = reference.as_ref() else {
        return false;
    };
    if ref_val.is_bottom() {
        return false;
    }
    (stable_from..=to).all(|r| outputs[r][v.index()].as_ref() == Some(ref_val))
}

/// Counts, per round, how many of the given nodes changed their output
/// relative to the previous round — the "output churn" time series.
pub fn output_churn_series<O: PartialEq>(
    outputs: &[Vec<Option<O>>],
    nodes: &[NodeId],
) -> Vec<usize> {
    let mut series = vec![0usize];
    for r in 1..outputs.len() {
        let changed = nodes
            .iter()
            .filter(|v| outputs[r][v.index()] != outputs[r - 1][v.index()])
            .count();
        series.push(changed);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::ColoringProblem;
    use crate::output::ColorOutput;
    use dynnet_graph::Edge;

    fn g(n: usize, edges: &[(usize, usize)]) -> Graph {
        Graph::from_edges(n, edges.iter().map(|&(a, b)| Edge::of(a, b)))
    }

    fn colored(cs: &[usize]) -> Vec<Option<ColorOutput>> {
        cs.iter()
            .map(|&c| {
                Some(if c == 0 {
                    ColorOutput::Undecided
                } else {
                    ColorOutput::Colored(c)
                })
            })
            .collect()
    }

    #[test]
    fn verify_run_counts_valid_rounds() {
        let graphs = vec![g(2, &[(0, 1)]), g(2, &[(0, 1)]), g(2, &[(0, 1)])];
        let outputs = vec![
            colored(&[0, 0]),
            colored(&[1, 2]),
            colored(&[1, 1]), // conflict in the last round
        ];
        let p = ColoringProblem;
        let summary = verify_t_dynamic_run(&p, &graphs, &outputs, 2, 1);
        assert_eq!(summary.rounds_checked, 2);
        assert_eq!(summary.rounds_valid, 1);
        assert_eq!(summary.first_valid_round, Some(1));
        assert_eq!(summary.invalid_rounds, vec![2]);
        assert!(!summary.all_valid());
        assert!((summary.valid_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(summary.total_packing_violations, 2);
    }

    #[test]
    fn check_from_skips_warmup() {
        let graphs = vec![g(2, &[(0, 1)]); 4];
        let outputs = vec![
            colored(&[0, 0]),
            colored(&[0, 0]),
            colored(&[1, 2]),
            colored(&[1, 2]),
        ];
        let p = ColoringProblem;
        let summary = verify_t_dynamic_run(&p, &graphs, &outputs, 2, 2);
        assert!(summary.all_valid());
        assert_eq!(summary.rounds_checked, 2);
    }

    #[test]
    fn locally_static_verification() {
        let outputs = vec![
            colored(&[0, 1]),
            colored(&[2, 1]),
            colored(&[2, 1]),
            colored(&[2, 3]),
        ];
        let v0 = NodeId::new(0);
        let v1 = NodeId::new(1);
        assert!(verify_locally_static(&outputs, v0, 1, 3));
        assert!(!verify_locally_static(&outputs, v0, 0, 3), "⊥ at the start");
        assert!(
            !verify_locally_static(&outputs, v1, 1, 3),
            "changes in round 3"
        );
        assert!(verify_locally_static(&outputs, v1, 0, 2));
        assert!(!verify_locally_static(&outputs, v0, 2, 5), "out of range");
        assert_eq!(last_change_round(&outputs, v0), Some(1));
        assert_eq!(last_change_round(&outputs, v1), Some(3));
    }

    #[test]
    fn invalid_rounds_run_length_is_bounded() {
        // A million-round always-invalid run collapses into a single run.
        let mut inv = InvalidRounds::default();
        for r in 0..1_000_000 {
            inv.push(r);
        }
        assert_eq!(inv.len(), 1_000_000);
        assert_eq!(inv.runs(), &[(0, 1_000_000)]);
        assert_eq!(inv.truncated(), 0);
        assert!(inv.contains(999_999) && !inv.contains(1_000_000));

        // Adversarial alternation (no two invalid rounds adjacent) caps the
        // recorded runs; the total stays exact.
        let mut alt = InvalidRounds::default();
        for r in 0..10_000 {
            alt.push(2 * r);
        }
        assert_eq!(alt.len(), 10_000);
        assert_eq!(alt.runs().len(), InvalidRounds::MAX_RUNS);
        assert_eq!(alt.truncated(), 10_000 - InvalidRounds::MAX_RUNS);
        assert!(alt.contains(0) && alt.contains(2 * (InvalidRounds::MAX_RUNS - 1)));
        assert!(!alt.contains(1));

        // Mixed runs round-trip through the iterator, and Vec equality
        // works while nothing is truncated.
        let mut mixed = InvalidRounds::default();
        for r in [3usize, 4, 5, 9, 12, 13] {
            mixed.push(r);
        }
        assert_eq!(mixed.to_vec(), vec![3, 4, 5, 9, 12, 13]);
        assert_eq!(mixed, vec![3, 4, 5, 9, 12, 13]);
        assert_eq!(mixed.runs(), &[(3, 3), (9, 1), (12, 2)]);
        assert!(!mixed.is_empty());
    }

    #[test]
    fn invalid_rounds_from_parts_validates() {
        // Any value produced by push round-trips through its parts.
        let mut inv = InvalidRounds::default();
        for r in [3usize, 4, 5, 9, 12, 13] {
            inv.push(r);
        }
        let back =
            InvalidRounds::from_parts(inv.runs().to_vec(), inv.len(), inv.truncated()).unwrap();
        assert_eq!(back, inv);

        // Truncated values round-trip too.
        let mut alt = InvalidRounds::default();
        for r in 0..2 * (InvalidRounds::MAX_RUNS + 7) {
            if r % 2 == 0 {
                alt.push(r);
            }
        }
        assert!(alt.truncated() > 0);
        let back =
            InvalidRounds::from_parts(alt.runs().to_vec(), alt.len(), alt.truncated()).unwrap();
        assert_eq!(back, alt);

        // Structural violations are rejected.
        assert!(
            InvalidRounds::from_parts(vec![(0, 0)], 0, 0).is_err(),
            "empty run"
        );
        assert!(
            InvalidRounds::from_parts(vec![(5, 1), (3, 1)], 2, 0).is_err(),
            "descending runs"
        );
        assert!(
            InvalidRounds::from_parts(vec![(3, 2), (5, 1)], 3, 0).is_err(),
            "adjacent runs must be merged"
        );
        assert!(
            InvalidRounds::from_parts(vec![(3, 1)], 5, 0).is_err(),
            "total mismatch"
        );
        assert!(
            InvalidRounds::from_parts(vec![(3, 1)], 2, 1).is_err(),
            "dropped rounds require a full run list"
        );
        assert!(
            InvalidRounds::from_parts(vec![(usize::MAX, 2)], 2, 0).is_err(),
            "run end overflow"
        );
    }

    #[test]
    fn churn_series() {
        let outputs = vec![
            colored(&[0, 0]),
            colored(&[1, 0]),
            colored(&[1, 2]),
            colored(&[1, 2]),
        ];
        let nodes: Vec<NodeId> = (0..2).map(NodeId::new).collect();
        assert_eq!(output_churn_series(&outputs, &nodes), vec![0, 1, 1, 0]);
    }

    // The observe_delta-before-graph error and the window-expiry verdict
    // flip are covered (against real scenarios) in
    // tests/verify_incremental.rs alongside the adversary equivalence suite.

    /// Minimal deterministic generator for the randomized equivalence tests
    /// (the crate has no RNG dependency).
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        fn below(&mut self, m: u64) -> u64 {
            self.next() % m
        }

        fn chance(&mut self, percent: u64) -> bool {
            self.below(100) < percent
        }
    }

    /// Drives the incremental verifier (deltas + exact churn lists) and the
    /// full-recheck oracle (whole graphs) over the same random execution,
    /// asserting identical summaries after every round.
    fn assert_equivalence<P, FOut>(
        problem: P,
        t: usize,
        check_from: usize,
        seed: u64,
        rand_out: FOut,
    ) where
        P: DynamicProblem + Clone,
        FOut: Fn(&mut Lcg) -> Option<P::Output>,
    {
        let n = 10;
        let mut rng = Lcg(seed);
        let mut incremental = TDynamicVerifier::new(problem.clone(), t).check_from(check_from);
        let mut oracle = TDynamicVerifier::new(problem, t)
            .check_from(check_from)
            .full_recheck();

        let mut graph = Graph::new_all_asleep(n);
        for i in 0..n {
            if rng.chance(70) {
                graph.activate(NodeId::new(i));
            }
        }
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| rand_out(&mut rng)).collect();
        incremental.observe(&graph, &outputs);
        oracle.observe(&graph, &outputs);

        for round in 1..40 {
            let mut next = graph.clone();
            for _ in 0..rng.below(4) {
                let a = NodeId::new(rng.below(n as u64) as usize);
                let b = NodeId::new(rng.below(n as u64) as usize);
                if a != b && next.is_active(a) && next.is_active(b) {
                    next.toggle_edge(a, b);
                }
            }
            if rng.chance(25) {
                let v = NodeId::new(rng.below(n as u64) as usize);
                if next.is_active(v) {
                    for u in next.neighbors_vec(v) {
                        next.remove_edge(v, u);
                    }
                    next.deactivate(v);
                } else {
                    next.activate(v);
                }
            }
            let delta = GraphDelta::between(&graph, &next);
            let mut changed = Vec::new();
            for (i, out) in outputs.iter_mut().enumerate() {
                if rng.chance(20) {
                    let o = rand_out(&mut rng);
                    if o != *out {
                        *out = o;
                        changed.push(NodeId::new(i));
                    }
                }
            }
            incremental
                .observe_delta_with_churn(&delta, &outputs, Some(&changed))
                .unwrap();
            oracle.observe(&next, &outputs);
            graph = next;
            assert_eq!(
                incremental.summary(),
                oracle.summary(),
                "T={t} check_from={check_from} seed={seed} diverged at round {round}"
            );
        }
    }

    #[test]
    fn incremental_coloring_matches_oracle_on_random_runs() {
        let rand_color = |rng: &mut Lcg| -> Option<ColorOutput> {
            if rng.chance(10) {
                None
            } else if rng.chance(25) {
                Some(ColorOutput::Undecided)
            } else {
                Some(ColorOutput::Colored(1 + rng.below(4) as usize))
            }
        };
        for t in [1usize, 2, 3, 5] {
            for seed in 0..4u64 {
                assert_equivalence(ColoringProblem, t, t - 1, seed, rand_color);
            }
        }
        // Early and late check starts exercise ledger creation before the
        // window is full and after a long warm-up.
        assert_equivalence(ColoringProblem, 3, 0, 99, rand_color);
        assert_equivalence(ColoringProblem, 3, 10, 100, rand_color);
    }

    #[test]
    fn incremental_mis_matches_oracle_on_random_runs() {
        use crate::mis::MisProblem;
        use crate::output::MisOutput;
        let rand_mis = |rng: &mut Lcg| -> Option<MisOutput> {
            match rng.below(10) {
                0 => None,
                1 | 2 => Some(MisOutput::Undecided),
                3..=6 => Some(MisOutput::InMis),
                _ => Some(MisOutput::Dominated),
            }
        };
        for t in [1usize, 2, 4] {
            for seed in 10..14u64 {
                assert_equivalence(MisProblem, t, t - 1, seed, rand_mis);
            }
        }
    }
}
