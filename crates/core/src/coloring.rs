//! The (degree+1)-coloring problem as a packing/covering pair (Section 4).
//!
//! * Packing part `CP`: *proper* coloring without a bound on the number of
//!   colors — removing edges cannot invalidate it.
//! * Covering part `CC`: the (possibly improper) coloring where each node's
//!   color lies in `{1, …, deg(v)+1}` — adding edges only increases degrees
//!   and cannot invalidate it.
//!
//! Their intersection is the classic (degree+1) coloring problem. The paper's
//! characterization of partial solutions (end of Section 4.1):
//!
//! * a vector is **partial packing** iff the decided nodes form a proper
//!   coloring;
//! * a vector is **partial covering** iff every decided node's color is in
//!   `[d(v)+1]` (independent of the other nodes' colors).

use crate::output::{ColorOutput, HasBottom};
use crate::problem::DynamicProblem;
use dynnet_graph::{Graph, NodeId};

/// The (degree+1)-coloring problem `(CP, CC)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ColoringProblem;

impl DynamicProblem for ColoringProblem {
    type Output = ColorOutput;

    fn name(&self) -> &'static str {
        "(degree+1)-coloring"
    }

    fn partial_packing_ok_at(&self, g: &Graph, v: NodeId, out: &[ColorOutput]) -> bool {
        let Some(c) = out[v.index()].color() else {
            return true;
        };
        g.neighbors(v).all(|w| out[w.index()].color() != Some(c))
    }

    fn partial_covering_ok_at(&self, g: &Graph, v: NodeId, out: &[ColorOutput]) -> bool {
        match out[v.index()].color() {
            None => true,
            Some(c) => c >= 1 && c <= g.degree(v) + 1,
        }
    }

    fn covering_solution_ok_at(&self, g: &Graph, v: NodeId, out: &[ColorOutput]) -> bool {
        out[v.index()].is_decided() && self.partial_covering_ok_at(g, v, out)
    }
}

/// Counts the number of *conflict edges* (both endpoints decided with the
/// same color) in `g` — the quantity Corollary 1.2 keeps small at all times.
pub fn conflict_edges(g: &Graph, out: &[ColorOutput]) -> usize {
    g.edges()
        .filter(|e| {
            matches!(
                (out[e.u.index()].color(), out[e.v.index()].color()),
                (Some(a), Some(b)) if a == b
            )
        })
        .count()
}

/// The number of distinct colors used by decided nodes.
pub fn num_colors_used(out: &[ColorOutput]) -> usize {
    let mut cs: Vec<usize> = out.iter().filter_map(|o| o.color()).collect();
    cs.sort_unstable();
    cs.dedup();
    cs.len()
}

/// The largest color used by decided nodes (0 if none).
pub fn max_color_used(out: &[ColorOutput]) -> usize {
    out.iter().filter_map(|o| o.color()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_graph::Edge;

    fn path3() -> Graph {
        Graph::from_edges(3, [Edge::of(0, 1), Edge::of(1, 2)])
    }

    fn colored(cs: &[usize]) -> Vec<ColorOutput> {
        cs.iter()
            .map(|&c| {
                if c == 0 {
                    ColorOutput::Undecided
                } else {
                    ColorOutput::Colored(c)
                }
            })
            .collect()
    }

    #[test]
    fn partial_packing_checks_proper_coloring_of_decided_nodes() {
        let g = path3();
        let p = ColoringProblem;
        let ok = colored(&[1, 2, 1]);
        assert!((0..3).all(|i| p.partial_packing_ok_at(&g, NodeId::new(i), &ok)));
        let conflict = colored(&[1, 1, 2]);
        assert!(!p.partial_packing_ok_at(&g, NodeId::new(0), &conflict));
        assert!(!p.partial_packing_ok_at(&g, NodeId::new(1), &conflict));
        assert!(p.partial_packing_ok_at(&g, NodeId::new(2), &conflict));
        // Undecided nodes never violate packing; a decided node adjacent only
        // to undecided nodes is fine.
        let partial = colored(&[1, 0, 1]);
        assert!((0..3).all(|i| p.partial_packing_ok_at(&g, NodeId::new(i), &partial)));
    }

    #[test]
    fn partial_covering_checks_color_range() {
        let g = path3();
        let p = ColoringProblem;
        // Node 0 has degree 1 -> colors 1..=2 allowed.
        assert!(p.partial_covering_ok_at(&g, NodeId::new(0), &colored(&[2, 0, 0])));
        assert!(!p.partial_covering_ok_at(&g, NodeId::new(0), &colored(&[3, 0, 0])));
        // Node 1 has degree 2 -> color 3 allowed.
        assert!(p.partial_covering_ok_at(&g, NodeId::new(1), &colored(&[0, 3, 0])));
        // Undecided nodes always pass the partial covering check.
        assert!(p.partial_covering_ok_at(&g, NodeId::new(2), &colored(&[0, 0, 0])));
    }

    #[test]
    fn full_solution_checks_require_decided() {
        let g = path3();
        let p = ColoringProblem;
        let out = colored(&[1, 0, 1]);
        assert!(!p.packing_solution_ok_at(&g, NodeId::new(1), &out));
        assert!(!p.covering_solution_ok_at(&g, NodeId::new(1), &out));
        assert!(p.packing_solution_ok_at(&g, NodeId::new(0), &out));
        assert!(p.covering_solution_ok_at(&g, NodeId::new(0), &out));
    }

    #[test]
    fn is_partial_solution_over_nodes() {
        let g = path3();
        let p = ColoringProblem;
        let nodes: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        assert!(p.is_partial_solution(&g, &colored(&[1, 2, 0]), &nodes));
        assert!(!p.is_partial_solution(&g, &colored(&[1, 1, 0]), &nodes));
        assert_eq!(
            p.partial_violations(&g, &colored(&[1, 1, 0]), &nodes),
            vec![NodeId::new(0), NodeId::new(1)]
        );
    }

    #[test]
    fn conflict_and_color_metrics() {
        let g = path3();
        assert_eq!(conflict_edges(&g, &colored(&[1, 1, 1])), 2);
        assert_eq!(conflict_edges(&g, &colored(&[1, 2, 1])), 0);
        assert_eq!(num_colors_used(&colored(&[1, 2, 1])), 2);
        assert_eq!(max_color_used(&colored(&[1, 5, 1])), 5);
        assert_eq!(max_color_used(&colored(&[0, 0, 0])), 0);
    }

    #[test]
    fn problem_metadata() {
        let p = ColoringProblem;
        assert_eq!(p.radius(), 1);
        assert_eq!(p.name(), "(degree+1)-coloring");
        assert!(ColorOutput::bottom().is_bottom());
    }
}
