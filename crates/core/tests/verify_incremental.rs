//! Oracle-equivalence suite for the incremental T-dynamic verifier.
//!
//! Every built-in adversary drives a real scenario (the paper's combined
//! Concat algorithms for coloring and MIS) with the *incremental*
//! `TDynamicVerifier` attached as a streaming observer — the `O(|δ| +
//! output churn)` path fed by the simulator's churn lists and the window's
//! `WindowUpdate` dirty sets. The execution is recorded and re-verified with
//! the batch `verify_t_dynamic_run` oracle (full re-check of every round);
//! the two `VerificationSummary` values must be identical in every field.
//!
//! Also covered here: the window-expiry edge case (a verdict flips on a
//! round whose delta is empty, purely because an edge aged out of the
//! union) and the regression test for `observe_delta` before an initial
//! graph (a documented error, not a panic).

use dynnet_adversary::{
    Adversary, BurstAdversary, ConflictSeekingAdversary, FlipChurnAdversary, GrowthAdversary,
    LocallyStaticAdversary, MarkovChurnAdversary, MobilityAdversary, MobilityConfig,
    NodeChurnAdversary, OutputAdversary, PhaseAdversary, RateChurnAdversary, Scenario,
    ScriptedAdversary, StaticAdversary,
};
use dynnet_algorithms::coloring::dynamic_coloring;
use dynnet_algorithms::mis::dynamic_mis;
use dynnet_core::{
    verify_t_dynamic_run, ColorOutput, ColoringProblem, DynamicProblem, MisOutput, MisProblem,
    TDynamicVerifier, VerifyError,
};
use dynnet_graph::{generators, DynamicGraphTrace, Graph, GraphDelta, NodeId};
use dynnet_runtime::rng::experiment_rng;
use dynnet_runtime::{AlgorithmFactory, NodeAlgorithm, TraceRecorder};

const N: usize = 24;
const WINDOWS: &[usize] = &[2, 6];

fn footprint(seed: u64) -> Graph {
    generators::erdos_renyi_avg_degree(N, 4.0, &mut experiment_rng(seed, "verify-incr"))
}

/// Runs one scenario with the incremental verifier streaming alongside a
/// recorder, then replays the recorded execution through the batch oracle
/// and asserts byte-identical summaries.
fn assert_incremental_matches_oracle<P, A, F, Adv>(
    name: &str,
    problem: P,
    factory: F,
    adv: Adv,
    window: usize,
    rounds: usize,
) where
    P: DynamicProblem + Clone,
    A: NodeAlgorithm<Output = P::Output>,
    F: AlgorithmFactory<A>,
    Adv: OutputAdversary<P::Output>,
{
    let mut recorder = TraceRecorder::new();
    let mut incremental = TDynamicVerifier::new(problem.clone(), window);
    Scenario::new(N)
        .algorithm(factory)
        .adversary(adv)
        .seed(11)
        .rounds(rounds)
        .run(&mut [&mut recorder, &mut incremental]);

    let record = recorder.into_record();
    let graphs: Vec<Graph> = (0..record.num_rounds())
        .map(|r| record.graph_at(r))
        .collect();
    let outputs: Vec<Vec<Option<P::Output>>> = (0..record.num_rounds())
        .map(|r| record.outputs_at(r).to_vec())
        .collect();
    let oracle = verify_t_dynamic_run(&problem, &graphs, &outputs, window, window - 1);
    let summary = incremental.into_summary();
    assert_eq!(
        summary, oracle,
        "incremental verifier diverged from the full-recheck oracle: {name} (T = {window})"
    );
    assert_eq!(summary.rounds_checked, rounds - (window - 1), "{name}");
}

/// Runs one adversary against both problems (and their combined algorithms)
/// across the window sizes under test.
macro_rules! check_both_problems {
    ($name:expr, $window:ident, $rounds:ident, $mk_coloring_adv:expr, $mk_mis_adv:expr) => {
        for &$window in WINDOWS {
            let $rounds = 4 * $window + 8;
            assert_incremental_matches_oracle(
                concat!($name, "/coloring"),
                ColoringProblem,
                dynamic_coloring($window),
                $mk_coloring_adv,
                $window,
                $rounds,
            );
            assert_incremental_matches_oracle(
                concat!($name, "/mis"),
                MisProblem,
                dynamic_mis(N, $window),
                $mk_mis_adv,
                $window,
                $rounds,
            );
        }
    };
    ($name:expr, $window:ident, $rounds:ident, $mk_adv:expr) => {
        check_both_problems!($name, $window, $rounds, $mk_adv, $mk_adv)
    };
}

#[test]
fn static_adversary() {
    check_both_problems!("static", w, _r, StaticAdversary::new(footprint(1)));
}

#[test]
fn scripted_adversary() {
    check_both_problems!("scripted", w, rounds, {
        // Pre-record a flip-churn schedule so the scripted path replays a
        // genuinely dynamic trace.
        let mut churn = FlipChurnAdversary::new(&footprint(2), 0.05, 3);
        let g0 = Adversary::initial_graph(&mut churn);
        let mut trace = DynamicGraphTrace::new(g0.clone());
        let mut g = g0;
        for r in 1..rounds as u64 {
            let d = Adversary::next_delta(&mut churn, r, &g);
            d.apply(&mut g);
            trace.push_delta(d);
        }
        ScriptedAdversary::new(trace)
    });
}

#[test]
fn phase_adversary() {
    check_both_problems!(
        "phase",
        w,
        _r,
        PhaseAdversary::new(vec![
            (
                0,
                Box::new(StaticAdversary::new(footprint(4))) as Box<dyn Adversary>
            ),
            (6, Box::new(FlipChurnAdversary::new(&footprint(4), 0.08, 5))),
            (
                (2 * w + 4) as u64,
                Box::new(RateChurnAdversary::new(footprint(4), 2, 2, 6)),
            ),
        ])
    );
}

#[test]
fn markov_churn_adversary() {
    check_both_problems!(
        "markov",
        w,
        _r,
        MarkovChurnAdversary::new(&footprint(7), 0.1, 0.1, true, 8)
    );
}

#[test]
fn flip_churn_adversary() {
    check_both_problems!(
        "flip",
        w,
        _r,
        FlipChurnAdversary::new(&footprint(9), 0.08, 10)
    );
}

#[test]
fn rate_churn_adversary() {
    check_both_problems!(
        "rate",
        w,
        _r,
        RateChurnAdversary::new(footprint(11), 3, 3, 12)
    );
}

#[test]
fn burst_adversary() {
    check_both_problems!(
        "burst",
        w,
        _r,
        BurstAdversary::new(footprint(13), (w + 2) as u64, (w / 2 + 1) as u64, 4, 14)
    );
}

#[test]
fn node_churn_adversary() {
    check_both_problems!(
        "node-churn",
        w,
        _r,
        NodeChurnAdversary::new(footprint(15), 0.05, 0.2, 16)
    );
}

#[test]
fn growth_adversary() {
    check_both_problems!("growth", w, _r, GrowthAdversary::new(footprint(17), 6, 2));
}

#[test]
fn mobility_adversary() {
    check_both_problems!(
        "mobility",
        w,
        _r,
        MobilityAdversary::new(
            MobilityConfig {
                n: N,
                radius: 0.3,
                ..Default::default()
            },
            18,
        )
    );
}

#[test]
fn locally_static_adversary() {
    check_both_problems!(
        "locally-static",
        w,
        _r,
        LocallyStaticAdversary::new(footprint(19), vec![NodeId::new(0)], 2, 0.2, 20)
    );
}

#[test]
fn conflict_seeking_adversary() {
    check_both_problems!(
        "conflict-seeking",
        w,
        _r,
        ConflictSeekingAdversary::new(
            footprint(21),
            |a: &ColorOutput, b: &ColorOutput| {
                matches!((a, b), (ColorOutput::Colored(x), ColorOutput::Colored(y)) if x == y)
            },
            3,
            0.05,
            (2 * w) as u64,
            22,
        ),
        ConflictSeekingAdversary::new(
            footprint(21),
            |a: &MisOutput, b: &MisOutput| {
                matches!((a, b), (MisOutput::InMis, MisOutput::InMis))
            },
            3,
            0.05,
            (2 * w) as u64,
            22,
        )
    );
}

#[test]
fn window_expiry_flips_verdict_on_empty_delta() {
    // MIS on two nodes, T = 2: the edge {0,1} exists only in round 0 and
    // node 1 stays Dominated. In round 1 (first check) the edge is still in
    // G^∪2, so domination holds; in round 2 the delta is empty and the
    // outputs are unchanged — the *only* event is the edge's last present
    // round sliding out of the window. The incremental verifier must flip
    // node 1 to a covering violation from the expiry event alone.
    let outs = vec![Some(MisOutput::InMis), Some(MisOutput::Dominated)];
    let run = |mut v: TDynamicVerifier<MisProblem>| {
        let g0 = Graph::from_edges(2, [dynnet_graph::Edge::of(0, 1)]);
        v.observe(&g0, &outs);
        let mut d1 = GraphDelta::new();
        d1.remove(NodeId::new(0), NodeId::new(1));
        v.observe_delta_with_churn(&d1, &outs, Some(&[])).unwrap();
        v.observe_delta_with_churn(&GraphDelta::new(), &outs, Some(&[]))
            .unwrap();
        v.into_summary()
    };
    let incremental = run(TDynamicVerifier::new(MisProblem, 2));
    let oracle = run(TDynamicVerifier::new(MisProblem, 2).full_recheck());
    assert_eq!(incremental, oracle);
    assert_eq!(incremental.invalid_rounds, vec![2]);
    assert_eq!(incremental.total_covering_violations, 1);
    assert_eq!(incremental.rounds_valid, 1);
}

#[test]
fn observe_delta_before_initial_graph_returns_error() {
    // Regression: this used to panic via `Option::expect`. A delta is only
    // meaningful relative to an observed previous round, so the verifier
    // reports a documented error instead.
    let mut v = TDynamicVerifier::new(ColoringProblem, 3);
    let outs: Vec<Option<ColorOutput>> = vec![None; 4];
    assert_eq!(
        v.observe_delta(&GraphDelta::new(), &outs),
        Err(VerifyError::DeltaBeforeInitialGraph)
    );
    // The failed call observes nothing; a whole-graph round unblocks deltas.
    assert_eq!(v.rounds_observed(), 0);
    v.observe(&Graph::new(4), &outs);
    assert!(v.observe_delta(&GraphDelta::new(), &outs).is_ok());
    assert_eq!(v.rounds_observed(), 2);
}
