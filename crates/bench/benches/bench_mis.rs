//! Per-round cost of the MIS algorithms (Luby, DMis, Ghaffari, SMis and the
//! combined Corollary 1.3 algorithm) on a churning network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

const ROUNDS: usize = 10;

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    {
        let &n = &1_000usize;
        let footprint = generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(7, "bm"));
        let window = recommended_window(n);

        group.bench_with_input(BenchmarkId::new("luby_static_20_rounds", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Simulator::new(n, LubyMis::new, AllAtStart, SimConfig::sequential(1));
                sim.run_static(&footprint, ROUNDS).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("dmis_churn_20_rounds", n), &n, |b, &n| {
            b.iter(|| {
                let factory = |v: NodeId| DMis::new(v, MisOutput::Undecided);
                let mut sim = Simulator::new(n, factory, AllAtStart, SimConfig::sequential(2));
                let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 3);
                run(&mut sim, &mut adv, ROUNDS).num_rounds()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("ghaffari_static_20_rounds", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let factory = move |v: NodeId| GhaffariMis::new(v, n);
                    let mut sim = Simulator::new(n, factory, AllAtStart, SimConfig::sequential(4));
                    sim.run_static(&footprint, ROUNDS).len()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("smis_churn_20_rounds", n), &n, |b, &n| {
            b.iter(|| {
                let factory = move |v: NodeId| SMis::new(v, n);
                let mut sim = Simulator::new(n, factory, AllAtStart, SimConfig::sequential(5));
                let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 6);
                run(&mut sim, &mut adv, ROUNDS).num_rounds()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("combined_corollary13_20_rounds", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sim = Simulator::new(
                        n,
                        dynamic_mis(n, window),
                        AllAtStart,
                        SimConfig::sequential(7),
                    );
                    let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 8);
                    run(&mut sim, &mut adv, ROUNDS).num_rounds()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);
