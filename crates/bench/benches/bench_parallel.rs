//! Worker-pool benchmarks: per-round latency of the parallel executor at
//! 100k nodes (the pool is persistent — zero thread spawns per round, and
//! output publication/churn detection is fused into the parallel receive
//! phase, so no sequential `O(n)` scan remains on the round path), and
//! sweep × inner-parallelism co-scheduling under the shared thread budget.
//!
//! Run with `DYNNET_RAYON_THREADS=k` to measure different budget widths;
//! the pool stats printed after each group certify that no thread was
//! spawned while the rounds executed.

use criterion::{criterion_group, criterion_main, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet_bench::report::{mean_ns, median_ns, write_round_bench, RoundBenchRecord};
use std::time::{Duration, Instant};

/// One parallel round at `n` nodes: persistent simulator, static-footprint
/// flip churn, DMis per node.
fn round_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_round");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let n = 100_000;
    let footprint = generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(15, "bp"));
    let mut records = Vec::new();
    for (label, parallel) in [("sequential", false), ("parallel", true)] {
        let config = SimConfig {
            seed: 15,
            parallel,
            parallel_threshold: 0,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            n,
            |v: NodeId| DMis::new(v, MisOutput::Undecided),
            AllAtStart,
            config,
        );
        // Warm the pool and wake everyone before measuring.
        sim.step_streaming(&footprint);
        let spawned_before = rayon::pool_stats().workers_spawned;
        let mut rounds = 0u64;
        group.bench_function(&format!("{label}_round_100k"), |b| {
            b.iter(|| {
                rounds += 1;
                sim.step_streaming(&footprint).num_awake
            })
        });
        let stats = rayon::pool_stats();
        assert_eq!(
            stats.workers_spawned, spawned_before,
            "a round must never spawn a thread"
        );
        println!(
            "  [{label}] {rounds} rounds, pool: {} workers (spawned at init, 0 during rounds), \
             {} pooled tasks, peak concurrency {} / budget {}",
            stats.workers_spawned, stats.tasks_pooled, stats.peak_active, stats.budget
        );
        // Criterion owns its own timings; re-measure a short steady-state run
        // by hand so the median lands in BENCH_round.json next to the
        // round-kernel records.
        const REPORT_ROUNDS: usize = 16;
        let mut samples_ns = Vec::with_capacity(REPORT_ROUNDS);
        for _ in 0..REPORT_ROUNDS {
            // TIMING: per-round wall-clock is the measurement itself; it feeds
            // only BENCH_round.json, never results.
            let start = Instant::now();
            sim.step_streaming(&footprint);
            samples_ns.push(start.elapsed().as_nanos());
        }
        records.push(RoundBenchRecord {
            source: "bench_parallel",
            kernel: format!("dmis-streaming-{label}"),
            n,
            churn: 0.0,
            rounds: REPORT_ROUNDS,
            median_ns: median_ns(&samples_ns),
            mean_ns: mean_ns(&samples_ns),
        });
    }
    match write_round_bench("bench_parallel", &records) {
        Ok(path) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write BENCH_round.json: {e}"),
    }
    group.finish();
}

/// A sharded sweep of parallel-enabled cells: the engine claims its worker
/// count from the thread budget, so `threads(engine) × threads(round)` never
/// exceeds the budget no matter how many cells run concurrently.
fn sweep_coscheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_coscheduling");
    group.sample_size(5);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let seeds: Vec<u64> = (0..4).collect();
    let spec = SweepSpec::grid1("co", &seeds, |&s| (format!("seed={s}"), s));
    let run_cell = |seed: u64| {
        let n = 10_000;
        let footprint =
            generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(seed, "bp-co"));
        Scenario::new(n)
            .algorithm(|v: NodeId| DMis::new(v, MisOutput::Undecided))
            .adversary(FlipChurnAdversary::new(&footprint, 0.01, seed))
            .seed(seed)
            .parallel(true)
            .parallel_threshold(0)
            .rounds(4)
            .run(&mut [])
            .sim()
            .num_awake()
    };
    for engine_threads in [1usize, 2] {
        let engine = SweepEngine::new(engine_threads);
        group.bench_function(&format!("4cells_parallel_engine{engine_threads}"), |b| {
            b.iter(|| {
                engine
                    .run(&spec, |cell| run_cell(cell.params))
                    .expect("sweep")
                    .into_results()
                    .len()
            })
        });
    }
    let stats = rayon::pool_stats();
    println!(
        "  [co-scheduling] peak concurrency {} within budget {} (claims throttle inner fan-out)",
        stats.peak_active, stats.budget
    );
    assert!(
        stats.peak_active <= stats.budget.max(2),
        "sweep × round parallelism oversubscribed: peak {} budget {}",
        stats.peak_active,
        stats.budget
    );
    group.finish();
}

criterion_group!(benches, round_latency, sweep_coscheduling);
criterion_main!(benches);
