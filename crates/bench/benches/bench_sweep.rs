//! Sweep-engine scaling benchmark: wall-clock time of an E2-style seed-grid
//! sweep (DColor under flip churn, rounds-until-all-colored per cell) as the
//! worker count grows 1 → N. Cells are independent deterministic scenarios,
//! so the work is embarrassingly parallel; on a multi-core machine the
//! 8-thread sweep should finish ≥4× faster than the 1-thread sweep (on
//! fewer cores, expect scaling to flatten at the core count). The result
//! tables are byte-identical at every thread count — only time may change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::sweep::{SweepEngine, SweepSpec};
use std::time::Duration;

/// The benched grid: 16 seeds × 2 churn rates of DColor convergence runs at
/// n = 256 (the shape of E2's scaling grid, sized to finish in seconds).
fn seed_grid() -> SweepSpec<(f64, u64)> {
    let seeds: Vec<u64> = (0..16).collect();
    SweepSpec::grid2("bench-e2-grid", &[0.0f64, 0.05], &seeds, |&p, &s| {
        (format!("p={p} seed={s}"), (p, s))
    })
}

/// One grid cell: rounds until every node is colored.
fn run_cell(churn: f64, seed: u64) -> usize {
    let n = 256;
    let footprint = generators::erdos_renyi_avg_degree(
        n,
        10.0,
        &mut experiment_rng(seed, &format!("bench-sweep-{n}")),
    );
    Scenario::new(n)
        .algorithm(|v: NodeId| DColor::new(v, ColorOutput::Undecided))
        .adversary(FlipChurnAdversary::new(&footprint, churn, 100 + seed))
        .seed(seed)
        .rounds(400)
        .run_until(&mut [], |view| {
            view.outputs
                .iter()
                .all(|o| o.map(|c| c.is_decided()).unwrap_or(false))
        })
        .rounds_executed()
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    let spec = seed_grid();

    // Reference result (1 thread) to pin determinism across thread counts.
    let reference = SweepEngine::new(1)
        .run(&spec, |cell| run_cell(cell.params.0, cell.params.1))
        .expect("sweep")
        .into_results();

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, 4, 8];
    if !thread_counts.contains(&cores) {
        thread_counts.push(cores);
    }
    for &threads in &thread_counts {
        let engine = SweepEngine::new(threads);
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, _threads| {
                b.iter(|| {
                    let results = engine
                        .run(&spec, |cell| run_cell(cell.params.0, cell.params.1))
                        .expect("sweep")
                        .into_results();
                    assert_eq!(results, reference, "results must not depend on threads");
                    results.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_scaling);
criterion_main!(benches);
