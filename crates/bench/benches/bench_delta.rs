//! Delta-pipeline benchmarks: per-round cost of the legacy whole-graph path
//! (adversary materializes `G_r`, CSR rebuilt from scratch) versus the
//! delta-native path (adversary emits a `GraphDelta`, one persistent graph
//! and one persistent CSR are patched in place), across churn rates.
//!
//! At the ISSUE's reference point — 10k nodes, ~0.1% of edges changing per
//! round — the incremental path must beat the full-rebuild path by ≥5x
//! (it is typically orders of magnitude faster: `O(|δ|)` vs `O(n + m)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::graph::{CsrGraph, DynamicGraphTrace};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

fn churn_footprint(n: usize) -> Graph {
    generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(1, "bd"))
}

/// Graph-pipeline cost per round, adversary included: whole-graph
/// (`next_graph` + `CsrGraph::from_graph`) vs delta (`next_delta` + patch).
fn bench_round_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_pipeline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 10_000;
    // Flip probability ⇒ expected fraction of footprint edges changing per
    // round; 0.001 is the 0.1%-churn reference point.
    for &p in &[0.0001f64, 0.001, 0.01] {
        let footprint = churn_footprint(n);

        group.bench_with_input(
            BenchmarkId::new("full_rebuild_round", p),
            &footprint,
            |b, fp| {
                let mut adv = FlipChurnAdversary::new(fp, p, 7);
                let mut g = Adversary::initial_graph(&mut adv);
                let mut r = 1u64;
                b.iter(|| {
                    let next = Adversary::next_graph(&mut adv, r, &g);
                    let csr = CsrGraph::from_graph(&next);
                    g = next;
                    r += 1;
                    csr.num_edges()
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental_round", p),
            &footprint,
            |b, fp| {
                let mut adv = FlipChurnAdversary::new(fp, p, 7);
                let mut g = Adversary::initial_graph(&mut adv);
                let mut csr = CsrGraph::from_graph(&g);
                let mut r = 1u64;
                b.iter(|| {
                    let delta = Adversary::next_delta(&mut adv, r, &g);
                    delta.apply(&mut g);
                    csr.apply_delta(&delta);
                    r += 1;
                    csr.num_edges()
                })
            },
        );
    }
    group.finish();
}

/// Full simulator rounds (wake-ups + message phases included):
/// `step_streaming` on materialized graphs vs `step_delta`.
fn bench_simulator_rounds(c: &mut Criterion) {
    #[derive(Clone)]
    struct Ping;
    impl NodeAlgorithm for Ping {
        type Msg = u8;
        type Output = u8;
        fn send(&mut self, _ctx: &mut dynnet::runtime::NodeContext<'_>) -> u8 {
            1
        }
        fn receive(
            &mut self,
            _ctx: &mut dynnet::runtime::NodeContext<'_>,
            _inbox: &[dynnet::runtime::Incoming<u8>],
        ) {
        }
        fn output(&self) -> u8 {
            1
        }
    }

    let mut group = c.benchmark_group("delta_simulator");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 10_000;
    let p = 0.001;
    let footprint = churn_footprint(n);

    group.bench_with_input(
        BenchmarkId::new("step_streaming", p),
        &footprint,
        |b, fp| {
            let mut adv = FlipChurnAdversary::new(fp, p, 9);
            let mut g = Adversary::initial_graph(&mut adv);
            let mut sim = Simulator::new(n, |_v| Ping, AllAtStart, SimConfig::sequential(1));
            sim.step_streaming(&g);
            let mut r = 1u64;
            b.iter(|| {
                g = Adversary::next_graph(&mut adv, r, &g);
                r += 1;
                sim.step_streaming(&g).num_awake
            })
        },
    );

    group.bench_with_input(BenchmarkId::new("step_delta", p), &footprint, |b, fp| {
        let mut adv = FlipChurnAdversary::new(fp, p, 9);
        let mut g = Adversary::initial_graph(&mut adv);
        let mut sim = Simulator::new(n, |_v| Ping, AllAtStart, SimConfig::sequential(1));
        sim.step_streaming(&g);
        let mut r = 1u64;
        b.iter(|| {
            let delta = Adversary::next_delta(&mut adv, r, &g);
            delta.apply(&mut g);
            r += 1;
            sim.step_delta(&g, &delta).num_awake
        })
    });
    group.finish();
}

/// Window maintenance: whole-graph `push` vs `push_delta` on a T=32 window.
fn bench_window_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_window");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 10_000;
    let footprint = churn_footprint(n);
    // Pre-record a churn trace so both variants replay identical rounds.
    let mut adv = FlipChurnAdversary::new(&footprint, 0.001, 11);
    let g0 = Adversary::initial_graph(&mut adv);
    let mut trace = DynamicGraphTrace::new(g0.clone());
    let mut g = g0.clone();
    for r in 1..128u64 {
        let d = Adversary::next_delta(&mut adv, r, &g);
        d.apply(&mut g);
        trace.push_delta(d);
    }

    group.bench_function("push_whole_graph", |b| {
        let mut w = GraphWindow::new(n, 32);
        let graphs: Vec<Graph> = trace.iter().collect();
        let mut i = 0usize;
        b.iter(|| {
            w.push(&graphs[i % graphs.len()]);
            i += 1;
            w.len()
        })
    });

    group.bench_function("push_delta", |b| {
        let mut w = GraphWindow::new(n, 32);
        w.push(&g0);
        let mut i = 0usize;
        let deltas = trace.deltas();
        b.iter(|| {
            w.push_delta(&deltas[i % deltas.len()]);
            i += 1;
            w.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_round_pipeline,
    bench_simulator_rounds,
    bench_window_delta
);
criterion_main!(benches);
