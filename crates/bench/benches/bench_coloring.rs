//! Per-round cost of the coloring algorithms (Algorithm 6, DColor, SColor,
//! and the combined Corollary 1.2 algorithm) on a churning network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

const ROUNDS: usize = 10;

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    {
        let &n = &1_000usize;
        let footprint = generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(6, "bc"));
        let window = recommended_window(n);

        group.bench_with_input(
            BenchmarkId::new("basic_static_20_rounds", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sim =
                        Simulator::new(n, BasicColoring::new, AllAtStart, SimConfig::sequential(1));
                    sim.run_static(&footprint, ROUNDS).len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dcolor_churn_20_rounds", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let factory = |v: NodeId| DColor::new(v, ColorOutput::Undecided);
                    let mut sim = Simulator::new(n, factory, AllAtStart, SimConfig::sequential(2));
                    let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 3);
                    run(&mut sim, &mut adv, ROUNDS).num_rounds()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scolor_churn_20_rounds", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sim =
                        Simulator::new(n, SColor::new, AllAtStart, SimConfig::sequential(4));
                    let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 5);
                    run(&mut sim, &mut adv, ROUNDS).num_rounds()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("combined_corollary12_20_rounds", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sim = Simulator::new(
                        n,
                        dynamic_coloring(window),
                        AllAtStart,
                        SimConfig::sequential(6),
                    );
                    let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 7);
                    run(&mut sim, &mut adv, ROUNDS).num_rounds()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
