//! Substrate benchmarks: core graph operations on the adjacency-set graph
//! and on CSR snapshots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

fn bench_graph_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[1_000usize, 10_000] {
        let g = generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(1, "bg"));
        group.bench_with_input(BenchmarkId::new("csr_snapshot", n), &g, |b, g| {
            b.iter(|| dynnet::graph::CsrGraph::from_graph(g))
        });
        group.bench_with_input(BenchmarkId::new("edge_iteration", n), &g, |b, g| {
            b.iter(|| g.edges().count())
        });
        group.bench_with_input(BenchmarkId::new("degree_sum", n), &g, |b, g| {
            b.iter(|| g.nodes().map(|v| g.degree(v)).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("greedy_coloring", n), &g, |b, g| {
            b.iter(|| dynnet::graph::algo::greedy_coloring(g))
        });
        group.bench_with_input(BenchmarkId::new("greedy_mis", n), &g, |b, g| {
            b.iter(|| dynnet::graph::algo::greedy_mis(g))
        });
        group.bench_with_input(
            BenchmarkId::new("clone_and_toggle_100_edges", n),
            &g,
            |b, g| {
                let edges: Vec<Edge> = g.edges().take(100).collect();
                b.iter(|| {
                    let mut h = g.clone();
                    for e in &edges {
                        h.toggle_edge(e.u, e.v);
                    }
                    h.num_edges()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
