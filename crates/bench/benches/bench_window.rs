//! Sliding-window maintenance benchmarks: incremental `G^∩T` / `G^∪T`
//! updates vs. brute-force recomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

fn make_sequence(n: usize, rounds: usize, churn: f64) -> Vec<Graph> {
    let footprint = generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(2, "bw"));
    let mut adv = FlipChurnAdversary::new(&footprint, churn, 7);
    let mut g = Adversary::initial_graph(&mut adv);
    let mut out = vec![g.clone()];
    for r in 1..rounds {
        g = Adversary::next_graph(&mut adv, r as u64, &g);
        out.push(g.clone());
    }
    out
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("window");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    {
        let &n = &1_000usize;
        let seq = make_sequence(n, 64, 0.02);
        group.bench_with_input(
            BenchmarkId::new("incremental_push_T32", n),
            &seq,
            |b, seq| {
                b.iter(|| {
                    let mut w = GraphWindow::new(n, 32);
                    for g in seq {
                        w.push(g);
                    }
                    w.intersection_graph().num_edges() + w.union_graph().num_edges()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("bruteforce_T32", n), &seq, |b, seq| {
            b.iter(|| {
                let mut w = GraphWindow::new(n, 32);
                for g in seq {
                    w.push(g);
                }
                w.intersection_graph_bruteforce().num_edges()
                    + w.union_graph_bruteforce().num_edges()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("materialize_views_T32", n),
            &seq,
            |b, seq| {
                let mut w = GraphWindow::new(n, 32);
                for g in seq {
                    w.push(g);
                }
                b.iter(|| {
                    (
                        w.intersection_graph().num_edges(),
                        w.union_graph().num_edges(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_window);
criterion_main!(benches);
