//! Verification benchmarks: per-checked-round cost of the incremental
//! T-dynamic verifier (ledger patched from the window's `WindowUpdate` dirty
//! set + the round's output churn, `O(|δ| + churn)`) versus the full
//! re-check oracle (window graphs materialized, every node of `V^∩T`
//! re-evaluated, `O(n + |G^∪T|)`).
//!
//! At the ISSUE's reference point — 10k nodes, ~0.1% of edges changing per
//! round and ~0.1% of nodes changing output per round, `T = 32` — the
//! incremental checked round must beat the full re-check by ≥10x (it is
//! typically two to three orders of magnitude faster, the same shape as
//! `bench_delta`'s round pipeline comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use dynnet::graph::algo::greedy_coloring;
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

const N: usize = 10_000;
const WINDOW: usize = 32;
/// 0.1% churn of both kinds per round: ~40 of the ~40k footprint edges flip,
/// and 10 of the 10k nodes change their output.
const FLIP_P: f64 = 0.001;
const OUTPUT_CHURN: usize = N / 1000;

struct VerifyWorkload {
    g0: Graph,
    deltas: Vec<GraphDelta>,
    outputs: Vec<Option<ColorOutput>>,
}

fn workload() -> VerifyWorkload {
    let footprint =
        generators::erdos_renyi_avg_degree(N, 8.0, &mut experiment_rng(1, "bench-verify"));
    let mut adv = FlipChurnAdversary::new(&footprint, FLIP_P, 7);
    let g0 = Adversary::initial_graph(&mut adv);
    let mut g = g0.clone();
    // Pre-record a long schedule so the benches replay identical rounds
    // (cycled once the iteration count exceeds it).
    let deltas: Vec<GraphDelta> = (1..1024u64)
        .map(|r| {
            let d = Adversary::next_delta(&mut adv, r, &g);
            d.apply(&mut g);
            d
        })
        .collect();
    let outputs: Vec<Option<ColorOutput>> = greedy_coloring(&g0)
        .into_iter()
        .map(|c| Some(ColorOutput::Colored(c.max(1))))
        .collect();
    VerifyWorkload {
        g0,
        deltas,
        outputs,
    }
}

/// One checked verification round, incremental vs full re-check, on
/// identical delta schedules and identical synthetic output churn.
fn bench_checked_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_round");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let w = workload();

    for (label, full) in [("full_recheck", true), ("incremental", false)] {
        group.bench_function(label, |b| {
            let mut verifier = TDynamicVerifier::new(ColoringProblem, WINDOW);
            if full {
                verifier = verifier.full_recheck();
            }
            let mut outputs = w.outputs.clone();
            verifier.observe(&w.g0, &outputs);
            // Fill the window so every measured round is a checked round.
            let mut i = 0usize;
            for _ in 0..WINDOW {
                verifier
                    .observe_delta_with_churn(&w.deltas[i % w.deltas.len()], &outputs, Some(&[]))
                    .unwrap();
                i += 1;
            }
            let mut churn_round = 0usize;
            b.iter(|| {
                // 0.1% output churn: OUTPUT_CHURN nodes pick a new color.
                let mut changed = Vec::with_capacity(OUTPUT_CHURN);
                for k in 0..OUTPUT_CHURN {
                    let v = (churn_round * OUTPUT_CHURN + k) % N;
                    let next = match outputs[v] {
                        Some(ColorOutput::Colored(c)) => c % 64 + 1,
                        _ => 1,
                    };
                    outputs[v] = Some(ColorOutput::Colored(next));
                    changed.push(NodeId::new(v));
                }
                churn_round += 1;
                verifier
                    .observe_delta_with_churn(
                        &w.deltas[i % w.deltas.len()],
                        &outputs,
                        Some(&changed),
                    )
                    .unwrap();
                i += 1;
                verifier.summary().rounds_checked
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checked_round);
criterion_main!(benches);
