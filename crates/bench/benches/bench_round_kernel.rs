//! Round-kernel benchmark: steady-state per-round latency of the simulator's
//! delta path (`Simulator::step_delta`) at n ∈ {100k, 1M} under 0.1%-per-edge
//! churn — the ROADMAP's "million-node rounds" metric.
//!
//! Two kernels are measured per size:
//!
//! * `flood` — a max-flooding probe with `u32` messages and no randomness.
//!   Its per-node work is a handful of instructions, so the number is the
//!   round *infrastructure* cost: wake bookkeeping, message-buffer fill,
//!   CSR-driven inbox scans, output publication, and churn detection.
//! * `dmis` — one `DMis` instance per node (Luby-style MIS on the
//!   intersection graph), a realistic algorithm payload.
//!
//! Results are printed and merged into `BENCH_round.json` (one record per
//! n × churn × thread-budget; see `dynnet_bench::report`) so the perf
//! trajectory is tracked across PRs. Runs honor `DYNNET_RAYON_THREADS`; on a
//! single-core budget the parallel path degrades to the sequential kernel,
//! which is exactly the configuration the ≤10 ms acceptance target is
//! stated for.
//!
//! `DYNNET_BENCH_SMOKE=1` shrinks the grid to one 20k-node point (used by
//! CI's 2-thread smoke job).

use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::runtime::NodeContext;
use dynnet_bench::report::{mean_ns, median_ns, write_round_bench, RoundBenchRecord};
use std::time::Instant;

/// Max-flooding probe: every node outputs the largest id heard so far.
/// Steady state does one inbox scan and an integer compare per node.
#[derive(Clone)]
struct Flood {
    best: u32,
}

impl NodeAlgorithm for Flood {
    type Msg = u32;
    type Output = u32;

    fn send(&mut self, _ctx: &mut NodeContext<'_>) -> u32 {
        self.best
    }

    fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[(NodeId, u32)]) {
        for (_, m) in inbox {
            self.best = self.best.max(*m);
        }
    }

    fn output(&self) -> u32 {
        self.best
    }
}

struct Measurement {
    samples_ns: Vec<u128>,
    stats: dynnet::runtime::simulator::DeltaStats,
}

/// Drives `warmup + rounds` delta rounds of `FlipChurnAdversary(churn)` on an
/// Erdős–Rényi footprint of average degree `avg_deg` and times each measured
/// round.
fn measure_rounds<A, F>(
    n: usize,
    avg_deg: f64,
    churn: f64,
    factory: F,
    warmup: usize,
    rounds: usize,
) -> Measurement
where
    A: NodeAlgorithm,
    F: dynnet::runtime::AlgorithmFactory<A>,
{
    let footprint = generators::erdos_renyi_avg_degree(n, avg_deg, &mut experiment_rng(33, "brk"));
    let mut adv = FlipChurnAdversary::new(&footprint, churn, 34);
    let config = SimConfig {
        seed: 35,
        parallel: true,
        parallel_threshold: 512,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(n, factory, AllAtStart, config);
    let mut g = Adversary::initial_graph(&mut adv);
    sim.step_streaming(&g);
    let mut round = 1u64;
    for _ in 0..warmup {
        let delta = Adversary::next_delta(&mut adv, round, &g);
        delta.apply(&mut g);
        sim.step_delta(&g, &delta);
        round += 1;
    }
    let mut samples_ns = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let delta = Adversary::next_delta(&mut adv, round, &g);
        delta.apply(&mut g);
        // TIMING: per-round wall-clock is the measurement itself; it feeds
        // only the printed report and BENCH_round.json, never results.
        let start = Instant::now();
        sim.step_delta(&g, &delta);
        samples_ns.push(start.elapsed().as_nanos());
        round += 1;
    }
    Measurement {
        samples_ns,
        stats: sim.delta_stats(),
    }
}

fn main() {
    let smoke = std::env::var("DYNNET_BENCH_SMOKE").is_ok_and(|v| v == "1");
    // (n, churn, warmup, measured rounds)
    let grid: Vec<(usize, f64, usize, usize)> = if smoke {
        vec![(20_000, 0.001, 2, 8)]
    } else {
        vec![
            (100_000, 0.001, 5, 41),
            (100_000, 0.01, 5, 41),
            (1_000_000, 0.001, 3, 15),
        ]
    };
    let threads = rayon::max_threads();
    let mut records = Vec::new();
    for &(n, churn, warmup, rounds) in &grid {
        for kernel in ["flood", "dmis"] {
            let m = match kernel {
                "flood" => measure_rounds(
                    n,
                    8.0,
                    churn,
                    |v: NodeId| Flood { best: v.0 },
                    warmup,
                    rounds,
                ),
                _ => measure_rounds(
                    n,
                    8.0,
                    churn,
                    |v: NodeId| DMis::new(v, MisOutput::Undecided),
                    warmup,
                    rounds,
                ),
            };
            // Steady-state rounds must ride the incremental CSR: exactly one
            // full build (round 0), every later round patched.
            assert_eq!(
                m.stats.full_csr_builds, 1,
                "{kernel}/{n}: delta rounds fell back to full CSR rebuilds"
            );
            let median = median_ns(&m.samples_ns);
            let mean = mean_ns(&m.samples_ns);
            println!(
                "round_kernel/{kernel}_n{n}_churn{churn}_t{threads}: median {:.3} ms, mean {:.3} ms ({} rounds)",
                median as f64 / 1e6,
                mean as f64 / 1e6,
                m.samples_ns.len(),
            );
            records.push(RoundBenchRecord {
                source: "bench_round_kernel",
                kernel: kernel.to_string(),
                n,
                churn,
                rounds,
                median_ns: median,
                mean_ns: mean,
            });
        }
    }
    match write_round_bench("bench_round_kernel", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_round.json: {e}"),
    }
}
