//! Adversary (workload generator) benchmarks: per-round graph generation
//! cost of the different adversaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

fn advance<A: Adversary>(adv: &mut A, rounds: usize) -> usize {
    let mut g = adv.initial_graph();
    for r in 1..rounds {
        g = adv.next_graph(r as u64, &g);
    }
    g.num_edges()
}

fn bench_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let rounds = 20;
    for &n in &[1_000usize, 5_000] {
        let footprint = generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(10, "ba"));
        group.bench_with_input(BenchmarkId::new("flip_churn_20_rounds", n), &n, |b, _| {
            b.iter(|| advance(&mut FlipChurnAdversary::new(&footprint, 0.02, 1), rounds))
        });
        group.bench_with_input(BenchmarkId::new("markov_churn_20_rounds", n), &n, |b, _| {
            b.iter(|| {
                advance(
                    &mut MarkovChurnAdversary::new(&footprint, 0.05, 0.05, true, 2),
                    rounds,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("mobility_20_rounds", n), &n, |b, &n| {
            b.iter(|| {
                let config = MobilityConfig {
                    n,
                    radius: 3.5 / (n as f64).sqrt(),
                    min_speed: 0.005,
                    max_speed: 0.02,
                };
                advance(&mut MobilityAdversary::new(config, 3), rounds)
            })
        });
        group.bench_with_input(BenchmarkId::new("node_churn_20_rounds", n), &n, |b, _| {
            b.iter(|| {
                advance(
                    &mut NodeChurnAdversary::new(footprint.clone(), 0.02, 0.1, 4),
                    rounds,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
