//! Graph-generator benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("erdos_renyi_d10", n), &n, |b, &n| {
            b.iter(|| {
                generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(3, "bgen"))
                    .num_edges()
            })
        });
        group.bench_with_input(BenchmarkId::new("random_geometric", n), &n, |b, &n| {
            let radius = 4.0 / (n as f64).sqrt();
            b.iter(|| {
                generators::random_geometric(n, radius, &mut experiment_rng(4, "bgen")).num_edges()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("preferential_attachment_m3", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    generators::preferential_attachment(n, 3, &mut experiment_rng(5, "bgen"))
                        .num_edges()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, &n| {
            let side = (n as f64).sqrt() as usize;
            b.iter(|| generators::grid(side, side).num_edges())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
