//! Simulator executor benchmarks: sequential vs. rayon-parallel per-node
//! phases, and the cost of the T-dynamic verification pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Duration;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[4_000usize] {
        let footprint = generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(8, "br"));
        for (label, parallel) in [("sequential", false), ("parallel", true)] {
            group.bench_with_input(
                BenchmarkId::new(format!("luby_10_rounds_{label}"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let config = SimConfig {
                            seed: 1,
                            parallel,
                            parallel_threshold: 0,
                            ..SimConfig::default()
                        };
                        let mut sim = Simulator::new(n, LubyMis::new, AllAtStart, config);
                        sim.run_static(&footprint, 10).len()
                    })
                },
            );
        }
    }

    // Verification cost: windowed T-dynamic check over a recorded run.
    let n = 2_000;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(9, "br2"));
    let factory = |v: NodeId| DMis::new(v, MisOutput::Undecided);
    let mut sim = Simulator::new(n, factory, AllAtStart, SimConfig::sequential(2));
    let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 10);
    let record = run(&mut sim, &mut adv, 2 * window);
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs: Vec<Vec<Option<MisOutput>>> = (0..record.num_rounds())
        .map(|r| record.outputs_at(r).to_vec())
        .collect();
    group.bench_function("verify_t_dynamic_run_n2000", |b| {
        b.iter(|| {
            verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1).rounds_valid
        })
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
