//! # dynnet-bench
//!
//! Experiment harness regenerating every experiment table in EXPERIMENTS.md
//! (the paper has no empirical tables; each experiment validates one of its
//! quantitative claims — see DESIGN.md §5 for the experiment index), plus
//! Criterion micro-benchmarks of the substrate and the algorithms.
//!
//! Run all experiments:
//!
//! ```text
//! cargo run --release -p dynnet-bench --bin experiments -- all
//! ```

pub mod exp;
