//! # dynnet-bench
//!
//! Experiment harness regenerating every experiment table in EXPERIMENTS.md
//! (the paper has no empirical tables; each experiment validates one of its
//! quantitative claims — see DESIGN.md §5 for the experiment index), plus
//! Criterion micro-benchmarks of the substrate and the algorithms.
//!
//! The E1–E14 experiments ([`exp`]) are declared as `SweepSpec` grids on the
//! work-stealing `dynnet-sweep` engine and stream their executions through
//! `RoundObserver`s, so the harness exercises the delta pipeline end to end.
//! The benches pin its per-round asymptotics: `bench_delta` (adversary →
//! simulator round, `O(|δ|)` vs full rebuild), `bench_verify` (checked
//! verification round, `O(|δ| + output churn)` incremental ledger vs full
//! re-check), `bench_window` (window maintenance), and `bench_sweep`
//! (1 → N thread scaling).
//!
//! Run all experiments:
//!
//! ```text
//! cargo run --release -p dynnet-bench --bin experiments -- all
//! ```

#![forbid(unsafe_code)]

pub mod exp;
pub mod report;
