//! Comparison experiments: oblivious vs. adaptive adversaries (E9), the
//! Concat framework vs. the restart-from-scratch strawman (E11), the TDMA
//! application under mobility (E13), and simulator throughput (E14). All
//! runs stream through `Scenario` observers.

use dynnet::algorithms::apps::tdma;
use dynnet::core::mis::independence_violations;
use dynnet::metrics::{fmt2, fmt_pct, Summary, Table};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Instant;

/// Streaming observer: counts undecided node-rounds from round `from` on.
struct UndecidedNodeRounds {
    from: u64,
    total: usize,
}

impl RoundObserver<MisOutput> for UndecidedNodeRounds {
    fn on_round(&mut self, view: &RoundView<'_, MisOutput>) {
        if view.round < self.from {
            return;
        }
        self.total += view
            .outputs
            .iter()
            .filter(|o| o.map(|s| s == MisOutput::Undecided).unwrap_or(true))
            .count();
    }
}

/// Streaming observer: total independence violations on the window
/// intersection graph, summed over all rounds.
struct IntersectionViolations {
    window: GraphWindow,
    total: usize,
}

impl RoundObserver<MisOutput> for IntersectionViolations {
    fn on_round(&mut self, view: &RoundView<'_, MisOutput>) {
        self.window.push(view.current_graph());
        let out: Vec<MisOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        self.total += independence_violations(&self.window.intersection_graph(), &out);
    }
}

/// E9: DMis against an oblivious churn adversary vs. an adaptive,
/// output-aware conflict seeker. The adaptive adversary may slow progress
/// (the O(log n) bound of Lemma 5.4 assumes 2-obliviousness) but can never
/// violate the deterministic independence guarantee.
pub fn e9_oblivious_vs_adaptive() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let mut table = Table::new(
        format!(
            "E9 — Combined MIS against oblivious vs. adaptive adversaries, n = {n}, T = {window}"
        ),
        &[
            "adversary",
            "undecided node-rounds (lower = faster progress)",
            "independence violations on G^∩T (total)",
            "T-dynamic valid rounds",
            "output changes/round",
        ],
    );
    let footprint = generators::grid(16, 16);

    fn run_case<Adv: OutputAdversary<MisOutput>>(
        name: &str,
        adv: Adv,
        n: usize,
        window: usize,
        rounds: usize,
    ) -> Vec<String> {
        let mut undecided = UndecidedNodeRounds {
            from: window as u64,
            total: 0,
        };
        let mut violations = IntersectionViolations {
            window: GraphWindow::new(n, window),
            total: 0,
        };
        let mut verifier = TDynamicVerifier::new(MisProblem, window);
        let mut churn = ChurnStats::new();
        Scenario::new(n)
            .algorithm(dynamic_mis(n, window))
            .adversary(adv)
            .seed(9)
            .rounds(rounds)
            .run(&mut [&mut undecided, &mut violations, &mut verifier, &mut churn]);
        let summary = verifier.into_summary();
        let churn_rate = churn.total_from(window) as f64 / (rounds - window) as f64;
        vec![
            name.to_string(),
            undecided.total.to_string(),
            violations.total.to_string(),
            format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
            fmt2(churn_rate),
        ]
    }

    table.push_row(run_case(
        "oblivious flip churn p=0.02",
        FlipChurnAdversary::new(&footprint, 0.02, 90),
        n,
        window,
        rounds,
    ));
    let adaptive: ConflictSeekingAdversary<MisOutput, _> = ConflictSeekingAdversary::new(
        footprint.clone(),
        |a: &MisOutput, b: &MisOutput| a.in_mis() && b.in_mis(),
        8,
        0.02,
        (2 * window) as u64,
        91,
    );
    table.push_row(run_case(
        "adaptive conflict seeker (wires MIS members together)",
        adaptive,
        n,
        window,
        rounds,
    ));
    vec![table]
}

/// E11: Concat vs. restart-from-scratch on identical schedules, for both
/// problems and several churn rates.
pub fn e11_concat_vs_restart() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 6 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(11, "e11"));
    let mut table = Table::new(
        format!("E11 — Concat (Corollaries 1.2/1.3) vs. restart-every-T strawman, n = {n}, T = {window}"),
        &[
            "problem",
            "churn p",
            "Concat valid rounds",
            "restart valid rounds",
            "Concat output changes/round",
            "restart output changes/round",
        ],
    );
    let steady = |total: usize| total as f64 / (rounds - 2 * window) as f64;
    let period = window as u64;
    for churn in [0.0, 0.01, 0.05] {
        // --- Coloring ---
        let mut concat_verifier = TDynamicVerifier::new(ColoringProblem, window);
        let mut concat_churn = ChurnStats::new();
        let mut recorder = TraceRecorder::graphs_only();
        Scenario::new(n)
            .algorithm(dynamic_coloring(window))
            .adversary(FlipChurnAdversary::new(
                &footprint,
                churn,
                500 + (churn * 1e4) as u64,
            ))
            .seed(11)
            .rounds(rounds)
            .run(&mut [&mut concat_verifier, &mut concat_churn, &mut recorder]);
        let concat_summary = concat_verifier.into_summary();

        let mut restart_verifier = TDynamicVerifier::new(ColoringProblem, window);
        let mut restart_churn = ChurnStats::new();
        Scenario::new(n)
            .algorithm(move |v: NodeId| RestartColoring::new(v, period))
            .adversary(ScriptedAdversary::new(recorder.into_trace()))
            .seed(12)
            .rounds(rounds)
            .run(&mut [&mut restart_verifier, &mut restart_churn]);
        let restart_summary = restart_verifier.into_summary();
        table.push_row(vec![
            "coloring".into(),
            format!("{churn}"),
            format!(
                "{}/{}",
                concat_summary.rounds_valid, concat_summary.rounds_checked
            ),
            format!(
                "{}/{}",
                restart_summary.rounds_valid, restart_summary.rounds_checked
            ),
            fmt2(steady(concat_churn.total_from(2 * window))),
            fmt2(steady(restart_churn.total_from(2 * window))),
        ]);

        // --- MIS ---
        let mut concat_verifier = TDynamicVerifier::new(MisProblem, window);
        let mut concat_churn = ChurnStats::new();
        let mut recorder = TraceRecorder::graphs_only();
        Scenario::new(n)
            .algorithm(dynamic_mis(n, window))
            .adversary(FlipChurnAdversary::new(
                &footprint,
                churn,
                600 + (churn * 1e4) as u64,
            ))
            .seed(13)
            .rounds(rounds)
            .run(&mut [&mut concat_verifier, &mut concat_churn, &mut recorder]);
        let concat_summary = concat_verifier.into_summary();

        let mut restart_verifier = TDynamicVerifier::new(MisProblem, window);
        let mut restart_churn = ChurnStats::new();
        Scenario::new(n)
            .algorithm(move |v: NodeId| RestartMis::new(v, period))
            .adversary(ScriptedAdversary::new(recorder.into_trace()))
            .seed(14)
            .rounds(rounds)
            .run(&mut [&mut restart_verifier, &mut restart_churn]);
        let restart_summary = restart_verifier.into_summary();
        table.push_row(vec![
            "MIS".into(),
            format!("{churn}"),
            format!(
                "{}/{}",
                concat_summary.rounds_valid, concat_summary.rounds_checked
            ),
            format!(
                "{}/{}",
                restart_summary.rounds_valid, restart_summary.rounds_checked
            ),
            fmt2(steady(concat_churn.total_from(2 * window))),
            fmt2(steady(restart_churn.total_from(2 * window))),
        ]);
    }
    vec![table]
}

/// Streaming observer running one TDMA frame per round (from `from` on).
struct TdmaProbe {
    from: u64,
    success_rates: Vec<f64>,
    frame_lengths: Vec<f64>,
    max_deg: usize,
}

impl RoundObserver<ColorOutput> for TdmaProbe {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        if view.round < self.from {
            return;
        }
        let g = view.current_graph();
        self.max_deg = self.max_deg.max(g.max_degree());
        let colors: Vec<ColorOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        let frame = tdma::run_frame(g, &colors);
        self.success_rates.push(frame.success_rate());
        self.frame_lengths.push(frame.frame_length as f64);
    }
}

/// E13: TDMA slot assignment under random-waypoint mobility.
pub fn e13_tdma_mobility() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 5 * window;
    let mut table = Table::new(
        format!("E13 — TDMA on the combined coloring under mobility, n = {n}, T = {window}"),
        &[
            "speed (per round)",
            "edge changes/round",
            "mean frame success rate",
            "min frame success rate",
            "mean frame length",
            "max degree+1 (upper bound)",
        ],
    );
    for (name, min_speed, max_speed) in [
        ("static (0)", 0.0, 0.0),
        ("slow (0.002–0.01)", 0.002, 0.01),
        ("fast (0.01–0.03)", 0.01, 0.03),
    ] {
        let mut probe = TdmaProbe {
            from: window as u64,
            success_rates: Vec::new(),
            frame_lengths: Vec::new(),
            max_deg: 0,
        };
        let mut recorder = TraceRecorder::graphs_only();
        Scenario::new(n)
            .algorithm(dynamic_coloring(window))
            .adversary(MobilityAdversary::new(
                MobilityConfig {
                    n,
                    radius: 0.08,
                    min_speed,
                    max_speed,
                },
                131,
            ))
            .seed(13)
            .rounds(rounds)
            .run(&mut [&mut probe, &mut recorder]);
        let s = Summary::of(&probe.success_rates);
        table.push_row(vec![
            name.to_string(),
            fmt2(recorder.trace().total_edge_changes() as f64 / rounds as f64),
            fmt_pct(s.mean),
            fmt_pct(s.min),
            fmt2(Summary::of(&probe.frame_lengths).mean),
            (probe.max_deg + 1).to_string(),
        ]);
    }
    vec![table]
}

/// E14: simulator throughput — wall-clock time per round for the sequential
/// and the rayon-parallel executor at increasing network sizes, for a plain
/// single-instance algorithm (DMis) and for the full combined algorithm of
/// Corollary 1.3 (which runs Θ(log n) pipelined instances per node).
pub fn e14_simulator_throughput() -> Vec<Table> {
    let mut table = Table::new(
        "E14 — Simulator throughput (ER d̄=10, churn p=0.01, release build)",
        &[
            "algorithm",
            "n",
            "sequential ms/round",
            "parallel ms/round",
            "speedup",
        ],
    );
    let time_per_round = |parallel: bool, n: usize, rounds: usize, combined: bool| -> f64 {
        let window = recommended_window(n);
        let footprint = generators::erdos_renyi_avg_degree(
            n,
            10.0,
            &mut experiment_rng(14, &format!("e14-{n}")),
        );
        let config = SimConfig {
            seed: 14,
            parallel,
            parallel_threshold: 0,
        };
        let start = Instant::now();
        if combined {
            Scenario::new(n)
                .algorithm(dynamic_mis(n, window))
                .adversary(FlipChurnAdversary::new(&footprint, 0.01, 140))
                .config(config)
                .rounds(rounds)
                .run(&mut []);
        } else {
            Scenario::new(n)
                .algorithm(|v: NodeId| DMis::new(v, MisOutput::Undecided))
                .adversary(FlipChurnAdversary::new(&footprint, 0.01, 140))
                .config(config)
                .rounds(rounds)
                .run(&mut []);
        }
        start.elapsed().as_secs_f64() * 1000.0 / rounds as f64
    };
    for &n in &[4_000usize, 16_000, 64_000] {
        let seq = time_per_round(false, n, 20, false);
        let par = time_per_round(true, n, 20, false);
        table.push_row(vec![
            "DMis (single instance)".into(),
            n.to_string(),
            fmt2(seq),
            fmt2(par),
            fmt2(seq / par),
        ]);
    }
    for &n in &[1_000usize, 4_000] {
        let seq = time_per_round(false, n, 15, true);
        let par = time_per_round(true, n, 15, true);
        table.push_row(vec![
            "Combined MIS (Corollary 1.3)".into(),
            n.to_string(),
            fmt2(seq),
            fmt2(par),
            fmt2(seq / par),
        ]);
    }
    vec![table]
}
