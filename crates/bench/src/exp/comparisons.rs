//! Comparison experiments: oblivious vs. adaptive adversaries (E9), the
//! Concat framework vs. the restart-from-scratch strawman (E11), the TDMA
//! application under mobility (E13), and simulator throughput (E14). All
//! runs stream through `Scenario` observers constructed per sweep cell; the
//! grids are declared as `SweepSpec`s on the harness `SweepEngine` (E14 runs
//! on the serial engine — it measures wall-clock time, so sibling cells must
//! not share the machine).

use super::ExpContext;
use dynnet::algorithms::apps::tdma;
use dynnet::core::mis::independence_violations;
use dynnet::metrics::{fmt2, fmt_pct, Summary, Table};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::sweep::{run_observed, Cell, CellRows, SweepSpec};
use std::time::Instant;

/// Streaming observer: counts undecided node-rounds from round `from` on.
struct UndecidedNodeRounds {
    from: u64,
    total: usize,
}

impl RoundObserver<MisOutput> for UndecidedNodeRounds {
    fn on_round(&mut self, view: &RoundView<'_, MisOutput>) {
        if view.round < self.from {
            return;
        }
        self.total += view
            .outputs
            .iter()
            .filter(|o| o.map(|s| s == MisOutput::Undecided).unwrap_or(true))
            .count();
    }
}

/// Streaming observer: total independence violations on the window
/// intersection graph, summed over all rounds.
struct IntersectionViolations {
    window: GraphWindow,
    total: usize,
}

impl RoundObserver<MisOutput> for IntersectionViolations {
    fn on_round(&mut self, view: &RoundView<'_, MisOutput>) {
        self.window.push(view.current_graph());
        let out: Vec<MisOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        self.total += independence_violations(&self.window.intersection_graph(), &out);
    }
}

/// E9: DMis against an oblivious churn adversary vs. an adaptive,
/// output-aware conflict seeker. The adaptive adversary may slow progress
/// (the O(log n) bound of Lemma 5.4 assumes 2-obliviousness) but can never
/// violate the deterministic independence guarantee. One sweep cell per
/// adversary.
pub fn e9_oblivious_vs_adaptive(ctx: &ExpContext) -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = if ctx.smoke { 2 * window } else { 4 * window };
    let cases: &[(&str, bool)] = &[
        ("oblivious flip churn p=0.02", false),
        (
            "adaptive conflict seeker (wires MIS members together)",
            true,
        ),
    ];
    let spec = SweepSpec::grid1("e9", cases, |&(name, adaptive)| {
        (name.to_string(), (name, adaptive))
    });
    ctx.engine
        .aggregate(
            &spec,
            |cell| {
                let (name, adaptive) = cell.params;
                let footprint = generators::grid(16, 16);
                let mut undecided = UndecidedNodeRounds {
                    from: window as u64,
                    total: 0,
                };
                let mut violations = IntersectionViolations {
                    window: GraphWindow::new(n, window),
                    total: 0,
                };
                let mut verifier = TDynamicVerifier::new(MisProblem, window);
                let mut churn = ChurnStats::new();
                let observers: &mut [&mut dyn RoundObserver<MisOutput>] =
                    &mut [&mut undecided, &mut violations, &mut verifier, &mut churn];
                let scenario = Scenario::new(n)
                    .algorithm(dynamic_mis(n, window))
                    .seed(9)
                    .rounds(rounds);
                if adaptive {
                    let adv: ConflictSeekingAdversary<MisOutput, _> = ConflictSeekingAdversary::new(
                        footprint.clone(),
                        |a: &MisOutput, b: &MisOutput| a.in_mis() && b.in_mis(),
                        8,
                        0.02,
                        (2 * window) as u64,
                        91,
                    );
                    scenario.adversary(adv).run(observers);
                } else {
                    scenario
                        .adversary(FlipChurnAdversary::new(&footprint, 0.02, 90))
                        .run(observers);
                }
                let summary = verifier.into_summary();
                let churn_rate = churn.total_from(window) as f64 / (rounds - window) as f64;
                vec![
                    name.to_string(),
                    undecided.total.to_string(),
                    violations.total.to_string(),
                    format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
                    fmt2(churn_rate),
                ]
            },
            CellRows::new(
                format!(
                    "E9 — Combined MIS against oblivious vs. adaptive adversaries, n = {n}, T = {window}"
                ),
                &[
                    "adversary",
                    "undecided node-rounds (lower = faster progress)",
                    "independence violations on G^∩T (total)",
                    "T-dynamic valid rounds",
                    "output changes/round",
                ],
                |_cell: &Cell<(&str, bool)>, row: Vec<String>| vec![row],
            ),
        )
        .expect("e9 sweep")
}

/// E11: Concat vs. restart-from-scratch on identical schedules, for both
/// problems and several churn rates. One sweep cell per (churn, problem)
/// pair; each cell runs the Concat scenario, records its schedule, and
/// replays it for the restart strawman.
pub fn e11_concat_vs_restart(ctx: &ExpContext) -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = if ctx.smoke { 3 * window } else { 6 * window };
    let churns: &[f64] = if ctx.smoke {
        &[0.0, 0.01]
    } else {
        &[0.0, 0.01, 0.05]
    };
    let problems: &[&str] = &["coloring", "MIS"];
    let spec = SweepSpec::grid2("e11", churns, problems, |&churn, &problem| {
        (format!("{problem} p={churn}"), (churn, problem))
    });
    let steady = move |total: usize| total as f64 / (rounds - 2 * window) as f64;
    let period = window as u64;
    ctx.engine
        .aggregate(
            &spec,
            move |cell| {
                let (churn, problem) = cell.params;
                let footprint = generators::shared_footprint(
                    &generators::GraphFamily::ErdosRenyi { avg_degree: 8.0 },
                    n,
                    11,
                    "e11",
                    || generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(11, "e11")),
                );
                if problem == "coloring" {
                    let mut concat_verifier = TDynamicVerifier::new(ColoringProblem, window);
                    let mut concat_churn = ChurnStats::new();
                    let mut recorder = TraceRecorder::graphs_only();
                    Scenario::new(n)
                        .algorithm(dynamic_coloring(window))
                        .adversary(FlipChurnAdversary::new(
                            &footprint,
                            churn,
                            500 + (churn * 1e4) as u64,
                        ))
                        .seed(11)
                        .rounds(rounds)
                        .run(&mut [&mut concat_verifier, &mut concat_churn, &mut recorder]);
                    let concat_summary = concat_verifier.into_summary();

                    let mut restart_verifier = TDynamicVerifier::new(ColoringProblem, window);
                    let mut restart_churn = ChurnStats::new();
                    Scenario::new(n)
                        .algorithm(move |v: NodeId| RestartColoring::new(v, period))
                        .adversary(ScriptedAdversary::new(recorder.into_trace().expect("recorded trace")))
                        .seed(12)
                        .rounds(rounds)
                        .run(&mut [&mut restart_verifier, &mut restart_churn]);
                    let restart_summary = restart_verifier.into_summary();
                    (
                        concat_summary,
                        restart_summary,
                        concat_churn.total_from(2 * window),
                        restart_churn.total_from(2 * window),
                    )
                } else {
                    let mut concat_verifier = TDynamicVerifier::new(MisProblem, window);
                    let mut concat_churn = ChurnStats::new();
                    let mut recorder = TraceRecorder::graphs_only();
                    Scenario::new(n)
                        .algorithm(dynamic_mis(n, window))
                        .adversary(FlipChurnAdversary::new(
                            &footprint,
                            churn,
                            600 + (churn * 1e4) as u64,
                        ))
                        .seed(13)
                        .rounds(rounds)
                        .run(&mut [&mut concat_verifier, &mut concat_churn, &mut recorder]);
                    let concat_summary = concat_verifier.into_summary();

                    let mut restart_verifier = TDynamicVerifier::new(MisProblem, window);
                    let mut restart_churn = ChurnStats::new();
                    Scenario::new(n)
                        .algorithm(move |v: NodeId| RestartMis::new(v, period))
                        .adversary(ScriptedAdversary::new(recorder.into_trace().expect("recorded trace")))
                        .seed(14)
                        .rounds(rounds)
                        .run(&mut [&mut restart_verifier, &mut restart_churn]);
                    let restart_summary = restart_verifier.into_summary();
                    (
                        concat_summary,
                        restart_summary,
                        concat_churn.total_from(2 * window),
                        restart_churn.total_from(2 * window),
                    )
                }
            },
            CellRows::new(
                format!("E11 — Concat (Corollaries 1.2/1.3) vs. restart-every-T strawman, n = {n}, T = {window}"),
                &[
                    "problem",
                    "churn p",
                    "Concat valid rounds",
                    "restart valid rounds",
                    "Concat output changes/round",
                    "restart output changes/round",
                ],
                move |cell: &Cell<(f64, &str)>,
                      (concat, restart, concat_changes, restart_changes): (
                    VerificationSummary,
                    VerificationSummary,
                    usize,
                    usize,
                )| {
                    let (churn, problem) = cell.params;
                    vec![vec![
                        problem.to_string(),
                        format!("{churn}"),
                        format!("{}/{}", concat.rounds_valid, concat.rounds_checked),
                        format!("{}/{}", restart.rounds_valid, restart.rounds_checked),
                        fmt2(steady(concat_changes)),
                        fmt2(steady(restart_changes)),
                    ]]
                },
            ),
        )
        .expect("e11 sweep")
}

/// Streaming observer running one TDMA frame per round (from `from` on).
struct TdmaProbe {
    from: u64,
    success_rates: Vec<f64>,
    frame_lengths: Vec<f64>,
    max_deg: usize,
}

impl RoundObserver<ColorOutput> for TdmaProbe {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        if view.round < self.from {
            return;
        }
        let g = view.current_graph();
        self.max_deg = self.max_deg.max(g.max_degree());
        let colors: Vec<ColorOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        let frame = tdma::run_frame(g, &colors);
        self.success_rates.push(frame.success_rate());
        self.frame_lengths.push(frame.frame_length as f64);
    }
}

/// E13: TDMA slot assignment under random-waypoint mobility. One sweep cell
/// per speed band; each cell's observer set (probe + trace recorder) is
/// built by an `ObserverFactory` on the worker that runs the cell.
pub fn e13_tdma_mobility(ctx: &ExpContext) -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = if ctx.smoke { 2 * window } else { 5 * window };
    let all_speeds: &[(&str, f64, f64)] = &[
        ("static (0)", 0.0, 0.0),
        ("slow (0.002–0.01)", 0.002, 0.01),
        ("fast (0.01–0.03)", 0.01, 0.03),
    ];
    let speeds = if ctx.smoke {
        &all_speeds[..2]
    } else {
        all_speeds
    };
    let spec = SweepSpec::grid1("e13", speeds, |&(name, lo, hi)| {
        (name.to_string(), (name, lo, hi))
    });
    let run = run_observed(
        &ctx.engine,
        &spec,
        || {
            (
                TdmaProbe {
                    from: window as u64,
                    success_rates: Vec::new(),
                    frame_lengths: Vec::new(),
                    max_deg: 0,
                },
                TraceRecorder::<ColorOutput>::graphs_only(),
            )
        },
        |cell, observers| {
            let (_, min_speed, max_speed) = cell.params;
            Scenario::new(n)
                .algorithm(dynamic_coloring(window))
                .adversary(MobilityAdversary::new(
                    MobilityConfig {
                        n,
                        radius: 0.08,
                        min_speed,
                        max_speed,
                    },
                    131,
                ))
                .seed(13)
                .rounds(rounds)
                .run(&mut [observers]);
        },
    )
    .expect("e13 sweep");
    let mut table = Table::new(
        format!("E13 — TDMA on the combined coloring under mobility, n = {n}, T = {window}"),
        &[
            "speed (per round)",
            "edge changes/round",
            "mean frame success rate",
            "min frame success rate",
            "mean frame length",
            "max degree+1 (upper bound)",
        ],
    );
    for (cell, (probe, recorder)) in spec.cells().iter().zip(run.into_results()) {
        let s = Summary::of(&probe.success_rates);
        table.push_row(vec![
            cell.params.0.to_string(),
            fmt2(recorder.trace().map_or(0, |t| t.total_edge_changes()) as f64 / rounds as f64),
            fmt_pct(s.mean),
            fmt_pct(s.min),
            fmt2(Summary::of(&probe.frame_lengths).mean),
            (probe.max_deg + 1).to_string(),
        ]);
    }
    vec![table]
}

/// E14: simulator throughput — wall-clock time per round for the sequential
/// and the rayon-parallel executor at increasing network sizes, for a plain
/// single-instance algorithm (DMis) and for the full combined algorithm of
/// Corollary 1.3 (which runs Θ(log n) pipelined instances per node). Runs on
/// the *serial* engine: this experiment measures time, so its cells must not
/// compete with each other for cores.
pub fn e14_simulator_throughput(ctx: &ExpContext) -> Vec<Table> {
    let time_per_round = |parallel: bool, n: usize, rounds: usize, combined: bool| -> f64 {
        let window = recommended_window(n);
        let footprint = generators::shared_footprint(
            &generators::GraphFamily::ErdosRenyi { avg_degree: 10.0 },
            n,
            14,
            "e14",
            || {
                generators::erdos_renyi_avg_degree(
                    n,
                    10.0,
                    &mut experiment_rng(14, &format!("e14-{n}")),
                )
            },
        );
        let config = SimConfig {
            seed: 14,
            parallel,
            parallel_threshold: 0,
            ..SimConfig::default()
        };
        // TIMING: this experiment (E13) measures wall-clock speedup; timings
        // are reported as measurements, not mixed into simulation output.
        let start = Instant::now();
        if combined {
            Scenario::new(n)
                .algorithm(dynamic_mis(n, window))
                .adversary(FlipChurnAdversary::new(&footprint, 0.01, 140))
                .config(config)
                .rounds(rounds)
                .run(&mut []);
        } else {
            Scenario::new(n)
                .algorithm(|v: NodeId| DMis::new(v, MisOutput::Undecided))
                .adversary(FlipChurnAdversary::new(&footprint, 0.01, 140))
                .config(config)
                .rounds(rounds)
                .run(&mut []);
        }
        start.elapsed().as_secs_f64() * 1000.0 / rounds as f64
    };
    // (combined?, n, rounds) in presentation order: single-instance sizes
    // first, then the combined algorithm.
    let mut spec = SweepSpec::new("e14");
    let single_ns: &[usize] = if ctx.smoke {
        &[4_000]
    } else {
        &[4_000, 16_000, 64_000]
    };
    let combined_ns: &[usize] = if ctx.smoke { &[1_000] } else { &[1_000, 4_000] };
    for &n in single_ns {
        spec.push(format!("DMis n={n}"), (false, n, 20usize));
    }
    for &n in combined_ns {
        spec.push(format!("combined n={n}"), (true, n, 15usize));
    }
    ctx.serial_engine()
        .aggregate(
            &spec,
            move |cell| {
                let (combined, n, rounds) = cell.params;
                let seq = time_per_round(false, n, rounds, combined);
                let par = time_per_round(true, n, rounds, combined);
                (seq, par)
            },
            CellRows::new(
                "E14 — Simulator throughput (ER d̄=10, churn p=0.01, release build)",
                &[
                    "algorithm",
                    "n",
                    "sequential ms/round",
                    "parallel ms/round",
                    "speedup",
                ],
                |cell: &Cell<(bool, usize, usize)>, (seq, par): (f64, f64)| {
                    let (combined, n, _) = cell.params;
                    vec![vec![
                        if combined {
                            "Combined MIS (Corollary 1.3)".into()
                        } else {
                            "DMis (single instance)".into()
                        },
                        n.to_string(),
                        fmt2(seq),
                        fmt2(par),
                        fmt2(seq / par),
                    ]]
                },
            ),
        )
        .expect("e14 sweep")
}
