//! Comparison experiments: oblivious vs. adaptive adversaries (E9), the
//! Concat framework vs. the restart-from-scratch strawman (E11), the TDMA
//! application under mobility (E13), and simulator throughput (E14).

use dynnet::algorithms::apps::tdma;
use dynnet::core::mis::independence_violations;
use dynnet::metrics::{fmt2, fmt_pct, Summary, Table};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::time::Instant;

fn collect<O: Clone>(record: &ExecutionRecord<O>) -> (Vec<Graph>, Vec<Vec<Option<O>>>) {
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs = (0..record.num_rounds())
        .map(|r| record.outputs_at(r).to_vec())
        .collect();
    (graphs, outputs)
}

/// E9: DMis against an oblivious churn adversary vs. an adaptive,
/// output-aware conflict seeker. The adaptive adversary may slow progress
/// (the O(log n) bound of Lemma 5.4 assumes 2-obliviousness) but can never
/// violate the deterministic independence guarantee.
pub fn e9_oblivious_vs_adaptive() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let mut table = Table::new(
        format!("E9 — Combined MIS against oblivious vs. adaptive adversaries, n = {n}, T = {window}"),
        &[
            "adversary",
            "undecided node-rounds (lower = faster progress)",
            "independence violations on G^∩T (total)",
            "T-dynamic valid rounds",
            "output changes/round",
        ],
    );
    let footprint = generators::grid(16, 16);
    let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();

    let run_case = |name: &str, adv: &mut dyn OutputAdversary<MisOutput>| -> Vec<String> {
        let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(9));
        let record = run(&mut sim, &mut *adv, rounds);
        let (graphs, outputs) = collect(&record);
        let summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);
        // Count undecided node-rounds after the first window as a progress proxy.
        let undecided: usize = (window..rounds)
            .map(|r| {
                outputs[r]
                    .iter()
                    .filter(|o| o.map(|s| s == MisOutput::Undecided).unwrap_or(true))
                    .count()
            })
            .sum();
        // Independence violations on the window intersection graph.
        let mut w = GraphWindow::new(n, window);
        let mut violations = 0usize;
        for r in 0..rounds {
            w.push(&graphs[r]);
            let out: Vec<MisOutput> = outputs[r]
                .iter()
                .map(|o| o.unwrap_or(MisOutput::Undecided))
                .collect();
            violations += independence_violations(&w.intersection_graph(), &out);
        }
        let churn_series = dynnet::core::output_churn_series(&outputs, &nodes);
        let churn =
            churn_series[window..].iter().sum::<usize>() as f64 / (rounds - window) as f64;
        vec![
            name.to_string(),
            undecided.to_string(),
            violations.to_string(),
            format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
            fmt2(churn),
        ]
    };

    let mut oblivious = FlipChurnAdversary::new(&footprint, 0.02, 90);
    table.push_row(run_case("oblivious flip churn p=0.02", &mut oblivious));
    let mut adaptive: ConflictSeekingAdversary<MisOutput, _> = ConflictSeekingAdversary::new(
        footprint.clone(),
        |a: &MisOutput, b: &MisOutput| a.in_mis() && b.in_mis(),
        8,
        0.02,
        (2 * window) as u64,
        91,
    );
    table.push_row(run_case("adaptive conflict seeker (wires MIS members together)", &mut adaptive));
    vec![table]
}

/// E11: Concat vs. restart-from-scratch on identical schedules, for both
/// problems and several churn rates.
pub fn e11_concat_vs_restart() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 6 * window;
    let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(11, "e11"));
    let mut table = Table::new(
        format!("E11 — Concat (Corollaries 1.2/1.3) vs. restart-every-T strawman, n = {n}, T = {window}"),
        &[
            "problem",
            "churn p",
            "Concat valid rounds",
            "restart valid rounds",
            "Concat output changes/round",
            "restart output changes/round",
        ],
    );
    for churn in [0.0, 0.01, 0.05] {
        // --- Coloring ---
        let mut adv = FlipChurnAdversary::new(&footprint, churn, 500 + (churn * 1e4) as u64);
        let mut sim =
            Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(11));
        let record = run(&mut sim, &mut adv, rounds);
        let (graphs, outputs) = collect(&record);
        let concat_summary =
            verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, window - 1);
        let concat_churn = dynnet::core::output_churn_series(&outputs, &nodes)[2 * window..]
            .iter()
            .sum::<usize>() as f64
            / (rounds - 2 * window) as f64;

        let period = window as u64;
        let mut replay = ScriptedAdversary::new(record.trace.clone());
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| RestartColoring::new(v, period),
            AllAtStart,
            SimConfig::sequential(12),
        );
        let record_restart = run(&mut sim, &mut replay, rounds);
        let (_, outputs_restart) = collect(&record_restart);
        let restart_summary =
            verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs_restart, window, window - 1);
        let restart_churn = dynnet::core::output_churn_series(&outputs_restart, &nodes)
            [2 * window..]
            .iter()
            .sum::<usize>() as f64
            / (rounds - 2 * window) as f64;
        table.push_row(vec![
            "coloring".into(),
            format!("{churn}"),
            format!("{}/{}", concat_summary.rounds_valid, concat_summary.rounds_checked),
            format!("{}/{}", restart_summary.rounds_valid, restart_summary.rounds_checked),
            fmt2(concat_churn),
            fmt2(restart_churn),
        ]);

        // --- MIS ---
        let mut adv = FlipChurnAdversary::new(&footprint, churn, 600 + (churn * 1e4) as u64);
        let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(13));
        let record = run(&mut sim, &mut adv, rounds);
        let (graphs, outputs) = collect(&record);
        let concat_summary =
            verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);
        let concat_churn = dynnet::core::output_churn_series(&outputs, &nodes)[2 * window..]
            .iter()
            .sum::<usize>() as f64
            / (rounds - 2 * window) as f64;
        let mut replay = ScriptedAdversary::new(record.trace.clone());
        let mut sim = Simulator::new(
            n,
            move |v: NodeId| RestartMis::new(v, period),
            AllAtStart,
            SimConfig::sequential(14),
        );
        let record_restart = run(&mut sim, &mut replay, rounds);
        let (_, outputs_restart) = collect(&record_restart);
        let restart_summary =
            verify_t_dynamic_run(&MisProblem, &graphs, &outputs_restart, window, window - 1);
        let restart_churn = dynnet::core::output_churn_series(&outputs_restart, &nodes)
            [2 * window..]
            .iter()
            .sum::<usize>() as f64
            / (rounds - 2 * window) as f64;
        table.push_row(vec![
            "MIS".into(),
            format!("{churn}"),
            format!("{}/{}", concat_summary.rounds_valid, concat_summary.rounds_checked),
            format!("{}/{}", restart_summary.rounds_valid, restart_summary.rounds_checked),
            fmt2(concat_churn),
            fmt2(restart_churn),
        ]);
    }
    vec![table]
}

/// E13: TDMA slot assignment under random-waypoint mobility.
pub fn e13_tdma_mobility() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 5 * window;
    let mut table = Table::new(
        format!("E13 — TDMA on the combined coloring under mobility, n = {n}, T = {window}"),
        &[
            "speed (per round)",
            "edge changes/round",
            "mean frame success rate",
            "min frame success rate",
            "mean frame length",
            "max degree+1 (upper bound)",
        ],
    );
    for (name, min_speed, max_speed) in [
        ("static (0)", 0.0, 0.0),
        ("slow (0.002–0.01)", 0.002, 0.01),
        ("fast (0.01–0.03)", 0.01, 0.03),
    ] {
        let mut adv = MobilityAdversary::new(
            MobilityConfig { n, radius: 0.08, min_speed, max_speed },
            131,
        );
        let mut sim =
            Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(13));
        let record = run(&mut sim, &mut adv, rounds);
        let mut success_rates = Vec::new();
        let mut frame_lengths = Vec::new();
        let mut max_deg = 0usize;
        for r in window..rounds {
            let g = record.graph_at(r);
            max_deg = max_deg.max(g.max_degree());
            let colors: Vec<ColorOutput> = record
                .outputs_at(r)
                .iter()
                .map(|o| o.unwrap_or(ColorOutput::Undecided))
                .collect();
            let frame = tdma::run_frame(&g, &colors);
            success_rates.push(frame.success_rate());
            frame_lengths.push(frame.frame_length as f64);
        }
        let s = Summary::of(&success_rates);
        table.push_row(vec![
            name.to_string(),
            fmt2(record.trace.total_edge_changes() as f64 / rounds as f64),
            fmt_pct(s.mean),
            fmt_pct(s.min),
            fmt2(Summary::of(&frame_lengths).mean),
            (max_deg + 1).to_string(),
        ]);
    }
    vec![table]
}

/// E14: simulator throughput — wall-clock time per round for the sequential
/// and the rayon-parallel executor at increasing network sizes, for a plain
/// single-instance algorithm (DMis) and for the full combined algorithm of
/// Corollary 1.3 (which runs Θ(log n) pipelined instances per node).
pub fn e14_simulator_throughput() -> Vec<Table> {
    let mut table = Table::new(
        "E14 — Simulator throughput (ER d̄=10, churn p=0.01, release build)",
        &["algorithm", "n", "sequential ms/round", "parallel ms/round", "speedup"],
    );
    let time_per_round = |parallel: bool, n: usize, rounds: usize, combined: bool| -> f64 {
        let window = recommended_window(n);
        let footprint =
            generators::erdos_renyi_avg_degree(n, 10.0, &mut experiment_rng(14, &format!("e14-{n}")));
        let config = SimConfig { seed: 14, parallel, parallel_threshold: 0 };
        let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 140);
        let start = Instant::now();
        if combined {
            let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, config);
            let _ = run(&mut sim, &mut adv, rounds);
        } else {
            let factory = |v: NodeId| DMis::new(v, MisOutput::Undecided);
            let mut sim = Simulator::new(n, factory, AllAtStart, config);
            let _ = run(&mut sim, &mut adv, rounds);
        }
        start.elapsed().as_secs_f64() * 1000.0 / rounds as f64
    };
    for &n in &[4_000usize, 16_000, 64_000] {
        let seq = time_per_round(false, n, 20, false);
        let par = time_per_round(true, n, 20, false);
        table.push_row(vec![
            "DMis (single instance)".into(),
            n.to_string(),
            fmt2(seq),
            fmt2(par),
            fmt2(seq / par),
        ]);
    }
    for &n in &[1_000usize, 4_000] {
        let seq = time_per_round(false, n, 15, true);
        let par = time_per_round(true, n, 15, true);
        table.push_row(vec![
            "Combined MIS (Corollary 1.3)".into(),
            n.to_string(),
            fmt2(seq),
            fmt2(par),
            fmt2(seq / par),
        ]);
    }
    vec![table]
}
