//! Guarantee experiments for the combined algorithms (Theorem 1.1 /
//! Corollaries 1.2 and 1.3): per-round T-dynamic validity under churn,
//! conflict-resolution latency, locally-static stability, asynchronous
//! wake-up, and the effect of choosing the window too small.

use dynnet::core::coloring::max_color_used;
use dynnet::metrics::{fmt2, fmt_pct, Summary, Table};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

fn collect<O: Clone>(record: &ExecutionRecord<O>) -> (Vec<Graph>, Vec<Vec<Option<O>>>) {
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs = (0..record.num_rounds())
        .map(|r| record.outputs_at(r).to_vec())
        .collect();
    (graphs, outputs)
}

/// Longest per-edge conflict duration (after warm-up): for every edge, the
/// longest streak of consecutive rounds in which the edge is present in the
/// current graph *and* both endpoints output the same color. This is the
/// quantity Corollary 1.2 bounds by `T`: a newly inserted edge's conflict is
/// resolved within one window.
fn longest_conflict_streak(record: &ExecutionRecord<ColorOutput>, from: usize) -> usize {
    use std::collections::HashMap;
    let mut streaks: HashMap<Edge, usize> = HashMap::new();
    let mut longest = 0usize;
    for r in from..record.num_rounds() {
        let g = record.graph_at(r);
        let out: Vec<ColorOutput> = record
            .outputs_at(r)
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        let mut conflicting: Vec<Edge> = Vec::new();
        for e in g.edges() {
            if let (Some(a), Some(b)) = (out[e.u.index()].color(), out[e.v.index()].color()) {
                if a == b {
                    conflicting.push(e);
                }
            }
        }
        let mut next: HashMap<Edge, usize> = HashMap::new();
        for e in conflicting {
            let len = streaks.get(&e).copied().unwrap_or(0) + 1;
            longest = longest.max(len);
            next.insert(e, len);
        }
        streaks = next;
    }
    longest
}

/// E4: the combined coloring under a churn-rate sweep.
pub fn e4_combined_coloring_under_churn() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let mut table = Table::new(
        format!("E4 — Combined coloring (Corollary 1.2), n = {n}, T = {window}, {rounds} rounds"),
        &[
            "churn p",
            "edge changes/round",
            "T-dynamic valid rounds",
            "max per-edge conflict duration (< T?)",
            "max color used",
            "max degree + 1",
        ],
    );
    for churn in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let footprint =
            generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(4, "e4"));
        let mut adv = FlipChurnAdversary::new(&footprint, churn, 400 + (churn * 1e4) as u64);
        let mut sim =
            Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(4));
        let record = run(&mut sim, &mut adv, rounds);
        let (graphs, outputs) = collect(&record);
        let summary = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, window - 1);
        let streak = longest_conflict_streak(&record, window);
        let final_out: Vec<ColorOutput> = outputs[rounds - 1]
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        table.push_row(vec![
            format!("{churn}"),
            fmt2(record.trace.total_edge_changes() as f64 / rounds as f64),
            format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
            format!("{streak} ({})", if streak < window { "yes" } else { "NO" }),
            max_color_used(&final_out).to_string(),
            (footprint.max_degree() + 1).to_string(),
        ]);
    }
    vec![table]
}

/// E5: locally-static stability of the combined coloring.
pub fn e5_locally_static_coloring() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 5 * window;
    let base = generators::grid(16, 16);
    let seeds: Vec<NodeId> = vec![NodeId::new(8 * 16 + 8), NodeId::new(4 * 16 + 4), NodeId::new(12 * 16 + 11)];
    let mut table = Table::new(
        format!("E5 — Locally-static stability (Corollary 1.2), 16×16 grid, T = {window}, churn 0.3 outside the protected region"),
        &[
            "protected node",
            "last output change (round)",
            "bound 2T",
            "within bound",
            "mean churn of unprotected nodes (changes/node)",
        ],
    );
    let mut adv = LocallyStaticAdversary::new(base, seeds.clone(), 2, 0.3, 5);
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(5));
    let record = run(&mut sim, &mut adv, rounds);
    let (_, outputs) = collect(&record);
    // Mean number of output changes of unprotected nodes (they keep churning).
    let unprotected: Vec<NodeId> = (0..n)
        .map(NodeId::new)
        .filter(|v| !seeds.contains(v))
        .collect();
    let churn_per_node: Vec<f64> = unprotected
        .iter()
        .map(|&v| {
            (1..rounds)
                .filter(|&r| outputs[r][v.index()] != outputs[r - 1][v.index()])
                .count() as f64
        })
        .collect();
    let unprotected_churn = Summary::of(&churn_per_node).mean;
    for &v in &seeds {
        let last_change = dynnet::core::last_change_round(&outputs, v).unwrap_or(0);
        table.push_row(vec![
            format!("{v}"),
            last_change.to_string(),
            (2 * window).to_string(),
            if last_change <= 2 * window { "yes".into() } else { "NO".into() },
            fmt2(unprotected_churn),
        ]);
    }
    vec![table]
}

/// E8: the combined MIS under churn and mobility.
pub fn e8_combined_mis_under_churn() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let mut table = Table::new(
        format!("E8 — Combined MIS (Corollary 1.3), n = {n}, T = {window}, {rounds} rounds"),
        &[
            "workload",
            "edge changes/round",
            "T-dynamic valid rounds",
            "MIS size (final)",
            "output changes/round (steady state)",
        ],
    );
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(8, "e8"));
    let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let workloads: Vec<(String, Box<dyn OutputAdversary<MisOutput>>)> = vec![
        ("static".into(), Box::new(StaticAdversary::new(footprint.clone()))),
        ("flip churn p=0.01".into(), Box::new(FlipChurnAdversary::new(&footprint, 0.01, 81))),
        ("flip churn p=0.05".into(), Box::new(FlipChurnAdversary::new(&footprint, 0.05, 82))),
        (
            "mobility (random waypoint)".into(),
            Box::new(MobilityAdversary::new(
                MobilityConfig { n, radius: 0.08, min_speed: 0.002, max_speed: 0.01 },
                83,
            )),
        ),
        (
            "node churn leave=0.02 join=0.1".into(),
            Box::new(NodeChurnAdversary::new(footprint.clone(), 0.02, 0.1, 84)),
        ),
    ];
    for (name, mut adv) in workloads {
        let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(8));
        let record = run(&mut sim, adv.as_mut(), rounds);
        let (graphs, outputs) = collect(&record);
        let summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);
        let final_out: Vec<MisOutput> = outputs[rounds - 1]
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        let churn_series = dynnet::core::output_churn_series(&outputs, &nodes);
        let steady_churn =
            churn_series[2 * window..].iter().sum::<usize>() as f64 / (rounds - 2 * window) as f64;
        table.push_row(vec![
            name,
            fmt2(record.trace.total_edge_changes() as f64 / rounds as f64),
            format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
            dynnet::core::mis::mis_size(&final_out).to_string(),
            fmt2(steady_churn),
        ]);
    }
    vec![table]
}

/// E10: asynchronous wake-up — convergence measured from each node's own
/// wake-up round, plus validity once everyone has been awake for a window.
pub fn e10_asynchronous_wakeup() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 6 * window;
    let mut table = Table::new(
        format!("E10 — Asynchronous wake-up, combined coloring, n = {n}, T = {window}"),
        &[
            "wake-up schedule",
            "rounds to first decision after wake (mean)",
            "rounds to first decision after wake (p95)",
            "T-dynamic valid rounds after warm-up",
        ],
    );
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(10, "e10"));
    let schedules: Vec<(String, Vec<u64>)> = vec![
        ("all at round 0".into(), vec![0; n]),
        (
            "uniform over [0, 2T]".into(),
            {
                let w = RandomWakeup::new(n, 2 * window as u64, 55);
                (0..n).map(|i| w.wake_round(NodeId::new(i))).collect()
            },
        ),
        (
            "staggered (stride 1)".into(),
            (0..n).map(|i| (i as u64).min(3 * window as u64)).collect(),
        ),
    ];
    for (name, wake_rounds) in schedules {
        let wake = dynnet::runtime::ScriptedWakeup { rounds: wake_rounds.clone() };
        let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 101);
        let mut sim = Simulator::new(n, dynamic_coloring(window), wake, SimConfig::sequential(10));
        let record = run(&mut sim, &mut adv, rounds);
        let (graphs, outputs) = collect(&record);
        // Rounds from wake-up until the node's output is first decided.
        let mut latency = Vec::new();
        for i in 0..n {
            let wake_round = wake_rounds[i] as usize;
            let first_decided = (wake_round..rounds).find(|&r| {
                outputs[r][i].map(|o: ColorOutput| o.is_decided()).unwrap_or(false)
            });
            if let Some(r) = first_decided {
                latency.push((r - wake_round) as f64);
            }
        }
        let s = Summary::of(&latency);
        let warmup = wake_rounds.iter().map(|&w| w as usize).max().unwrap_or(0) + window;
        let summary = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, warmup);
        table.push_row(vec![
            name,
            fmt2(s.mean),
            fmt2(s.p95),
            format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
        ]);
    }
    vec![table]
}

/// E12: sweep the window size below and above the recommended `Θ(log n)`
/// value; too-small windows must lose the per-round guarantee.
pub fn e12_window_size_sweep() -> Vec<Table> {
    let n = 256;
    let recommended = recommended_window(n);
    let rounds = 4 * recommended;
    let mut table = Table::new(
        format!("E12 — Window-size sweep, combined coloring, n = {n} (recommended T = {recommended})"),
        &["window T", "T-dynamic valid fraction", "undecided node-rounds", "verdict"],
    );
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(12, "e12"));
    for window in [3usize, 6, 12, recommended / 2, recommended] {
        let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 120 + window as u64);
        let mut sim =
            Simulator::new(n, dynamic_coloring(window.max(2)), AllAtStart, SimConfig::sequential(12));
        let record = run(&mut sim, &mut adv, rounds);
        let (graphs, outputs) = collect(&record);
        let summary =
            verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window.max(2), window.max(2));
        table.push_row(vec![
            window.to_string(),
            fmt_pct(summary.valid_fraction()),
            summary.total_undecided.to_string(),
            if summary.valid_fraction() > 0.999 { "holds".into() } else { "fails (T too small)".into() },
        ]);
    }
    vec![table]
}
