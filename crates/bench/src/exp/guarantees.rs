//! Guarantee experiments for the combined algorithms (Theorem 1.1 /
//! Corollaries 1.2 and 1.3): per-round T-dynamic validity under churn,
//! conflict-resolution latency, locally-static stability, asynchronous
//! wake-up, and the effect of choosing the window too small. All runs stream
//! through `Scenario` observers constructed per sweep cell; the grids are
//! declared as `SweepSpec`s and executed on the harness `SweepEngine`.

use super::ExpContext;
use dynnet::core::coloring::max_color_used;
use dynnet::metrics::{fmt2, fmt_pct, Summary, Table};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::sweep::{Cell, CellRows, SweepSpec};
use std::collections::HashMap;

/// Streaming observer measuring the longest per-edge conflict duration
/// (after `from`): for every edge, the longest streak of consecutive rounds
/// in which the edge is present in the current graph *and* both endpoints
/// output the same color. This is the quantity Corollary 1.2 bounds by `T`:
/// a newly inserted edge's conflict is resolved within one window.
struct EdgeConflictStreak {
    from: u64,
    streaks: HashMap<Edge, usize>,
    longest: usize,
}

impl EdgeConflictStreak {
    fn new(from: usize) -> Self {
        EdgeConflictStreak {
            from: from as u64,
            streaks: HashMap::new(),
            longest: 0,
        }
    }
}

impl RoundObserver<ColorOutput> for EdgeConflictStreak {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        if view.round < self.from {
            return;
        }
        let g = view.current_graph();
        let out: Vec<ColorOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        let mut next: HashMap<Edge, usize> = HashMap::new();
        for e in g.edges() {
            if let (Some(a), Some(b)) = (out[e.u.index()].color(), out[e.v.index()].color()) {
                if a == b {
                    let len = self.streaks.get(&e).copied().unwrap_or(0) + 1;
                    self.longest = self.longest.max(len);
                    next.insert(e, len);
                }
            }
        }
        self.streaks = next;
    }
}

/// E4: the combined coloring under a churn-rate sweep — one cell per churn
/// rate, each constructing its own verifier/streak/recorder observers.
pub fn e4_combined_coloring_under_churn(ctx: &ExpContext) -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = if ctx.smoke { 2 * window } else { 4 * window };
    let churns: &[f64] = if ctx.smoke {
        &[0.0, 0.01]
    } else {
        &[0.0, 0.005, 0.01, 0.02, 0.05, 0.1]
    };
    let spec = SweepSpec::grid1("e4", churns, |&churn| (format!("p={churn}"), churn));
    ctx.aggregate(
        &spec,
        |cell| {
            let churn = cell.params;
            let footprint = generators::shared_footprint(
                &generators::GraphFamily::ErdosRenyi { avg_degree: 8.0 },
                n,
                4,
                "e4",
                || generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(4, "e4")),
            );
            let mut verifier = TDynamicVerifier::new(ColoringProblem, window);
            let mut streak = EdgeConflictStreak::new(window);
            let mut recorder = TraceRecorder::graphs_only();
            let runner = Scenario::new(n)
                .algorithm(dynamic_coloring(window))
                .adversary(FlipChurnAdversary::new(
                    &footprint,
                    churn,
                    400 + (churn * 1e4) as u64,
                ))
                .seed(4)
                .rounds(rounds)
                .run(&mut [&mut verifier, &mut streak, &mut recorder]);
            let summary = verifier.into_summary();
            let final_out: Vec<ColorOutput> = runner
                .outputs()
                .iter()
                .map(|o| o.unwrap_or(ColorOutput::Undecided))
                .collect();
            vec![
                format!("{churn}"),
                fmt2(recorder.trace().map_or(0, |t| t.total_edge_changes()) as f64 / rounds as f64),
                format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
                format!(
                    "{} ({})",
                    streak.longest,
                    if streak.longest < window { "yes" } else { "NO" }
                ),
                max_color_used(&final_out).to_string(),
                (footprint.max_degree() + 1).to_string(),
            ]
        },
        CellRows::new(
            format!(
                "E4 — Combined coloring (Corollary 1.2), n = {n}, T = {window}, {rounds} rounds"
            ),
            &[
                "churn p",
                "edge changes/round",
                "T-dynamic valid rounds",
                "max per-edge conflict duration (< T?)",
                "max color used",
                "max degree + 1",
            ],
            |_cell: &Cell<f64>, row: Vec<String>| vec![row],
        ),
    )
}

/// E5: locally-static stability of the combined coloring — a single-cell
/// sweep (one scenario) whose result rows cover the three protected nodes.
pub fn e5_locally_static_coloring(ctx: &ExpContext) -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = if ctx.smoke { 3 * window } else { 5 * window };
    let seeds: Vec<NodeId> = vec![
        NodeId::new(8 * 16 + 8),
        NodeId::new(4 * 16 + 4),
        NodeId::new(12 * 16 + 11),
    ];
    let spec = SweepSpec::new("e5").cell("16×16 grid", seeds);
    ctx.aggregate(
            &spec,
            |cell| {
                let seeds = &cell.params;
                let base = generators::grid(16, 16);
                let mut churn = ChurnStats::new();
                Scenario::new(n)
                    .algorithm(dynamic_coloring(window))
                    .adversary(LocallyStaticAdversary::new(base, seeds.clone(), 2, 0.3, 5))
                    .seed(5)
                    .rounds(rounds)
                    .run(&mut [&mut churn]);
                // Mean number of output changes of unprotected nodes (they
                // keep churning).
                let unprotected_changes: Vec<f64> = (0..n)
                    .map(NodeId::new)
                    .filter(|v| !seeds.contains(v))
                    .map(|v| churn.per_node()[v.index()] as f64)
                    .collect();
                let unprotected_churn = Summary::of(&unprotected_changes).mean;
                seeds
                    .iter()
                    .map(|&v| {
                        let last_change = churn.last_change_round(v).unwrap_or(0);
                        vec![
                            format!("{v}"),
                            last_change.to_string(),
                            (2 * window).to_string(),
                            if last_change <= 2 * window {
                                "yes".into()
                            } else {
                                "NO".into()
                            },
                            fmt2(unprotected_churn),
                        ]
                    })
                    .collect::<Vec<_>>()
            },
            CellRows::new(
                format!("E5 — Locally-static stability (Corollary 1.2), 16×16 grid, T = {window}, churn 0.3 outside the protected region"),
                &[
                    "protected node",
                    "last output change (round)",
                    "bound 2T",
                    "within bound",
                    "mean churn of unprotected nodes (changes/node)",
                ],
                |_cell: &Cell<Vec<NodeId>>, rows: Vec<Vec<String>>| rows,
            ),
    )
}

/// The E8 workload grid: each cell names one adversary configuration and
/// constructs it on the worker that runs the cell.
#[derive(Clone, Copy)]
enum E8Workload {
    Static,
    /// Flip churn at the given rate, with its own RNG seed.
    Flip(f64, u64),
    Mobility,
    NodeChurn,
}

/// E8: the combined MIS under churn and mobility — one sweep cell per
/// workload.
pub fn e8_combined_mis_under_churn(ctx: &ExpContext) -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = if ctx.smoke { 3 * window } else { 4 * window };
    let all_workloads: &[(&str, E8Workload)] = &[
        ("static", E8Workload::Static),
        ("flip churn p=0.01", E8Workload::Flip(0.01, 81)),
        ("flip churn p=0.05", E8Workload::Flip(0.05, 82)),
        ("mobility (random waypoint)", E8Workload::Mobility),
        ("node churn leave=0.02 join=0.1", E8Workload::NodeChurn),
    ];
    let workloads = if ctx.smoke {
        &all_workloads[..2]
    } else {
        all_workloads
    };
    let spec = SweepSpec::grid1("e8", workloads, |&(name, w)| (name.to_string(), (name, w)));
    ctx.aggregate(
        &spec,
        |cell| {
            let (name, workload) = cell.params;
            let footprint = generators::shared_footprint(
                &generators::GraphFamily::ErdosRenyi { avg_degree: 8.0 },
                n,
                8,
                "e8",
                || generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(8, "e8")),
            );
            let adv: Box<dyn OutputAdversary<MisOutput>> = match workload {
                E8Workload::Static => Box::new(StaticAdversary::new((*footprint).clone())),
                E8Workload::Flip(p, seed) => Box::new(FlipChurnAdversary::new(&footprint, p, seed)),
                E8Workload::Mobility => Box::new(MobilityAdversary::new(
                    MobilityConfig {
                        n,
                        radius: 0.08,
                        min_speed: 0.002,
                        max_speed: 0.01,
                    },
                    83,
                )),
                E8Workload::NodeChurn => {
                    Box::new(NodeChurnAdversary::new((*footprint).clone(), 0.02, 0.1, 84))
                }
            };
            let mut verifier = TDynamicVerifier::new(MisProblem, window);
            let mut churn = ChurnStats::new();
            let mut recorder = TraceRecorder::graphs_only();
            let runner = Scenario::new(n)
                .algorithm(dynamic_mis(n, window))
                .adversary(adv)
                .seed(8)
                .rounds(rounds)
                .run(&mut [&mut verifier, &mut churn, &mut recorder]);
            let summary = verifier.into_summary();
            let final_out: Vec<MisOutput> = runner
                .outputs()
                .iter()
                .map(|o| o.unwrap_or(MisOutput::Undecided))
                .collect();
            let steady_churn = churn.total_from(2 * window) as f64 / (rounds - 2 * window) as f64;
            vec![
                name.to_string(),
                fmt2(recorder.trace().map_or(0, |t| t.total_edge_changes()) as f64 / rounds as f64),
                format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
                dynnet::core::mis::mis_size(&final_out).to_string(),
                fmt2(steady_churn),
            ]
        },
        CellRows::new(
            format!("E8 — Combined MIS (Corollary 1.3), n = {n}, T = {window}, {rounds} rounds"),
            &[
                "workload",
                "edge changes/round",
                "T-dynamic valid rounds",
                "MIS size (final)",
                "output changes/round (steady state)",
            ],
            |_cell: &Cell<(&str, E8Workload)>, row: Vec<String>| vec![row],
        ),
    )
}

/// The E10 wake-up schedule grid.
#[derive(Clone, Copy)]
enum E10Schedule {
    AllAtZero,
    Uniform,
    Staggered,
}

/// E10: asynchronous wake-up — convergence measured from each node's own
/// wake-up round, plus validity once everyone has been awake for a window.
/// One sweep cell per wake-up schedule.
pub fn e10_asynchronous_wakeup(ctx: &ExpContext) -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = if ctx.smoke { 4 * window } else { 6 * window };
    let all_schedules: &[(&str, E10Schedule)] = &[
        ("all at round 0", E10Schedule::AllAtZero),
        ("uniform over [0, 2T]", E10Schedule::Uniform),
        ("staggered (stride 1)", E10Schedule::Staggered),
    ];
    let schedules = if ctx.smoke {
        &all_schedules[..2]
    } else {
        all_schedules
    };
    let spec = SweepSpec::grid1("e10", schedules, |&(name, s)| (name.to_string(), (name, s)));
    ctx.aggregate(
        &spec,
        |cell| {
            let (name, schedule) = cell.params;
            let footprint = generators::shared_footprint(
                &generators::GraphFamily::ErdosRenyi { avg_degree: 8.0 },
                n,
                10,
                "e10",
                || generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(10, "e10")),
            );
            let wake_rounds: Vec<u64> = match schedule {
                E10Schedule::AllAtZero => vec![0; n],
                E10Schedule::Uniform => {
                    let w = RandomWakeup::new(n, 2 * window as u64, 55);
                    (0..n).map(|i| w.wake_round(NodeId::new(i))).collect()
                }
                E10Schedule::Staggered => {
                    (0..n).map(|i| (i as u64).min(3 * window as u64)).collect()
                }
            };
            let warmup = wake_rounds.iter().map(|&w| w as usize).max().unwrap_or(0) + window;
            let mut tracker = ConvergenceTracker::new(|o: &ColorOutput| o.is_decided());
            let mut verifier = TDynamicVerifier::new(ColoringProblem, window).check_from(warmup);
            Scenario::new(n)
                .algorithm(dynamic_coloring(window))
                .adversary(FlipChurnAdversary::new(&footprint, 0.01, 101))
                .wakeup(dynnet::runtime::ScriptedWakeup {
                    rounds: wake_rounds,
                })
                .seed(10)
                .rounds(rounds)
                .run(&mut [&mut tracker, &mut verifier]);
            // Rounds from wake-up until the node's output is first
            // decided.
            let latency: Vec<f64> = tracker.latencies().iter().map(|&l| l as f64).collect();
            let s = Summary::of(&latency);
            let summary = verifier.into_summary();
            vec![
                name.to_string(),
                fmt2(s.mean),
                fmt2(s.p95),
                format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
            ]
        },
        CellRows::new(
            format!("E10 — Asynchronous wake-up, combined coloring, n = {n}, T = {window}"),
            &[
                "wake-up schedule",
                "rounds to first decision after wake (mean)",
                "rounds to first decision after wake (p95)",
                "T-dynamic valid rounds after warm-up",
            ],
            |_cell: &Cell<(&str, E10Schedule)>, row: Vec<String>| vec![row],
        ),
    )
}

/// E12: sweep the window size below and above the recommended `Θ(log n)`
/// value; too-small windows must lose the per-round guarantee. One sweep
/// cell per window size.
pub fn e12_window_size_sweep(ctx: &ExpContext) -> Vec<Table> {
    let n = 256;
    let recommended = recommended_window(n);
    let rounds = if ctx.smoke {
        2 * recommended
    } else {
        4 * recommended
    };
    let windows: Vec<usize> = if ctx.smoke {
        vec![3, recommended]
    } else {
        vec![3, 6, 12, recommended / 2, recommended]
    };
    let spec = SweepSpec::grid1("e12", &windows, |&w| (format!("T={w}"), w));
    ctx.aggregate(
            &spec,
            |cell| {
                let window = cell.params;
                let footprint = generators::shared_footprint(
                    &generators::GraphFamily::ErdosRenyi { avg_degree: 8.0 },
                    n,
                    12,
                    "e12",
                    || generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(12, "e12")),
                );
                let mut verifier =
                    TDynamicVerifier::new(ColoringProblem, window.max(2)).check_from(window.max(2));
                Scenario::new(n)
                    .algorithm(dynamic_coloring(window.max(2)))
                    .adversary(FlipChurnAdversary::new(
                        &footprint,
                        0.01,
                        120 + window as u64,
                    ))
                    .seed(12)
                    .rounds(rounds)
                    .run(&mut [&mut verifier]);
                verifier.into_summary()
            },
            CellRows::new(
                format!(
                    "E12 — Window-size sweep, combined coloring, n = {n} (recommended T = {recommended})"
                ),
                &[
                    "window T",
                    "T-dynamic valid fraction",
                    "undecided node-rounds",
                    "verdict",
                ],
                |cell: &Cell<usize>, summary: VerificationSummary| {
                    vec![vec![
                        cell.params.to_string(),
                        fmt_pct(summary.valid_fraction()),
                        summary.total_undecided.to_string(),
                        if summary.valid_fraction() > 0.999 {
                            "holds".into()
                        } else {
                            "fails (T too small)".into()
                        },
                    ]]
                },
            ),
        )
}
