//! Guarantee experiments for the combined algorithms (Theorem 1.1 /
//! Corollaries 1.2 and 1.3): per-round T-dynamic validity under churn,
//! conflict-resolution latency, locally-static stability, asynchronous
//! wake-up, and the effect of choosing the window too small. All runs stream
//! through `Scenario` observers; nothing materializes full executions.

use dynnet::core::coloring::max_color_used;
use dynnet::metrics::{fmt2, fmt_pct, Summary, Table};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::collections::HashMap;

/// Streaming observer measuring the longest per-edge conflict duration
/// (after `from`): for every edge, the longest streak of consecutive rounds
/// in which the edge is present in the current graph *and* both endpoints
/// output the same color. This is the quantity Corollary 1.2 bounds by `T`:
/// a newly inserted edge's conflict is resolved within one window.
struct EdgeConflictStreak {
    from: u64,
    streaks: HashMap<Edge, usize>,
    longest: usize,
}

impl EdgeConflictStreak {
    fn new(from: usize) -> Self {
        EdgeConflictStreak {
            from: from as u64,
            streaks: HashMap::new(),
            longest: 0,
        }
    }
}

impl RoundObserver<ColorOutput> for EdgeConflictStreak {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        if view.round < self.from {
            return;
        }
        let g = view.current_graph();
        let out: Vec<ColorOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        let mut next: HashMap<Edge, usize> = HashMap::new();
        for e in g.edges() {
            if let (Some(a), Some(b)) = (out[e.u.index()].color(), out[e.v.index()].color()) {
                if a == b {
                    let len = self.streaks.get(&e).copied().unwrap_or(0) + 1;
                    self.longest = self.longest.max(len);
                    next.insert(e, len);
                }
            }
        }
        self.streaks = next;
    }
}

/// E4: the combined coloring under a churn-rate sweep.
pub fn e4_combined_coloring_under_churn() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let mut table = Table::new(
        format!("E4 — Combined coloring (Corollary 1.2), n = {n}, T = {window}, {rounds} rounds"),
        &[
            "churn p",
            "edge changes/round",
            "T-dynamic valid rounds",
            "max per-edge conflict duration (< T?)",
            "max color used",
            "max degree + 1",
        ],
    );
    for churn in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(4, "e4"));
        let mut verifier = TDynamicVerifier::new(ColoringProblem, window);
        let mut streak = EdgeConflictStreak::new(window);
        let mut recorder = TraceRecorder::graphs_only();
        let runner = Scenario::new(n)
            .algorithm(dynamic_coloring(window))
            .adversary(FlipChurnAdversary::new(
                &footprint,
                churn,
                400 + (churn * 1e4) as u64,
            ))
            .seed(4)
            .rounds(rounds)
            .run(&mut [&mut verifier, &mut streak, &mut recorder]);
        let summary = verifier.into_summary();
        let final_out: Vec<ColorOutput> = runner
            .outputs()
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        table.push_row(vec![
            format!("{churn}"),
            fmt2(recorder.trace().total_edge_changes() as f64 / rounds as f64),
            format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
            format!(
                "{} ({})",
                streak.longest,
                if streak.longest < window { "yes" } else { "NO" }
            ),
            max_color_used(&final_out).to_string(),
            (footprint.max_degree() + 1).to_string(),
        ]);
    }
    vec![table]
}

/// E5: locally-static stability of the combined coloring.
pub fn e5_locally_static_coloring() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 5 * window;
    let base = generators::grid(16, 16);
    let seeds: Vec<NodeId> = vec![
        NodeId::new(8 * 16 + 8),
        NodeId::new(4 * 16 + 4),
        NodeId::new(12 * 16 + 11),
    ];
    let mut table = Table::new(
        format!("E5 — Locally-static stability (Corollary 1.2), 16×16 grid, T = {window}, churn 0.3 outside the protected region"),
        &[
            "protected node",
            "last output change (round)",
            "bound 2T",
            "within bound",
            "mean churn of unprotected nodes (changes/node)",
        ],
    );
    let mut churn = ChurnStats::new();
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(LocallyStaticAdversary::new(base, seeds.clone(), 2, 0.3, 5))
        .seed(5)
        .rounds(rounds)
        .run(&mut [&mut churn]);
    // Mean number of output changes of unprotected nodes (they keep churning).
    let unprotected_changes: Vec<f64> = (0..n)
        .map(NodeId::new)
        .filter(|v| !seeds.contains(v))
        .map(|v| churn.per_node()[v.index()] as f64)
        .collect();
    let unprotected_churn = Summary::of(&unprotected_changes).mean;
    for &v in &seeds {
        let last_change = churn.last_change_round(v).unwrap_or(0);
        table.push_row(vec![
            format!("{v}"),
            last_change.to_string(),
            (2 * window).to_string(),
            if last_change <= 2 * window {
                "yes".into()
            } else {
                "NO".into()
            },
            fmt2(unprotected_churn),
        ]);
    }
    vec![table]
}

/// E8: the combined MIS under churn and mobility.
pub fn e8_combined_mis_under_churn() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let mut table = Table::new(
        format!("E8 — Combined MIS (Corollary 1.3), n = {n}, T = {window}, {rounds} rounds"),
        &[
            "workload",
            "edge changes/round",
            "T-dynamic valid rounds",
            "MIS size (final)",
            "output changes/round (steady state)",
        ],
    );
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(8, "e8"));
    let workloads: Vec<(String, Box<dyn OutputAdversary<MisOutput>>)> = vec![
        (
            "static".into(),
            Box::new(StaticAdversary::new(footprint.clone())),
        ),
        (
            "flip churn p=0.01".into(),
            Box::new(FlipChurnAdversary::new(&footprint, 0.01, 81)),
        ),
        (
            "flip churn p=0.05".into(),
            Box::new(FlipChurnAdversary::new(&footprint, 0.05, 82)),
        ),
        (
            "mobility (random waypoint)".into(),
            Box::new(MobilityAdversary::new(
                MobilityConfig {
                    n,
                    radius: 0.08,
                    min_speed: 0.002,
                    max_speed: 0.01,
                },
                83,
            )),
        ),
        (
            "node churn leave=0.02 join=0.1".into(),
            Box::new(NodeChurnAdversary::new(footprint.clone(), 0.02, 0.1, 84)),
        ),
    ];
    for (name, adv) in workloads {
        let mut verifier = TDynamicVerifier::new(MisProblem, window);
        let mut churn = ChurnStats::new();
        let mut recorder = TraceRecorder::graphs_only();
        let runner = Scenario::new(n)
            .algorithm(dynamic_mis(n, window))
            .adversary(adv)
            .seed(8)
            .rounds(rounds)
            .run(&mut [&mut verifier, &mut churn, &mut recorder]);
        let summary = verifier.into_summary();
        let final_out: Vec<MisOutput> = runner
            .outputs()
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        let steady_churn = churn.total_from(2 * window) as f64 / (rounds - 2 * window) as f64;
        table.push_row(vec![
            name,
            fmt2(recorder.trace().total_edge_changes() as f64 / rounds as f64),
            format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
            dynnet::core::mis::mis_size(&final_out).to_string(),
            fmt2(steady_churn),
        ]);
    }
    vec![table]
}

/// E10: asynchronous wake-up — convergence measured from each node's own
/// wake-up round, plus validity once everyone has been awake for a window.
pub fn e10_asynchronous_wakeup() -> Vec<Table> {
    let n = 256;
    let window = recommended_window(n);
    let rounds = 6 * window;
    let mut table = Table::new(
        format!("E10 — Asynchronous wake-up, combined coloring, n = {n}, T = {window}"),
        &[
            "wake-up schedule",
            "rounds to first decision after wake (mean)",
            "rounds to first decision after wake (p95)",
            "T-dynamic valid rounds after warm-up",
        ],
    );
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(10, "e10"));
    let schedules: Vec<(String, Vec<u64>)> = vec![
        ("all at round 0".into(), vec![0; n]),
        ("uniform over [0, 2T]".into(), {
            let w = RandomWakeup::new(n, 2 * window as u64, 55);
            (0..n).map(|i| w.wake_round(NodeId::new(i))).collect()
        }),
        (
            "staggered (stride 1)".into(),
            (0..n).map(|i| (i as u64).min(3 * window as u64)).collect(),
        ),
    ];
    for (name, wake_rounds) in schedules {
        let warmup = wake_rounds.iter().map(|&w| w as usize).max().unwrap_or(0) + window;
        let mut tracker = ConvergenceTracker::new(|o: &ColorOutput| o.is_decided());
        let mut verifier = TDynamicVerifier::new(ColoringProblem, window).check_from(warmup);
        Scenario::new(n)
            .algorithm(dynamic_coloring(window))
            .adversary(FlipChurnAdversary::new(&footprint, 0.01, 101))
            .wakeup(dynnet::runtime::ScriptedWakeup {
                rounds: wake_rounds,
            })
            .seed(10)
            .rounds(rounds)
            .run(&mut [&mut tracker, &mut verifier]);
        // Rounds from wake-up until the node's output is first decided.
        let latency: Vec<f64> = tracker.latencies().iter().map(|&l| l as f64).collect();
        let s = Summary::of(&latency);
        let summary = verifier.into_summary();
        table.push_row(vec![
            name,
            fmt2(s.mean),
            fmt2(s.p95),
            format!("{}/{}", summary.rounds_valid, summary.rounds_checked),
        ]);
    }
    vec![table]
}

/// E12: sweep the window size below and above the recommended `Θ(log n)`
/// value; too-small windows must lose the per-round guarantee.
pub fn e12_window_size_sweep() -> Vec<Table> {
    let n = 256;
    let recommended = recommended_window(n);
    let rounds = 4 * recommended;
    let mut table = Table::new(
        format!(
            "E12 — Window-size sweep, combined coloring, n = {n} (recommended T = {recommended})"
        ),
        &[
            "window T",
            "T-dynamic valid fraction",
            "undecided node-rounds",
            "verdict",
        ],
    );
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(12, "e12"));
    for window in [3usize, 6, 12, recommended / 2, recommended] {
        let mut verifier =
            TDynamicVerifier::new(ColoringProblem, window.max(2)).check_from(window.max(2));
        Scenario::new(n)
            .algorithm(dynamic_coloring(window.max(2)))
            .adversary(FlipChurnAdversary::new(
                &footprint,
                0.01,
                120 + window as u64,
            ))
            .seed(12)
            .rounds(rounds)
            .run(&mut [&mut verifier]);
        let summary = verifier.into_summary();
        table.push_row(vec![
            window.to_string(),
            fmt_pct(summary.valid_fraction()),
            summary.total_undecided.to_string(),
            if summary.valid_fraction() > 0.999 {
                "holds".into()
            } else {
                "fails (T too small)".into()
            },
        ]);
    }
    vec![table]
}
