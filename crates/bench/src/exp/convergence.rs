//! Convergence-time experiments: round complexity of the basic coloring,
//! DColor, DMis and SMis as a function of `n`, with `O(log n)` shape checks,
//! plus the per-round progress constants of Lemmas 4.3 and 5.2. Every
//! experiment declares its grid as a `SweepSpec` and executes on the
//! harness-wide work-stealing `SweepEngine`; aggregation folds the per-cell
//! results in grid order, so the tables are identical for any thread count.

use super::ExpContext;
use dynnet::core::mis::independence_violations;
use dynnet::graph::CodecError;
use dynnet::metrics::{fmt2, log_fit, Summary, Table};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::runtime::AlgorithmFactory;
use dynnet::sweep::{Cell, CellRows, CellValue, SweepSpec};

const N_SWEEP: &[usize] = &[64, 128, 256, 512, 1024, 2048, 4096];
const N_SWEEP_SMOKE: &[usize] = &[64, 128, 256];

/// Rounds until every node's output satisfies `done`, or the scenario's
/// round budget.
fn rounds_until_done<A, F, W, Adv>(
    scenario: Scenario<F, W, Adv>,
    done: impl Fn(&A::Output) -> bool,
) -> usize
where
    A: NodeAlgorithm,
    F: AlgorithmFactory<A>,
    W: WakeupSchedule,
    Adv: OutputAdversary<A::Output>,
{
    scenario
        .run_until(&mut [], |view| {
            view.outputs
                .iter()
                .all(|o| o.as_ref().map(&done).unwrap_or(false))
        })
        .rounds_executed()
}

/// The standard scaling row: group label column(s) + mean/max rounds +
/// normalization by `log2(n)`.
fn scaling_row(label: String, n: usize, s: &Summary) -> Vec<String> {
    vec![
        label,
        n.to_string(),
        fmt2(s.mean),
        fmt2(s.max),
        fmt2(s.mean / (n as f64).log2()),
    ]
}

/// The `O(log n)` shape-check table: one least-squares `log2` fit per outer
/// group over that group's `(n, mean)` points.
fn fit_table<K: PartialEq>(
    title: &str,
    group_col: &str,
    groups: &[((K, usize), Summary)],
    label_of: impl Fn(&K) -> String,
) -> Table {
    let mut fits = Table::new(title, &[group_col, "fit", "R²"]);
    let mut i = 0;
    while i < groups.len() {
        let outer = &groups[i].0 .0;
        let mut points = Vec::new();
        while i < groups.len() && groups[i].0 .0 == *outer {
            points.push((groups[i].0 .1, groups[i].1.mean));
            i += 1;
        }
        if let Some(fit) = log_fit(&points) {
            fits.push_row(vec![
                label_of(outer),
                format!("{:.2} + {:.2}·log2(n)", fit.intercept, fit.slope),
                format!("{:.3}", fit.r_squared),
            ]);
        }
    }
    fits
}

/// E1: basic static coloring (Algorithm 6) — rounds until all nodes colored,
/// over a (family × n × seed) grid on two graph families, with a `log n`
/// fit.
pub fn e1_basic_coloring_scaling(ctx: &ExpContext) -> Vec<Table> {
    let families: &[&str] = &["ER d̄=10", "geometric r=4/√n"];
    let family_idx: Vec<usize> = (0..families.len()).collect();
    let n_axis = if ctx.smoke { N_SWEEP_SMOKE } else { N_SWEEP };
    let seeds: Vec<u64> = (0..if ctx.smoke { 2 } else { 10 }).collect();
    let spec = SweepSpec::grid3("e1", &family_idx, n_axis, &seeds, |&f, &n, &seed| {
        (format!("{} n={n} seed={seed}", families[f]), (f, n, seed))
    });
    // Streaming grouped sweep: each (family, n) group folds to its Summary
    // as its last seed lands, so only in-flight groups are buffered (and
    // every finished cell checkpoints under `--checkpoint-dir`).
    let grouped = ctx.run_grouped(
        &spec,
        |cell| {
            let (f, n, seed) = cell.params;
            let name = families[f];
            let fam = if f == 1 {
                generators::GraphFamily::Geometric {
                    radius: 4.0 / (n as f64).sqrt(),
                }
            } else {
                generators::GraphFamily::ErdosRenyi { avg_degree: 10.0 }
            };
            let g = fam.generate(n, &mut experiment_rng(seed, &format!("e1-{name}-{n}")));
            rounds_until_done(
                Scenario::new(n)
                    .algorithm(BasicColoring::new)
                    .adversary(StaticAdversary::new(g))
                    .seed(seed)
                    .rounds(400),
                |o: &ColorOutput| o.is_decided(),
            ) as f64
        },
        |c: &Cell<(usize, usize, u64)>| (c.params.0, c.params.1),
        |k: &(usize, usize), _cells: &[Cell<(usize, usize, u64)>], results: Vec<f64>| {
            (*k, Summary::of(&results))
        },
    );
    let mut table = Table::new(
        "E1 — Basic coloring (Algorithm 6): rounds until all nodes colored (static graphs)",
        &["family", "n", "mean rounds", "max rounds", "mean/log2(n)"],
    );
    for (k, s) in &grouped.groups {
        table.push_row(scaling_row(families[k.0].to_string(), k.1, s));
    }
    vec![
        table,
        fit_table(
            "E1 — O(log n) shape check (least-squares fit of mean rounds)",
            "family",
            &grouped.groups,
            |&f| families[f].to_string(),
        ),
    ]
}

/// E2: DColor — rounds until all nodes colored under edge churn, over a
/// (churn × n × seed) grid.
pub fn e2_dcolor_scaling_under_churn(ctx: &ExpContext) -> Vec<Table> {
    let churns: &[f64] = &[0.0, 0.01, 0.05];
    let n_axis: &[usize] = if ctx.smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let seeds: Vec<u64> = (0..if ctx.smoke { 2 } else { 5 }).collect();
    let spec = SweepSpec::grid3("e2", churns, n_axis, &seeds, |&churn, &n, &seed| {
        (format!("p={churn} n={n} seed={seed}"), (churn, n, seed))
    });
    let grouped = ctx.run_grouped(
        &spec,
        |cell| {
            let (churn, n, seed) = cell.params;
            let footprint = generators::shared_footprint(
                &generators::GraphFamily::ErdosRenyi { avg_degree: 10.0 },
                n,
                seed,
                "e2",
                || {
                    generators::erdos_renyi_avg_degree(
                        n,
                        10.0,
                        &mut experiment_rng(seed, &format!("e2-{n}")),
                    )
                },
            );
            rounds_until_done(
                Scenario::new(n)
                    .algorithm(|v: NodeId| DColor::new(v, ColorOutput::Undecided))
                    .adversary(FlipChurnAdversary::new(&footprint, churn, 100 + seed))
                    .seed(seed)
                    .rounds(400),
                |o: &ColorOutput| o.is_decided(),
            ) as f64
        },
        |c: &Cell<(f64, usize, u64)>| (c.params.0, c.params.1),
        |k: &(f64, usize), _cells: &[Cell<(f64, usize, u64)>], results: Vec<f64>| {
            (*k, Summary::of(&results))
        },
    );
    let mut table = Table::new(
        "E2 — DColor (Algorithm 2): rounds until all nodes colored under per-edge flip churn",
        &["churn p", "n", "mean rounds", "max rounds", "mean/log2(n)"],
    );
    for (k, s) in &grouped.groups {
        table.push_row(scaling_row(format!("{}", k.0), k.1, s));
    }
    vec![
        table,
        fit_table(
            "E2 — O(log n) shape check",
            "churn p",
            &grouped.groups,
            |&p| format!("{p}"),
        ),
    ]
}

/// Per-cell progress counters of the E3 measurement.
#[derive(Clone, Copy, Default)]
struct ProgressCounts {
    observed: usize,
    colored_events: usize,
    shrink_events: usize,
    colored_given_no_shrink: usize,
    no_shrink: usize,
}

impl CellValue for ProgressCounts {
    fn encode_value(&self, out: &mut Vec<u8>) {
        for v in [
            self.observed,
            self.colored_events,
            self.shrink_events,
            self.colored_given_no_shrink,
            self.no_shrink,
        ] {
            v.encode_value(out);
        }
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(ProgressCounts {
            observed: usize::decode_value(input)?,
            colored_events: usize::decode_value(input)?,
            shrink_events: usize::decode_value(input)?,
            colored_given_no_shrink: usize::decode_value(input)?,
            no_shrink: usize::decode_value(input)?,
        })
    }
}

/// E3: DColor per-round progress events (Lemma 4.3): among nodes that are
/// uncolored at the start of a round, measure how often the node gets
/// colored, how often its palette shrinks by ≥ 1/4, and the conditional
/// coloring probability when the palette does *not* shrink (claimed ≥ 1/64).
/// Uses manual `Runner` stepping to inspect per-node algorithm state between
/// rounds; each graph configuration is one sweep cell.
pub fn e3_dcolor_progress(ctx: &ExpContext) -> Vec<Table> {
    let (n, rounds) = if ctx.smoke { (128, 60) } else { (512, 200) };
    let graphs: &[(&str, f64)] = &[("ER d̄=10", 10.0), ("ER d̄=30", 30.0)];
    let spec = SweepSpec::grid1("e3", graphs, |&(name, avg_deg)| {
        (format!("{name} n={n}"), (name, avg_deg))
    });
    ctx.aggregate(
        &spec,
        |cell| {
            let (_, avg_deg) = cell.params;
            let g = generators::shared_footprint(
                &generators::GraphFamily::ErdosRenyi {
                    avg_degree: avg_deg,
                },
                n,
                1,
                "e3",
                || generators::erdos_renyi_avg_degree(n, avg_deg, &mut experiment_rng(1, "e3")),
            );
            let mut runner = Scenario::new(n)
                .algorithm(|v: NodeId| DColor::new(v, ColorOutput::Undecided))
                .adversary(StaticAdversary::new((*g).clone()))
                .seed(3)
                .rounds(rounds)
                .runner();
            let mut c = ProgressCounts::default();
            let mut prev_state: Vec<Option<(bool, usize)>> = vec![None; n]; // (colored, palette size)
            while runner.step(&mut []) {
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    let node = runner.sim().node(NodeId::new(i)).unwrap();
                    let colored_now = node.output().is_decided();
                    let palette_now = node.palette().len();
                    if let Some((was_colored, old_palette)) = prev_state[i] {
                        if !was_colored && old_palette > 0 {
                            c.observed += 1;
                            let shrank = palette_now as f64 <= 0.75 * old_palette as f64;
                            if colored_now {
                                c.colored_events += 1;
                            }
                            if shrank {
                                c.shrink_events += 1;
                            } else {
                                c.no_shrink += 1;
                                if colored_now {
                                    c.colored_given_no_shrink += 1;
                                }
                            }
                        }
                    }
                    prev_state[i] = Some((colored_now, palette_now));
                }
            }
            c
        },
        CellRows::new(
            "E3 — DColor per-round progress events (Lemma 4.3)",
            &[
                "graph",
                "node-rounds observed",
                "colored",
                "palette shrank ≥1/4",
                "P(colored | no big shrink)",
                "claimed lower bound",
            ],
            |cell: &Cell<(&str, f64)>, c: ProgressCounts| {
                let p_cond = if c.no_shrink > 0 {
                    c.colored_given_no_shrink as f64 / c.no_shrink as f64
                } else {
                    1.0
                };
                vec![vec![
                    cell.params.0.to_string(),
                    c.observed.to_string(),
                    format!(
                        "{:.1}%",
                        100.0 * c.colored_events as f64 / c.observed.max(1) as f64
                    ),
                    format!(
                        "{:.1}%",
                        100.0 * c.shrink_events as f64 / c.observed.max(1) as f64
                    ),
                    format!("{:.3}", p_cond),
                    "0.016 (= 1/64)".to_string(),
                ]]
            },
        ),
    )
}

/// Streaming probe for the E6 decay measurement: maintains the running
/// intersection graph, counts its edges between undecided nodes, and asserts
/// the deterministic packing claim as the execution streams by.
struct DecayProbe {
    intersection: Option<Graph>,
    series: Series,
    done: bool,
}

impl RoundObserver<MisOutput> for DecayProbe {
    fn on_round(&mut self, view: &RoundView<'_, MisOutput>) {
        let g = view.current_graph();
        let intersection = match &mut self.intersection {
            None => self.intersection.insert(g.clone()),
            Some(acc) => {
                *acc = acc.intersection(g);
                acc
            }
        };
        // Count intersection-graph edges with both endpoints undecided.
        let undecided: Vec<bool> = view
            .outputs
            .iter()
            .map(|o| o.map(|s| s == MisOutput::Undecided).unwrap_or(true))
            .collect();
        let count = intersection
            .edges()
            .filter(|e| undecided[e.u.index()] && undecided[e.v.index()])
            .count();
        self.series.push(count as f64);
        if count == 0 {
            self.done = true;
            return;
        }
        // Verify the deterministic packing claim as we go.
        let out: Vec<MisOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        assert_eq!(independence_violations(intersection, &out), 0);
    }
}

/// E6: DMis — rounds until every node is decided, over a (churn × n × seed)
/// grid, plus the per-2-round decay factor of the number of edges between
/// undecided nodes in the running intersection graph (Lemma 5.2 claims
/// expectation ≤ 2/3), measured by a per-cell streaming probe.
pub fn e6_dmis_scaling_and_decay(ctx: &ExpContext) -> Vec<Table> {
    let churns: &[f64] = &[0.0, 0.02];
    let n_axis: &[usize] = if ctx.smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let seeds: Vec<u64> = (0..if ctx.smoke { 2 } else { 5 }).collect();
    let spec = SweepSpec::grid3("e6", churns, n_axis, &seeds, |&churn, &n, &seed| {
        (format!("p={churn} n={n} seed={seed}"), (churn, n, seed))
    });
    let grouped = ctx.run_grouped(
        &spec,
        |cell| {
            let (churn, n, seed) = cell.params;
            let footprint = generators::shared_footprint(
                &generators::GraphFamily::ErdosRenyi { avg_degree: 10.0 },
                n,
                seed,
                "e6",
                || {
                    generators::erdos_renyi_avg_degree(
                        n,
                        10.0,
                        &mut experiment_rng(seed, &format!("e6-{n}")),
                    )
                },
            );
            rounds_until_done(
                Scenario::new(n)
                    .algorithm(|v: NodeId| DMis::new(v, MisOutput::Undecided))
                    .adversary(FlipChurnAdversary::new(&footprint, churn, 200 + seed))
                    .seed(seed)
                    .rounds(400),
                |o: &MisOutput| o.is_decided(),
            ) as f64
        },
        |c: &Cell<(f64, usize, u64)>| (c.params.0, c.params.1),
        |k: &(f64, usize), _cells: &[Cell<(f64, usize, u64)>], results: Vec<f64>| {
            (*k, Summary::of(&results))
        },
    );
    let mut scaling = Table::new(
        "E6 — DMis (Algorithm 4): rounds until all nodes decided",
        &["churn p", "n", "mean rounds", "max rounds", "mean/log2(n)"],
    );
    for (k, s) in &grouped.groups {
        scaling.push_row(scaling_row(format!("{}", k.0), k.1, s));
    }
    let mut tables = vec![scaling];
    tables.push(fit_table(
        "E6 — O(log n) shape check",
        "churn p",
        &grouped.groups,
        |&p| format!("{p}"),
    ));

    // Decay of |E(H_r)| (edges between undecided nodes in the running
    // intersection graph), measured every 2 rounds via a streaming probe —
    // one sweep cell per churn rate.
    let decay_n = if ctx.smoke { 256 } else { 1024 };
    let decay_rounds = if ctx.smoke { 60 } else { 120 };
    let decay_spec = SweepSpec::grid1("e6-decay", &[0.0f64, 0.05], |&churn| {
        (format!("decay p={churn}"), churn)
    });
    let mut decay_tables = ctx.aggregate(
        &decay_spec,
        |cell| {
            let churn = cell.params;
            let footprint = generators::shared_footprint(
                &generators::GraphFamily::ErdosRenyi { avg_degree: 12.0 },
                decay_n,
                7,
                "e6-decay",
                || {
                    generators::erdos_renyi_avg_degree(
                        decay_n,
                        12.0,
                        &mut experiment_rng(7, "e6-decay"),
                    )
                },
            );
            let mut probe = DecayProbe {
                intersection: None,
                series: Series::new("undecided-edges"),
                done: false,
            };
            let mut runner = Scenario::new(decay_n)
                .algorithm(|v: NodeId| DMis::new(v, MisOutput::Undecided))
                .adversary(FlipChurnAdversary::new(&footprint, churn, 303))
                .seed(5)
                .rounds(decay_rounds)
                .runner();
            while runner.step(&mut [&mut probe]) {
                if probe.done {
                    break;
                }
            }
            probe.series.decay_ratios(2)
        },
        CellRows::new(
            "E6 — Undecided-edge decay per 2 rounds (Lemma 5.2: expected factor ≤ 2/3)",
            &[
                "graph",
                "churn p",
                "mean decay factor",
                "p95 decay factor",
                "samples",
            ],
            |cell: &Cell<f64>, ratios: Vec<f64>| {
                let s = Summary::of(&ratios);
                vec![vec![
                    format!("ER d̄=12, n={decay_n}"),
                    format!("{}", cell.params),
                    fmt2(s.mean),
                    fmt2(s.p95),
                    s.count.to_string(),
                ]]
            },
        ),
    );
    tables.append(&mut decay_tables);
    tables
}

/// E7: SMis on static graphs — rounds until every node is decided over an
/// (n × seed) grid (the golden-round analysis of Lemma 5.6 predicts
/// O(log n)).
pub fn e7_smis_scaling(ctx: &ExpContext) -> Vec<Table> {
    let n_axis: &[usize] = if ctx.smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let seeds: Vec<u64> = (0..if ctx.smoke { 2 } else { 5 }).collect();
    let spec = SweepSpec::grid2("e7", n_axis, &seeds, |&n, &seed| {
        (format!("n={n} seed={seed}"), (n, seed))
    });
    let grouped = ctx.run_grouped(
        &spec,
        |cell| {
            let (n, seed) = cell.params;
            let g = generators::shared_footprint(
                &generators::GraphFamily::ErdosRenyi { avg_degree: 10.0 },
                n,
                seed,
                "e7",
                || {
                    generators::erdos_renyi_avg_degree(
                        n,
                        10.0,
                        &mut experiment_rng(seed, &format!("e7-{n}")),
                    )
                },
            );
            rounds_until_done(
                Scenario::new(n)
                    .algorithm(move |v: NodeId| SMis::new(v, n))
                    .adversary(StaticAdversary::new((*g).clone()))
                    .seed(seed)
                    .rounds(600),
                |o: &MisOutput| o.is_decided(),
            ) as f64
        },
        |c: &Cell<(usize, u64)>| c.params.0,
        |&n: &usize, _cells: &[Cell<(usize, u64)>], results: Vec<f64>| (n, Summary::of(&results)),
    );
    let mut scaling = Table::new(
        "E7 — SMis (Algorithm 5): rounds until all nodes decided (static graphs)",
        &["n", "mean rounds", "max rounds", "mean/log2(n)"],
    );
    for (n, s) in &grouped.groups {
        scaling.push_row(vec![
            n.to_string(),
            fmt2(s.mean),
            fmt2(s.max),
            fmt2(s.mean / (*n as f64).log2()),
        ]);
    }
    let mut tables = vec![scaling];
    let mut fits = Table::new("E7 — O(log n) shape check", &["fit", "R²"]);
    let points: Vec<(usize, f64)> = grouped.groups.iter().map(|(n, s)| (*n, s.mean)).collect();
    if let Some(fit) = log_fit(&points) {
        fits.push_row(vec![
            format!("{:.2} + {:.2}·log2(n)", fit.intercept, fit.slope),
            format!("{:.3}", fit.r_squared),
        ]);
    }
    tables.push(fits);
    tables
}
