//! Convergence-time experiments: round complexity of the basic coloring,
//! DColor, DMis and SMis as a function of `n`, with `O(log n)` shape checks,
//! plus the per-round progress constants of Lemmas 4.3 and 5.2. All runs are
//! driven through the `Scenario` API.

use dynnet::core::mis::independence_violations;
use dynnet::metrics::{fmt2, log_fit, Summary, Table};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::runtime::AlgorithmFactory;

const N_SWEEP: &[usize] = &[64, 128, 256, 512, 1024, 2048, 4096];

/// Rounds until every node's output satisfies `done`, or the scenario's
/// round budget.
fn rounds_until_done<A, F, W, Adv>(
    scenario: Scenario<F, W, Adv>,
    done: impl Fn(&A::Output) -> bool,
) -> usize
where
    A: NodeAlgorithm,
    F: AlgorithmFactory<A>,
    W: WakeupSchedule,
    Adv: OutputAdversary<A::Output>,
{
    scenario
        .run_until(&mut [], |view| {
            view.outputs
                .iter()
                .all(|o| o.as_ref().map(&done).unwrap_or(false))
        })
        .rounds_executed()
}

/// E1: basic static coloring (Algorithm 6) — rounds until all nodes colored,
/// over an `n` sweep on two graph families, with a `log n` fit.
pub fn e1_basic_coloring_scaling() -> Vec<Table> {
    let seeds = 10u64;
    let mut table = Table::new(
        "E1 — Basic coloring (Algorithm 6): rounds until all nodes colored (static graphs)",
        &["family", "n", "mean rounds", "max rounds", "mean/log2(n)"],
    );
    let mut fits = Table::new(
        "E1 — O(log n) shape check (least-squares fit of mean rounds)",
        &["family", "fit", "R²"],
    );
    for (name, family) in [
        (
            "ER d̄=10",
            generators::GraphFamily::ErdosRenyi { avg_degree: 10.0 },
        ),
        (
            "geometric r=4/√n",
            generators::GraphFamily::Geometric { radius: 0.0 },
        ),
    ] {
        let mut points = Vec::new();
        for &n in N_SWEEP {
            let mut rounds = Vec::new();
            for seed in 0..seeds {
                let fam = match family {
                    generators::GraphFamily::Geometric { .. } => {
                        generators::GraphFamily::Geometric {
                            radius: 4.0 / (n as f64).sqrt(),
                        }
                    }
                    ref f => f.clone(),
                };
                let g = fam.generate(n, &mut experiment_rng(seed, &format!("e1-{name}-{n}")));
                let r = rounds_until_done(
                    Scenario::new(n)
                        .algorithm(BasicColoring::new)
                        .adversary(StaticAdversary::new(g))
                        .seed(seed)
                        .rounds(400),
                    |o: &ColorOutput| o.is_decided(),
                );
                rounds.push(r as f64);
            }
            let s = Summary::of(&rounds);
            points.push((n, s.mean));
            table.push_row(vec![
                name.to_string(),
                n.to_string(),
                fmt2(s.mean),
                fmt2(s.max),
                fmt2(s.mean / (n as f64).log2()),
            ]);
        }
        if let Some(fit) = log_fit(&points) {
            fits.push_row(vec![
                name.to_string(),
                format!("{:.2} + {:.2}·log2(n)", fit.intercept, fit.slope),
                format!("{:.3}", fit.r_squared),
            ]);
        }
    }
    vec![table, fits]
}

/// E2: DColor — rounds until all nodes colored under edge churn.
pub fn e2_dcolor_scaling_under_churn() -> Vec<Table> {
    let seeds = 5u64;
    let mut table = Table::new(
        "E2 — DColor (Algorithm 2): rounds until all nodes colored under per-edge flip churn",
        &["churn p", "n", "mean rounds", "max rounds", "mean/log2(n)"],
    );
    let mut fits = Table::new("E2 — O(log n) shape check", &["churn p", "fit", "R²"]);
    for churn in [0.0, 0.01, 0.05] {
        let mut points = Vec::new();
        for &n in &[64usize, 256, 1024, 4096] {
            let mut rounds = Vec::new();
            for seed in 0..seeds {
                let footprint = generators::erdos_renyi_avg_degree(
                    n,
                    10.0,
                    &mut experiment_rng(seed, &format!("e2-{n}")),
                );
                let r = rounds_until_done(
                    Scenario::new(n)
                        .algorithm(|v: NodeId| DColor::new(v, ColorOutput::Undecided))
                        .adversary(FlipChurnAdversary::new(&footprint, churn, 100 + seed))
                        .seed(seed)
                        .rounds(400),
                    |o: &ColorOutput| o.is_decided(),
                );
                rounds.push(r as f64);
            }
            let s = Summary::of(&rounds);
            points.push((n, s.mean));
            table.push_row(vec![
                format!("{churn}"),
                n.to_string(),
                fmt2(s.mean),
                fmt2(s.max),
                fmt2(s.mean / (n as f64).log2()),
            ]);
        }
        if let Some(fit) = log_fit(&points) {
            fits.push_row(vec![
                format!("{churn}"),
                format!("{:.2} + {:.2}·log2(n)", fit.intercept, fit.slope),
                format!("{:.3}", fit.r_squared),
            ]);
        }
    }
    vec![table, fits]
}

/// E3: DColor per-round progress events (Lemma 4.3): among nodes that are
/// uncolored at the start of a round, measure how often the node gets
/// colored, how often its palette shrinks by ≥ 1/4, and the conditional
/// coloring probability when the palette does *not* shrink (claimed ≥ 1/64).
/// Uses manual `Runner` stepping to inspect per-node algorithm state between
/// rounds.
pub fn e3_dcolor_progress() -> Vec<Table> {
    let mut table = Table::new(
        "E3 — DColor per-round progress events (Lemma 4.3)",
        &[
            "graph",
            "node-rounds observed",
            "colored",
            "palette shrank ≥1/4",
            "P(colored | no big shrink)",
            "claimed lower bound",
        ],
    );
    for (name, avg_deg) in [("ER d̄=10", 10.0), ("ER d̄=30", 30.0)] {
        let n = 512;
        let g = generators::erdos_renyi_avg_degree(n, avg_deg, &mut experiment_rng(1, "e3"));
        let mut runner = Scenario::new(n)
            .algorithm(|v: NodeId| DColor::new(v, ColorOutput::Undecided))
            .adversary(StaticAdversary::new(g))
            .seed(3)
            .rounds(200)
            .runner();
        let mut observed = 0usize;
        let mut colored_events = 0usize;
        let mut shrink_events = 0usize;
        let mut colored_given_no_shrink = 0usize;
        let mut no_shrink = 0usize;
        let mut prev_state: Vec<Option<(bool, usize)>> = vec![None; n]; // (colored, palette size)
        while runner.step(&mut []) {
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let node = runner.sim().node(NodeId::new(i)).unwrap();
                let colored_now = node.output().is_decided();
                let palette_now = node.palette().len();
                if let Some((was_colored, old_palette)) = prev_state[i] {
                    if !was_colored && old_palette > 0 {
                        observed += 1;
                        let shrank = palette_now as f64 <= 0.75 * old_palette as f64;
                        if colored_now {
                            colored_events += 1;
                        }
                        if shrank {
                            shrink_events += 1;
                        } else {
                            no_shrink += 1;
                            if colored_now {
                                colored_given_no_shrink += 1;
                            }
                        }
                    }
                }
                prev_state[i] = Some((colored_now, palette_now));
            }
        }
        let p_cond = if no_shrink > 0 {
            colored_given_no_shrink as f64 / no_shrink as f64
        } else {
            1.0
        };
        table.push_row(vec![
            name.to_string(),
            observed.to_string(),
            format!(
                "{:.1}%",
                100.0 * colored_events as f64 / observed.max(1) as f64
            ),
            format!(
                "{:.1}%",
                100.0 * shrink_events as f64 / observed.max(1) as f64
            ),
            format!("{:.3}", p_cond),
            "0.016 (= 1/64)".to_string(),
        ]);
    }
    vec![table]
}

/// Streaming probe for the E6 decay measurement: maintains the running
/// intersection graph, counts its edges between undecided nodes, and asserts
/// the deterministic packing claim as the execution streams by.
struct DecayProbe {
    intersection: Option<Graph>,
    series: Series,
    done: bool,
}

impl RoundObserver<MisOutput> for DecayProbe {
    fn on_round(&mut self, view: &RoundView<'_, MisOutput>) {
        let g = view.current_graph();
        let intersection = match &mut self.intersection {
            None => self.intersection.insert(g.clone()),
            Some(acc) => {
                *acc = acc.intersection(g);
                acc
            }
        };
        // Count intersection-graph edges with both endpoints undecided.
        let undecided: Vec<bool> = view
            .outputs
            .iter()
            .map(|o| o.map(|s| s == MisOutput::Undecided).unwrap_or(true))
            .collect();
        let count = intersection
            .edges()
            .filter(|e| undecided[e.u.index()] && undecided[e.v.index()])
            .count();
        self.series.push(count as f64);
        if count == 0 {
            self.done = true;
            return;
        }
        // Verify the deterministic packing claim as we go.
        let out: Vec<MisOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        assert_eq!(independence_violations(intersection, &out), 0);
    }
}

/// E6: DMis — rounds until every node is decided, over an `n` sweep and
/// churn levels, plus the per-2-round decay factor of the number of edges
/// between undecided nodes in the running intersection graph (Lemma 5.2
/// claims expectation ≤ 2/3).
pub fn e6_dmis_scaling_and_decay() -> Vec<Table> {
    let seeds = 5u64;
    let mut table = Table::new(
        "E6 — DMis (Algorithm 4): rounds until all nodes decided",
        &["churn p", "n", "mean rounds", "max rounds", "mean/log2(n)"],
    );
    let mut fits = Table::new("E6 — O(log n) shape check", &["churn p", "fit", "R²"]);
    for churn in [0.0, 0.02] {
        let mut points = Vec::new();
        for &n in &[64usize, 256, 1024, 4096] {
            let mut rounds = Vec::new();
            for seed in 0..seeds {
                let footprint = generators::erdos_renyi_avg_degree(
                    n,
                    10.0,
                    &mut experiment_rng(seed, &format!("e6-{n}")),
                );
                let r = rounds_until_done(
                    Scenario::new(n)
                        .algorithm(|v: NodeId| DMis::new(v, MisOutput::Undecided))
                        .adversary(FlipChurnAdversary::new(&footprint, churn, 200 + seed))
                        .seed(seed)
                        .rounds(400),
                    |o: &MisOutput| o.is_decided(),
                );
                rounds.push(r as f64);
            }
            let s = Summary::of(&rounds);
            points.push((n, s.mean));
            table.push_row(vec![
                format!("{churn}"),
                n.to_string(),
                fmt2(s.mean),
                fmt2(s.max),
                fmt2(s.mean / (n as f64).log2()),
            ]);
        }
        if let Some(fit) = log_fit(&points) {
            fits.push_row(vec![
                format!("{churn}"),
                format!("{:.2} + {:.2}·log2(n)", fit.intercept, fit.slope),
                format!("{:.3}", fit.r_squared),
            ]);
        }
    }

    // Decay of |E(H_r)| (edges between undecided nodes in the running
    // intersection graph), measured every 2 rounds via a streaming probe.
    let mut decay = Table::new(
        "E6 — Undecided-edge decay per 2 rounds (Lemma 5.2: expected factor ≤ 2/3)",
        &[
            "graph",
            "churn p",
            "mean decay factor",
            "p95 decay factor",
            "samples",
        ],
    );
    for churn in [0.0, 0.05] {
        let n = 1024;
        let footprint =
            generators::erdos_renyi_avg_degree(n, 12.0, &mut experiment_rng(7, "e6-decay"));
        let mut probe = DecayProbe {
            intersection: None,
            series: Series::new("undecided-edges"),
            done: false,
        };
        let mut runner = Scenario::new(n)
            .algorithm(|v: NodeId| DMis::new(v, MisOutput::Undecided))
            .adversary(FlipChurnAdversary::new(&footprint, churn, 303))
            .seed(5)
            .rounds(120)
            .runner();
        while runner.step(&mut [&mut probe]) {
            if probe.done {
                break;
            }
        }
        let ratios = probe.series.decay_ratios(2);
        let s = Summary::of(&ratios);
        decay.push_row(vec![
            "ER d̄=12, n=1024".to_string(),
            format!("{churn}"),
            fmt2(s.mean),
            fmt2(s.p95),
            s.count.to_string(),
        ]);
    }
    vec![table, fits, decay]
}

/// E7: SMis on static graphs — rounds until every node is decided (the
/// golden-round analysis of Lemma 5.6 predicts O(log n)).
pub fn e7_smis_scaling() -> Vec<Table> {
    let seeds = 5u64;
    let mut table = Table::new(
        "E7 — SMis (Algorithm 5): rounds until all nodes decided (static graphs)",
        &["n", "mean rounds", "max rounds", "mean/log2(n)"],
    );
    let mut points = Vec::new();
    for &n in &[64usize, 256, 1024, 4096] {
        let mut rounds = Vec::new();
        for seed in 0..seeds {
            let g = generators::erdos_renyi_avg_degree(
                n,
                10.0,
                &mut experiment_rng(seed, &format!("e7-{n}")),
            );
            let r = rounds_until_done(
                Scenario::new(n)
                    .algorithm(move |v: NodeId| SMis::new(v, n))
                    .adversary(StaticAdversary::new(g))
                    .seed(seed)
                    .rounds(600),
                |o: &MisOutput| o.is_decided(),
            );
            rounds.push(r as f64);
        }
        let s = Summary::of(&rounds);
        points.push((n, s.mean));
        table.push_row(vec![
            n.to_string(),
            fmt2(s.mean),
            fmt2(s.max),
            fmt2(s.mean / (n as f64).log2()),
        ]);
    }
    let mut fits = Table::new("E7 — O(log n) shape check", &["fit", "R²"]);
    if let Some(fit) = log_fit(&points) {
        fits.push_row(vec![
            format!("{:.2} + {:.2}·log2(n)", fit.intercept, fit.slope),
            format!("{:.3}", fit.r_squared),
        ]);
    }
    vec![table, fits]
}
