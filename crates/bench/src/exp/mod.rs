//! Experiment implementations. Each `eN` function returns the Markdown
//! tables that EXPERIMENTS.md records for that experiment.
//!
//! The experiment ids (E1–E14) and the claims they validate are listed in
//! DESIGN.md §5. All experiments are deterministic given their hard-coded
//! seeds and run on a laptop in a few minutes in release mode.
//!
//! ## Declaring an experiment as a sweep
//!
//! Every multi-scenario experiment declares its grid as a
//! [`dynnet::sweep::SweepSpec`] and executes it on the harness-wide
//! [`dynnet::sweep::SweepEngine`] (the `--threads` flag of the `experiments`
//! binary). The pattern is:
//!
//! 1. **Declare the grid** with `SweepSpec::grid1/2/3` — axes in row-major
//!    order, the innermost axis being the one later summarized over (seeds).
//!    Each cell's params carry everything the scenario needs (seed, `n`,
//!    churn rate, window, adversary selector); labels name the grid point
//!    for progress and failure reports.
//! 2. **Run one scenario per cell**: the cell closure builds the footprint
//!    graph, adversary, observers, and `Scenario` *from the cell's params
//!    alone* (deterministic per-(seed, node, round) RNG), runs it, and
//!    returns plain data. Cells execute concurrently on the engine's
//!    work-stealing shards; results come back keyed by grid index.
//! 3. **Aggregate in grid order** with a [`dynnet::sweep::Aggregator`] —
//!    [`dynnet::sweep::CellRows`] for one-row-per-cell tables,
//!    [`dynnet::sweep::GroupedSummary`] for mean/max-over-seeds rows (its
//!    `groups()` feed the `O(log n)` shape fits).
//!
//! Because cells are self-contained and aggregation is keyed by grid
//! coordinates, the emitted tables are byte-identical for any thread count.
//! Timing experiments (E14) run on [`ExpContext::serial_engine`] so sibling
//! cells cannot distort their wall-clock measurements.

pub mod comparisons;
pub mod convergence;
pub mod guarantees;

use dynnet::metrics::Table;
use dynnet::sweep::{
    Aggregator, Cell, CellValue, CheckpointStore, GroupedRun, SweepEngine, SweepRun, SweepSpec,
};
use std::path::PathBuf;

/// Harness-wide execution context handed to every experiment.
pub struct ExpContext {
    /// The sweep engine multi-scenario experiments execute on.
    pub engine: SweepEngine,
    /// Reduced-grid smoke mode (CI): shrink grids/horizons so a sweep
    /// finishes in seconds while still exercising every code path.
    pub smoke: bool,
    /// Durable per-cell checkpointing: when set (`--checkpoint-dir`), every
    /// checkpointable sweep persists each finished cell under
    /// `<dir>/<spec-name>/` so a killed run can resume.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume mode (`--resume`): reuse completed cells found in the
    /// checkpoint directory instead of starting fresh.
    pub resume: bool,
}

impl ExpContext {
    /// A context running sweeps on `threads` workers.
    pub fn new(threads: usize) -> Self {
        ExpContext {
            engine: SweepEngine::new(threads),
            smoke: false,
            checkpoint_dir: None,
            resume: false,
        }
    }

    /// A single-threaded engine for timing-sensitive experiments (E14):
    /// concurrent sibling cells would distort wall-clock measurements.
    pub fn serial_engine(&self) -> SweepEngine {
        self.engine.serial()
    }

    /// The checkpoint store for a sweep, when `--checkpoint-dir` is set:
    /// each spec gets its own subdirectory, created fresh or resumed per
    /// `--resume`.
    fn store(&self, spec_name: &str) -> Option<CheckpointStore> {
        let dir = self.checkpoint_dir.as_ref()?.join(spec_name);
        let store = if self.resume {
            CheckpointStore::resume(dir)
        } else {
            CheckpointStore::create(dir)
        };
        Some(store.unwrap_or_else(|e| panic!("checkpoint store for {spec_name}: {e}")))
    }

    /// Runs a sweep, checkpointing each finished cell when
    /// `--checkpoint-dir` is set (and skipping cells already completed when
    /// resuming). Falls back to a plain in-memory run otherwise; results
    /// are identical either way.
    pub fn run<P, R, F>(&self, spec: &SweepSpec<P>, run_cell: F) -> SweepRun<R>
    where
        P: Sync,
        R: Send + CellValue,
        F: Fn(&Cell<P>) -> R + Sync,
    {
        let run = match self.store(spec.name()) {
            Some(store) => self.engine.run_checkpointed(spec, &store, run_cell),
            None => self.engine.run(spec, run_cell),
        };
        run.unwrap_or_else(|e| panic!("{} sweep: {e}", spec.name()))
    }

    /// Checkpointable version of [`SweepEngine::aggregate`]: runs the sweep
    /// through [`ExpContext::run`] and folds the results in grid order.
    pub fn aggregate<P, R, F, A>(&self, spec: &SweepSpec<P>, run_cell: F, agg: A) -> Vec<Table>
    where
        P: Sync,
        R: Send + CellValue,
        F: Fn(&Cell<P>) -> R + Sync,
        A: Aggregator<P, R>,
    {
        let run = self.run(spec, run_cell);
        let mut agg = dynnet::sweep::fold(spec, run, agg);
        agg.finish()
    }

    /// Streaming grouped sweep (checkpointed when `--checkpoint-dir` is
    /// set): each group of consecutive same-key cells is folded as soon as
    /// its last cell lands, so only in-flight groups are buffered — the
    /// bounded-memory path for large seed-ensemble grids.
    pub fn run_grouped<P, R, K, G, F, FK, FG>(
        &self,
        spec: &SweepSpec<P>,
        run_cell: F,
        group_of: FK,
        fold_group: FG,
    ) -> GroupedRun<G>
    where
        P: Sync,
        R: Send + CellValue,
        K: PartialEq + Sync,
        G: Send,
        F: Fn(&Cell<P>) -> R + Sync,
        FK: Fn(&Cell<P>) -> K + Sync,
        FG: Fn(&K, &[Cell<P>], Vec<R>) -> G + Sync,
    {
        let store = self.store(spec.name());
        self.engine
            .run_grouped(spec, store.as_ref(), run_cell, group_of, fold_group)
            .unwrap_or_else(|e| panic!("{} sweep: {e}", spec.name()))
    }
}

/// A named experiment: id, one-line description, and the function producing
/// its tables.
pub struct Experiment {
    /// Experiment id (`e1` … `e14`).
    pub id: &'static str,
    /// One-line description (which claim of the paper it validates).
    pub description: &'static str,
    /// Runs the experiment on the given context and returns its tables.
    pub run: fn(&ExpContext) -> Vec<Table>,
}

/// The registry of all experiments, in id order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            description: "Basic static coloring completes in O(log n) rounds (Lemma 6.2)",
            run: convergence::e1_basic_coloring_scaling,
        },
        Experiment {
            id: "e2",
            description: "DColor completes in O(log n) rounds despite churn (Lemma 4.4)",
            run: convergence::e2_dcolor_scaling_under_churn,
        },
        Experiment {
            id: "e3",
            description: "DColor per-round progress: colored w.p. ≥ 1/64 or palette shrinks by 1/4 (Lemma 4.3)",
            run: convergence::e3_dcolor_progress,
        },
        Experiment {
            id: "e4",
            description: "Corollary 1.2: T-dynamic coloring every round; conflicts resolve within T; colors ≤ d^∪T+1",
            run: guarantees::e4_combined_coloring_under_churn,
        },
        Experiment {
            id: "e5",
            description: "Corollary 1.2 locally-static part: static 2-neighborhood ⇒ no output change after 2T",
            run: guarantees::e5_locally_static_coloring,
        },
        Experiment {
            id: "e6",
            description: "DMis decides all nodes in O(log n); undecided-edge decay ≤ 2/3 per 2 rounds (Lemmas 5.2/5.4)",
            run: convergence::e6_dmis_scaling_and_decay,
        },
        Experiment {
            id: "e7",
            description: "SMis decides in O(log n) rounds when the 2-neighborhood is static (Lemma 5.6)",
            run: convergence::e7_smis_scaling,
        },
        Experiment {
            id: "e8",
            description: "Corollary 1.3: T-dynamic MIS every round under churn and mobility",
            run: guarantees::e8_combined_mis_under_churn,
        },
        Experiment {
            id: "e9",
            description: "DMis needs a 2-oblivious adversary for progress (remark after Lemma 5.2)",
            run: comparisons::e9_oblivious_vs_adaptive,
        },
        Experiment {
            id: "e10",
            description: "Asynchronous wake-up: convergence measured from each node's wake-up round",
            run: guarantees::e10_asynchronous_wakeup,
        },
        Experiment {
            id: "e11",
            description: "Concat vs. restart-from-scratch strawman on identical schedules (Section 1.1 motivation)",
            run: comparisons::e11_concat_vs_restart,
        },
        Experiment {
            id: "e12",
            description: "Window-size lower bound: T below the static complexity breaks the guarantee (Section 1.1)",
            run: guarantees::e12_window_size_sweep,
        },
        Experiment {
            id: "e13",
            description: "TDMA application: collision-free slots except on recently inserted edges (Section 1.2)",
            run: comparisons::e13_tdma_mobility,
        },
        Experiment {
            id: "e14",
            description: "Simulator throughput: sequential vs. rayon-parallel round execution",
            run: comparisons::e14_simulator_throughput,
        },
    ]
}
