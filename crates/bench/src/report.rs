//! Machine-readable benchmark results (`BENCH_round.json`).
//!
//! The perf-tracking benches (`bench_round_kernel`, `bench_parallel`) append
//! their medians to one JSON file so the round-kernel perf trajectory can be
//! compared across PRs without scraping stdout. The file is a JSON array
//! with exactly one record per line:
//!
//! ```text
//! [
//! {"source":"bench_round_kernel","kernel":"flood","n":100000,...},
//! {"source":"bench_parallel","kernel":"dmis-streaming","n":100000,...}
//! ]
//! ```
//!
//! Each writer owns the records carrying its `source` tag: on write, existing
//! records from other sources are kept, records from the same source are
//! replaced. The one-record-per-line shape is what makes that merge a plain
//! line filter — no JSON parser is needed to maintain the file.
//!
//! Location: `$DYNNET_RESULTS_DIR/BENCH_round.json` if the variable is set,
//! else `BENCH_round.json` in the current working directory. Note that
//! `cargo bench` runs bench binaries with the *package* directory as cwd
//! (`crates/bench/`), so set `DYNNET_RESULTS_DIR` to the workspace root to
//! maintain the checked-in copy.

use std::io::Write;
use std::path::PathBuf;

/// One measured configuration of a round bench: the median/mean per-round
/// latency of `rounds` steady-state rounds at `n` nodes and the given
/// per-edge churn probability.
///
/// The thread count is *not* a field: every record is stamped with the
/// resolved thread budget ([`rayon::max_threads`]) at serialization time, so
/// rows can never disagree with the budget the process actually ran under
/// (individual benches used to pass their own — sometimes stale — value).
#[derive(Clone, Debug)]
pub struct RoundBenchRecord {
    /// Which bench produced the record (`"bench_round_kernel"`, …).
    pub source: &'static str,
    /// Kernel / algorithm label (`"flood"`, `"dmis"`, …).
    pub kernel: String,
    /// Universe size.
    pub n: usize,
    /// Per-edge churn probability per round.
    pub churn: f64,
    /// Number of measured rounds.
    pub rounds: usize,
    /// Median per-round latency in nanoseconds.
    pub median_ns: u128,
    /// Mean per-round latency in nanoseconds.
    pub mean_ns: u128,
}

impl RoundBenchRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"source\":\"{}\",\"kernel\":\"{}\",\"n\":{},\"churn\":{},\"threads\":{},\"rounds\":{},\"median_ns_per_round\":{},\"mean_ns_per_round\":{}}}",
            self.source, self.kernel, self.n, self.churn, rayon::max_threads(), self.rounds,
            self.median_ns, self.mean_ns,
        )
    }
}

/// The target path of `BENCH_round.json`.
pub fn round_bench_path() -> PathBuf {
    let dir = std::env::var("DYNNET_RESULTS_DIR").unwrap_or_else(|_| ".".to_string());
    PathBuf::from(dir).join("BENCH_round.json")
}

/// Merges `records` (all tagged `source`) into `BENCH_round.json`: records
/// previously written by the same source are replaced, records from other
/// sources are preserved. Returns the path written.
pub fn write_round_bench(source: &str, records: &[RoundBenchRecord]) -> std::io::Result<PathBuf> {
    let path = round_bench_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut lines: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        let marker = format!("\"source\":\"{source}\"");
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if line.starts_with('{') && !line.contains(&marker) {
                lines.push(line.to_string());
            }
        }
    }
    lines.extend(records.iter().map(RoundBenchRecord::to_json));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "[")?;
    writeln!(f, "{}", lines.join(",\n"))?;
    writeln!(f, "]")?;
    Ok(path)
}

/// Median of a slice of per-round nanosecond samples (0 for an empty slice).
pub fn median_ns(samples: &[u128]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Mean of a slice of per-round nanosecond samples (0 for an empty slice).
pub fn mean_ns(samples: &[u128]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.iter().sum::<u128>() / samples.len() as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medians_and_means() {
        assert_eq!(median_ns(&[]), 0);
        assert_eq!(median_ns(&[5]), 5);
        assert_eq!(median_ns(&[9, 1, 5]), 5);
        assert_eq!(mean_ns(&[2, 4, 6]), 4);
    }

    #[test]
    fn merge_replaces_own_source_and_keeps_others() {
        let dir = std::env::temp_dir().join(format!("dynnet-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("DYNNET_RESULTS_DIR", &dir);
        let rec = |source, n| RoundBenchRecord {
            source,
            kernel: "k".to_string(),
            n,
            churn: 0.001,
            rounds: 4,
            median_ns: 10,
            mean_ns: 11,
        };
        write_round_bench("a", &[rec("a", 1)]).unwrap();
        write_round_bench("b", &[rec("b", 2)]).unwrap();
        write_round_bench("a", &[rec("a", 3)]).unwrap();
        let text = std::fs::read_to_string(round_bench_path()).unwrap();
        std::env::remove_var("DYNNET_RESULTS_DIR");
        assert!(text.contains("\"n\":2"), "other source preserved: {text}");
        assert!(text.contains("\"n\":3"), "own source replaced: {text}");
        assert!(
            !text.contains("\"n\":1"),
            "stale own record dropped: {text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
