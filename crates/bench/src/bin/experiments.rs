//! Experiment harness: regenerates every experiment table recorded in
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p dynnet-bench --bin experiments -- all
//! cargo run --release -p dynnet-bench --bin experiments -- e4 e8
//! cargo run --release -p dynnet-bench --bin experiments -- list
//! ```
//!
//! Tables are printed as Markdown on stdout and additionally written to
//! `results/<id>.md` (and `results/<id>_<table>.csv`) at the workspace root.

use dynnet_bench::exp::registry;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = registry();

    if args.is_empty() || args[0] == "list" {
        println!("Available experiments (run with `experiments all` or a list of ids):\n");
        for e in &experiments {
            println!("  {:<4} {}", e.id, e.description);
        }
        return;
    }

    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments.iter().map(|e| e.id).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let dir = results_dir();
    for e in &experiments {
        if !selected.contains(&e.id) {
            continue;
        }
        eprintln!("== running {} — {}", e.id, e.description);
        let start = Instant::now();
        let tables = (e.run)();
        let elapsed = start.elapsed();
        let mut md = format!("## {} — {}\n\n", e.id.to_uppercase(), e.description);
        for t in &tables {
            md.push_str(&t.to_markdown());
            md.push('\n');
            let csv_path = dir.join(format!(
                "{}_{}.csv",
                e.id,
                t.title
                    .chars()
                    .take(40)
                    .map(|c| if c.is_alphanumeric() { c } else { '_' })
                    .collect::<String>()
            ));
            fs::write(&csv_path, t.to_csv()).expect("write csv");
        }
        md.push_str(&format!("_elapsed: {:.1}s_\n", elapsed.as_secs_f64()));
        fs::write(dir.join(format!("{}.md", e.id)), &md).expect("write markdown");
        println!("{md}");
        eprintln!("== {} finished in {:.1}s", e.id, elapsed.as_secs_f64());
    }
}
