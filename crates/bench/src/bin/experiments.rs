//! Experiment harness: regenerates every experiment table recorded in
//! EXPERIMENTS.md, running multi-scenario experiments on the sharded
//! work-stealing sweep engine.
//!
//! ```text
//! cargo run --release -p dynnet-bench --bin experiments -- all
//! cargo run --release -p dynnet-bench --bin experiments -- e4 e8 --threads 8
//! cargo run --release -p dynnet-bench --bin experiments -- e3 --threads 2 --smoke
//! cargo run --release -p dynnet-bench --bin experiments -- list
//! ```
//!
//! Flags:
//!
//! * `--threads N` — worker threads for the sweep engine (default: all
//!   available cores). Results are byte-identical for any `N`; only
//!   wall-clock time changes.
//! * `--results-dir DIR` — where to write the result files (also settable
//!   via the `DYNNET_RESULTS_DIR` environment variable; defaults to the
//!   workspace-root `results/` directory when it exists, falling back to
//!   `./results`).
//! * `--smoke` — reduced grids/horizons (CI smoke mode).
//! * `--trace-out FILE` — enable phase-span tracing and write a Chrome
//!   trace-event JSON file (open in Perfetto / `chrome://tracing`) covering
//!   the selected experiments. Tracing is observational only: results and
//!   CSVs are byte-identical with or without it.
//! * `--metrics-out FILE` — stream metric snapshots (JSONL, one per sweep
//!   progress event plus a final one) from the unified `dynnet-obs`
//!   registry.
//! * `--checkpoint-dir DIR` — persist every finished sweep cell under
//!   `DIR/<sweep-name>/` so a killed run can be resumed. Starts fresh
//!   (discarding any prior checkpoint) unless `--resume` is also given.
//! * `--resume` — with `--checkpoint-dir`, verify and reuse completed cells
//!   from a previous (possibly crashed) run instead of re-running them.
//!   The resumed run's tables and CSVs are byte-identical to an
//!   uninterrupted run's.
//!
//! Tables are printed as Markdown on stdout and additionally written to
//! `<results-dir>/<id>.md` (and `<results-dir>/<id>_<table>.csv`).

use dynnet::obs::{self, JsonlWriter, ProgressSink};
use dynnet::sweep::SweepEngine;
use dynnet_bench::exp::{registry, ExpContext};
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A [`ProgressSink`] that appends one registry snapshot to the metrics
/// JSONL stream per progress/finished event — the `--metrics-out` backend.
struct JsonlSink(Mutex<JsonlWriter>);

impl JsonlSink {
    fn write_snapshot(&self) {
        let snap = obs::registry().snapshot();
        let mut writer = self.0.lock().expect("metrics writer lock");
        if let Err(e) = writer.write(&snap) {
            eprintln!("could not append metrics snapshot: {e}");
        }
    }
}

impl ProgressSink for JsonlSink {
    fn progress(&self, _scope: &str, _done: u64, _total: u64) {
        self.write_snapshot();
    }

    fn finished(&self, _scope: &str, _summary: &str) {
        self.write_snapshot();
    }
}

/// Resolves the results directory: `--results-dir` flag, then the
/// `DYNNET_RESULTS_DIR` environment variable, then the workspace-relative
/// default. The compile-time `CARGO_MANIFEST_DIR` bakes in a build-machine
/// path, so it is only trusted if it still exists on this machine;
/// otherwise a `results/` directory under the current working directory is
/// used.
fn results_dir(flag: Option<&str>) -> PathBuf {
    let dir = flag
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("DYNNET_RESULTS_DIR").map(PathBuf::from))
        .unwrap_or_else(|| {
            let baked = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
            if baked.parent().map(|p| p.exists()).unwrap_or(false) {
                baked
            } else {
                PathBuf::from("results")
            }
        });
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = registry();

    // Parse flags; everything else is an experiment id (or `all` / `list`).
    let mut threads: Option<usize> = None;
    let mut results_flag: Option<String> = None;
    let mut smoke = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut selected_args: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it.next().expect("--threads needs a value");
                threads = Some(v.parse().expect("--threads needs an integer"));
            }
            "--results-dir" => {
                results_flag = Some(it.next().expect("--results-dir needs a path"));
            }
            "--smoke" => smoke = true,
            "--trace-out" => {
                trace_out = Some(PathBuf::from(it.next().expect("--trace-out needs a path")));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().expect("--metrics-out needs a path"),
                ));
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(
                    it.next().expect("--checkpoint-dir needs a path"),
                ));
            }
            "--resume" => resume = true,
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag: {flag} (expected --threads N, --results-dir DIR, --smoke, \
                     --trace-out FILE, --metrics-out FILE, --checkpoint-dir DIR, --resume)"
                );
                std::process::exit(2);
            }
            _ => selected_args.push(arg),
        }
    }

    if selected_args.is_empty() || selected_args[0] == "list" {
        println!("Available experiments (run with `experiments all` or a list of ids):\n");
        for e in &experiments {
            println!("  {:<4} {}", e.id, e.description);
        }
        return;
    }

    let selected: Vec<&str> = if selected_args.iter().any(|a| a == "all") {
        experiments.iter().map(|e| e.id).collect()
    } else {
        selected_args.iter().map(|s| s.as_str()).collect()
    };

    // Default to the shared thread budget (`DYNNET_RAYON_THREADS` if set,
    // otherwise the core count), so one knob caps the sweep shards and the
    // per-round parallelism inside cells alike.
    let threads = threads.unwrap_or_else(|| SweepEngine::default().threads());
    let mut ctx = ExpContext::new(threads);
    ctx.engine = ctx.engine.with_progress(true);
    ctx.smoke = smoke;
    if resume && checkpoint_dir.is_none() {
        eprintln!("--resume requires --checkpoint-dir");
        std::process::exit(2);
    }
    ctx.checkpoint_dir = checkpoint_dir;
    ctx.resume = resume;
    if trace_out.is_some() {
        obs::set_enabled(true);
    }
    let metrics_sink: Option<Arc<JsonlSink>> = metrics_out.as_ref().map(|path| {
        let writer = JsonlWriter::create(path, "experiments").expect("create metrics file");
        Arc::new(JsonlSink(Mutex::new(writer)))
    });
    if let Some(sink) = &metrics_sink {
        ctx.engine = ctx
            .engine
            .add_sink(Arc::clone(sink) as Arc<dyn ProgressSink>);
    }
    eprintln!(
        "== sweep engine: {threads} thread{} {}",
        if threads == 1 { "" } else { "s" },
        if smoke { "(smoke grids)" } else { "" }
    );

    let dir = results_dir(results_flag.as_deref());
    for e in &experiments {
        if !selected.contains(&e.id) {
            continue;
        }
        eprintln!("== running {} — {}", e.id, e.description);
        // Scope shared footprint graphs to this experiment: the cache
        // entries it creates are dropped when the scope ends, so running
        // many experiments back to back holds no stale graphs.
        let footprint_scope = dynnet::graph::generators::FootprintScope::new();
        // TIMING: per-experiment elapsed time goes to stderr progress only;
        // the generated tables contain no wall-clock values.
        let start = Instant::now();
        let tables = (e.run)(&ctx);
        let elapsed = start.elapsed();
        drop(footprint_scope);
        let mut md = format!("## {} — {}\n\n", e.id.to_uppercase(), e.description);
        for t in &tables {
            md.push_str(&t.to_markdown());
            md.push('\n');
            let csv_path = dir.join(format!(
                "{}_{}.csv",
                e.id,
                t.title
                    .chars()
                    .take(40)
                    .map(|c| if c.is_alphanumeric() { c } else { '_' })
                    .collect::<String>()
            ));
            fs::write(&csv_path, t.to_csv()).expect("write csv");
        }
        md.push_str(&format!("_elapsed: {:.1}s_\n", elapsed.as_secs_f64()));
        fs::write(dir.join(format!("{}.md", e.id)), &md).expect("write markdown");
        println!("{md}");
        eprintln!("== {} finished in {:.1}s", e.id, elapsed.as_secs_f64());
    }

    if let Some(sink) = &metrics_sink {
        // Final snapshot after all experiments so the stream always ends
        // with the complete registry state.
        sink.write_snapshot();
        if let Some(path) = &metrics_out {
            eprintln!("== wrote metrics JSONL to {}", path.display());
        }
    }
    if let Some(path) = &trace_out {
        let events = obs::take_events();
        let dropped = obs::dropped_events();
        obs::write_chrome_trace(path, &events).expect("write chrome trace");
        eprintln!(
            "== wrote {} trace events to {} ({} dropped at the buffer cap)",
            events.len(),
            path.display(),
            dropped,
        );
    }
}
