//! Property tests for the delta wire format: round-trips over arbitrary
//! canonical deltas (hand-rolled seeded generator — no external property
//! testing dependency), and adversarial-input suites proving truncated or
//! bit-flipped records fail with a typed [`CodecError`] instead of
//! panicking or being silently trusted.

use dynnet_graph::codec::{
    decode_delta, encode_delta, fnv1a64, write_log_header, write_record, CodecError,
    DeltaLogReader, DeltaLogWriter,
};
use dynnet_graph::{Edge, Graph, GraphDelta, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

const CASES: usize = 200;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dynnet-codec-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// An arbitrary canonical delta over a universe of `n` nodes: random raw
/// change lists canonicalized through [`GraphDelta::from_changes`] (the
/// same normalization every producer in the workspace applies).
fn arbitrary_delta(n: usize, rng: &mut ChaCha8Rng) -> GraphDelta {
    let mut edges = |max: usize| -> Vec<Edge> {
        (0..rng.gen_range(0..max))
            .filter_map(|_| {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                (a != b).then(|| Edge::of(a, b))
            })
            .collect()
    };
    let inserted = edges(3 * n);
    let removed = edges(n);
    let mut nodes = |max: usize| -> Vec<NodeId> {
        (0..rng.gen_range(0..max))
            .map(|_| NodeId::new(rng.gen_range(0..n)))
            .collect()
    };
    let woken = nodes(n);
    let deactivated = nodes(n / 2 + 1);
    GraphDelta::from_changes(inserted, removed, woken, deactivated)
}

#[test]
fn arbitrary_canonical_deltas_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9e37);
    for case in 0..CASES {
        let n = rng.gen_range(2..40);
        let delta = arbitrary_delta(n, &mut rng);
        let bytes = encode_delta(&delta, n).unwrap_or_else(|e| panic!("case {case}: encode: {e}"));
        let back = decode_delta(&bytes, n).unwrap_or_else(|e| panic!("case {case}: decode: {e}"));
        assert_eq!(back, delta, "case {case}: decoded delta differs");
        // Re-encoding the decoded delta must reproduce the exact bytes:
        // the canonical form has a unique encoding.
        let again = encode_delta(&back, n).unwrap();
        assert_eq!(again, bytes, "case {case}: encoding is not canonical");
    }
}

#[test]
fn every_truncation_fails_with_typed_error() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x517c);
    for case in 0..40 {
        let n = rng.gen_range(4..24);
        let delta = arbitrary_delta(n, &mut rng);
        if delta.is_empty() {
            continue;
        }
        let bytes = encode_delta(&delta, n).unwrap();
        for cut in 0..bytes.len() {
            match decode_delta(&bytes[..cut], n) {
                Err(_) => {}
                Ok(short) => {
                    // A prefix that still parses must not masquerade as the
                    // full record (possible only if a trailing section is
                    // empty — and the empty-delta prefix is shorter).
                    assert_ne!(short, delta, "case {case}: truncation at {cut} undetected");
                }
            }
        }
    }
}

#[test]
fn payload_bit_flips_never_panic_and_stay_canonical() {
    // Without the framing checksum a flipped payload may still decode —
    // but it must decode to a *canonical* delta or fail typed; it must
    // never panic or produce out-of-range ids.
    let mut rng = ChaCha8Rng::seed_from_u64(0xb17f);
    for _ in 0..30 {
        let n = rng.gen_range(4..24);
        let delta = arbitrary_delta(n, &mut rng);
        let bytes = encode_delta(&delta, n).unwrap();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                if let Ok(d) = decode_delta(&corrupt, n) {
                    let mut canon = d.clone();
                    canon.normalize();
                    assert_eq!(d, canon, "decoded delta must be canonical");
                    assert!(d
                        .inserted
                        .iter()
                        .chain(&d.removed)
                        .all(|e| e.u < e.v && e.v.index() < n));
                    assert!(d.woken.iter().chain(&d.deactivated).all(|v| v.index() < n));
                }
            }
        }
    }
}

#[test]
fn record_bit_flips_are_caught_by_the_checksum() {
    // At the record level (payload + FNV-1a frame) every single-bit flip
    // must be detected: either the checksum mismatches or, if the length
    // prefix was hit, the file structure breaks. Nothing is silently
    // accepted as the original record.
    let mut rng = ChaCha8Rng::seed_from_u64(0xcafe);
    let n = 16;
    let deltas: Vec<GraphDelta> = (0..3).map(|_| arbitrary_delta(n, &mut rng)).collect();
    let mut file = Vec::new();
    write_log_header(&mut file, n);
    let header_len = file.len();
    for d in &deltas {
        write_record(&mut file, &encode_delta(d, n).unwrap());
    }
    let path = tmp("flip.dlog");
    for i in header_len..file.len() {
        for bit in [0, 3, 7] {
            let mut corrupt = file.clone();
            corrupt[i] ^= 1 << bit;
            std::fs::write(&path, &corrupt).unwrap();
            let read: Result<Vec<GraphDelta>, CodecError> =
                DeltaLogReader::open(&path).and_then(|r| r.collect::<Result<Vec<_>, CodecError>>());
            match read {
                Err(_) => {}
                Ok(back) => assert_ne!(back, deltas, "flip at byte {i} bit {bit} undetected"),
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_log_files_fail_typed() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e57);
    let n = 12;
    let path = tmp("trunc.dlog");
    let mut w = DeltaLogWriter::create(&path, n).unwrap();
    for _ in 0..4 {
        w.append(&arbitrary_delta(n, &mut rng)).unwrap();
    }
    w.finish().unwrap();
    let full = std::fs::read(&path).unwrap();
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let read: Result<Vec<GraphDelta>, CodecError> = match DeltaLogReader::open(&path) {
            Ok(r) => r.collect(),
            Err(e) => Err(e),
        };
        if cut < full.len() {
            // Either an error, or a clean prefix of whole records (cut at
            // a record boundary) — but never a panic, and never all four
            // records.
            if let Ok(records) = read {
                assert!(records.len() < 4, "truncation at {cut} undetected");
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn empty_and_zero_length_edge_cases() {
    // Empty delta round-trips through a log.
    let path = tmp("edge.dlog");
    let mut w = DeltaLogWriter::create(&path, 5).unwrap();
    w.append(&GraphDelta::default()).unwrap();
    let stats = w.finish().unwrap();
    assert_eq!(stats.records, 1);
    let records: Vec<GraphDelta> = DeltaLogReader::open(&path)
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(records, vec![GraphDelta::default()]);

    // Header-only log: zero records, replays to the all-asleep graph.
    let w = DeltaLogWriter::create(&path, 5).unwrap();
    w.finish().unwrap();
    assert_eq!(DeltaLogReader::open(&path).unwrap().count(), 0);
    assert_eq!(
        dynnet_graph::codec::replay_log(&path).unwrap(),
        Graph::new_all_asleep(5)
    );

    // Zero-length file: typed BadMagic, not a panic.
    std::fs::write(&path, []).unwrap();
    assert!(matches!(
        DeltaLogReader::open(&path),
        Err(CodecError::BadMagic)
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn fnv_checksum_is_stable() {
    // Pin the checksum constants: a silent change would orphan every
    // existing log file and checkpoint.
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
}
