//! Neighborhood queries: `N^α(v)` balls, local views, and distances.
//!
//! The paper's locality guarantees are phrased in terms of the α-neighborhood
//! of a node (`α = 2` for both coloring and MIS, cf. Corollaries 1.2/1.3 and
//! Definition 3.3 B.2). These helpers compute such balls with bounded-depth
//! BFS.

use crate::graph::Graph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Returns the α-neighborhood `N^α(v)` of `v` in `g`, *including* `v` itself,
/// i.e. all nodes at hop distance at most `alpha` from `v`. The result is
/// sorted by node id.
pub fn neighborhood(g: &Graph, v: NodeId, alpha: usize) -> Vec<NodeId> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    dist[v.index()] = 0;
    queue.push_back(v);
    out.push(v);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        if d == alpha {
            continue;
        }
        for w in g.neighbors(u) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = d + 1;
                out.push(w);
                queue.push_back(w);
            }
        }
    }
    out.sort();
    out
}

/// Returns the nodes at *exactly* hop distance `alpha` from `v`.
pub fn sphere(g: &Graph, v: NodeId, alpha: usize) -> Vec<NodeId> {
    let dists = bfs_distances(g, v, Some(alpha));
    let mut out: Vec<NodeId> = (0..g.num_nodes())
        // INVARIANT: bfs_distances returns one entry per node of `g`.
        .filter(|&i| dists[i] == Some(alpha))
        .map(NodeId::new)
        .collect();
    out.sort();
    out
}

/// BFS distances from `source`, optionally truncated at `max_depth`.
/// Unreachable nodes (or nodes beyond the depth limit) get `None`.
pub fn bfs_distances(g: &Graph, source: NodeId, max_depth: Option<usize>) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back((source, 0usize));
    while let Some((u, d)) = queue.pop_front() {
        if let Some(limit) = max_depth {
            if d == limit {
                continue;
            }
        }
        for w in g.neighbors(u) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                queue.push_back((w, d + 1));
            }
        }
    }
    dist
}

/// Hop distance between `u` and `v`, or `None` if disconnected.
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> Option<usize> {
    bfs_distances(g, u, None)[v.index()]
}

/// The subgraph induced by `N^α(v)` — the "local view" a node with knowledge
/// radius `α` has of the network.
pub fn local_view(g: &Graph, v: NodeId, alpha: usize) -> Graph {
    let ball = neighborhood(g, v, alpha);
    g.induced_subgraph(&ball)
}

/// Returns `true` if the α-neighborhood of `v` induces identical adjacency in
/// `g1` and `g2`. The ball is computed in `g1`; per the paper's definition of
/// a locally static interval the ball is the same in both graphs whenever the
/// predicate holds, so the choice of reference graph does not matter for
/// positive answers.
pub fn same_local_view(g1: &Graph, g2: &Graph, v: NodeId, alpha: usize) -> bool {
    let ball = neighborhood(g1, v, alpha);
    g1.same_edges_on(g2, &ball)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Edge;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| Edge::of(i, i + 1)))
    }

    #[test]
    fn neighborhood_on_path() {
        let g = path(6);
        let ball = neighborhood(&g, NodeId::new(2), 2);
        assert_eq!(
            ball,
            vec![0, 1, 2, 3, 4]
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>()
        );
        let ball0 = neighborhood(&g, NodeId::new(2), 0);
        assert_eq!(ball0, vec![NodeId::new(2)]);
    }

    #[test]
    fn sphere_on_path() {
        let g = path(6);
        assert_eq!(
            sphere(&g, NodeId::new(2), 2),
            vec![NodeId::new(0), NodeId::new(4)]
        );
        assert_eq!(sphere(&g, NodeId::new(0), 3), vec![NodeId::new(3)]);
    }

    #[test]
    fn distances() {
        let g = path(5);
        assert_eq!(distance(&g, NodeId::new(0), NodeId::new(4)), Some(4));
        assert_eq!(distance(&g, NodeId::new(2), NodeId::new(2)), Some(0));
        let disconnected = Graph::from_edges(4, [Edge::of(0, 1)]);
        assert_eq!(
            distance(&disconnected, NodeId::new(0), NodeId::new(3)),
            None
        );
    }

    #[test]
    fn bfs_depth_limit() {
        let g = path(6);
        let d = bfs_distances(&g, NodeId::new(0), Some(2));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], None, "beyond the depth limit");
    }

    #[test]
    fn local_view_is_induced_subgraph() {
        let g = Graph::from_edges(
            5,
            [
                Edge::of(0, 1),
                Edge::of(1, 2),
                Edge::of(2, 3),
                Edge::of(3, 4),
            ],
        );
        let view = local_view(&g, NodeId::new(0), 2);
        assert_eq!(view.edge_vec(), vec![Edge::of(0, 1), Edge::of(1, 2)]);
    }

    #[test]
    fn same_local_view_detects_changes_inside_ball_only() {
        let g1 = Graph::from_edges(6, [Edge::of(0, 1), Edge::of(1, 2), Edge::of(4, 5)]);
        let mut g2 = g1.clone();
        g2.remove_edge(NodeId::new(4), NodeId::new(5));
        assert!(same_local_view(&g1, &g2, NodeId::new(0), 2));
        g2.insert_edge(NodeId::new(2), NodeId::new(3));
        assert!(!same_local_view(&g1, &g2, NodeId::new(0), 2));
        assert!(same_local_view(&g1, &g2, NodeId::new(0), 1));
    }
}
