//! Compact binary wire format for [`GraphDelta`]s and the append-only
//! delta log used by the durable trace store.
//!
//! ## Record payload format
//!
//! A delta payload is the concatenation of four sections — `inserted`
//! edges, `removed` edges, `woken` nodes, `deactivated` nodes — encoded
//! over LEB128 varints:
//!
//! * **Edge sections** are run-length batches grouped by the lower endpoint
//!   `u` (edges are canonical `u < v` and sorted, so equal-`u` runs are
//!   contiguous): a varint group count, then per group a zig-zag delta from
//!   the previous group's `u`, a varint run length, a zig-zag `v₀ − u` for
//!   the first upper endpoint and varint gaps (`≥ 1`) for the rest.
//! * **Node sections** are a varint length, a zig-zag first id, and varint
//!   gaps (`≥ 1`) between consecutive ids.
//!
//! Decoding validates everything the canonical form promises — ids below
//! the universe size, strictly increasing order, no self-loops — and fails
//! with a typed [`CodecError`] on any violation, truncation, or checksum
//! mismatch; corrupt bytes can never panic or produce a non-canonical
//! delta.
//!
//! ## Log file format
//!
//! ```text
//! "DNDL" magic · version byte (1) · varint n        (header)
//! varint payload_len · payload · FNV-1a-64 LE       (per record, repeated)
//! ```
//!
//! The checksum covers the payload bytes only, so a record is validated
//! before it is decoded. By convention (see `DeltaLogRecorder` in
//! `dynnet-runtime`) record 0 is the *initial state* expressed as a delta
//! from the all-asleep empty graph on `n` nodes; [`replay_log`] applies
//! every record in order to that graph and returns the final one.

use crate::dynamic::GraphDelta;
use crate::graph::Graph;
use crate::node::{Edge, NodeId};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;

/// Magic bytes opening every delta log file.
pub const LOG_MAGIC: [u8; 4] = *b"DNDL";
/// Current delta log format version.
pub const LOG_VERSION: u8 = 1;

/// Typed decode/IO failure of the delta codec. Corrupt or truncated input
/// always surfaces as one of these variants — never as a panic.
#[derive(Debug)]
pub enum CodecError {
    /// Input ended before the value being decoded was complete.
    UnexpectedEof,
    /// A varint ran past 10 bytes / overflowed 64 bits.
    VarintOverflow,
    /// Stored checksum does not match the payload bytes.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The file does not start with the `DNDL` magic.
    BadMagic,
    /// The file uses an unsupported format version.
    BadVersion(u8),
    /// A decoded value violates the canonical-delta invariants.
    InvalidValue(String),
    /// The payload decoded cleanly but left unread bytes behind.
    TrailingBytes(usize),
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::VarintOverflow => write!(f, "varint overflows 64 bits"),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CodecError::BadMagic => write!(f, "not a delta log (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported delta log version {v}"),
            CodecError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Varints, zig-zag, checksum
// ---------------------------------------------------------------------------

/// Appends `value` as an LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from the front of `input`, advancing it.
pub fn read_varint(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or(CodecError::UnexpectedEof)?;
        *input = rest;
        let bits = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && bits > 1) {
            return Err(CodecError::VarintOverflow);
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zig-zag maps a signed value to an unsigned one with small magnitudes
/// staying small (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a 64-bit hash — the per-record checksum of the delta log and the
/// per-cell checksum of sweep checkpoints.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn write_zigzag(out: &mut Vec<u8>, v: i64) {
    write_varint(out, zigzag(v));
}

fn read_zigzag(input: &mut &[u8]) -> Result<i64, CodecError> {
    read_varint(input).map(unzigzag)
}

// ---------------------------------------------------------------------------
// Delta payload encode/decode
// ---------------------------------------------------------------------------

fn check_node(v: NodeId, n: usize, what: &str) -> Result<(), CodecError> {
    if v.index() >= n {
        return Err(CodecError::InvalidValue(format!(
            "{what} node {} out of range (n = {n})",
            v.index()
        )));
    }
    Ok(())
}

fn encode_edge_section(out: &mut Vec<u8>, edges: &[Edge], n: usize) -> Result<(), CodecError> {
    let mut prev: Option<Edge> = None;
    for &e in edges {
        check_node(e.u, n, "edge")?;
        check_node(e.v, n, "edge")?;
        if e.u >= e.v {
            return Err(CodecError::InvalidValue(format!(
                "edge {}-{} is not canonical (u < v)",
                e.u.index(),
                e.v.index()
            )));
        }
        if let Some(p) = prev {
            if e <= p {
                return Err(CodecError::InvalidValue(
                    "edge list is not sorted/deduplicated".to_string(),
                ));
            }
        }
        prev = Some(e);
    }
    // Group count: number of distinct lower endpoints.
    let groups = edges
        .iter()
        .zip(edges.iter().skip(1))
        .filter(|(a, b)| a.u != b.u)
        .count()
        + usize::from(!edges.is_empty());
    write_varint(out, groups as u64);
    let mut prev_u: i64 = 0;
    let mut i = 0;
    while i < edges.len() {
        let u = edges[i].u;
        let run_end = edges[i..]
            .iter()
            .position(|e| e.u != u)
            .map(|p| i + p)
            .unwrap_or(edges.len());
        write_zigzag(out, u.index() as i64 - prev_u);
        prev_u = u.index() as i64;
        write_varint(out, (run_end - i) as u64);
        write_zigzag(out, edges[i].v.index() as i64 - u.index() as i64);
        for w in edges[i..run_end].windows(2) {
            write_varint(out, (w[1].v.index() - w[0].v.index()) as u64);
        }
        i = run_end;
    }
    Ok(())
}

/// Bounds a decoded element count by the bytes still available (each
/// element costs at least one byte), so corrupt counts cannot trigger
/// huge allocations.
fn check_count(count: u64, input: &[u8]) -> Result<usize, CodecError> {
    if count > input.len() as u64 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(count as usize)
}

fn decode_edge_section(input: &mut &[u8], n: usize) -> Result<Vec<Edge>, CodecError> {
    let groups = check_count(read_varint(input)?, input)?;
    let mut edges = Vec::new();
    let mut prev_u: i64 = 0;
    for gi in 0..groups {
        let du = read_zigzag(input)?;
        let u = prev_u + du;
        if u < 0 || u as usize >= n || (gi > 0 && du <= 0) {
            return Err(CodecError::InvalidValue(format!(
                "edge group endpoint {u} out of order or out of range (n = {n})"
            )));
        }
        prev_u = u;
        let run = check_count(read_varint(input)?, input)?;
        if run == 0 {
            return Err(CodecError::InvalidValue("empty edge run".to_string()));
        }
        let mut v = u + read_zigzag(input)?;
        for k in 0..run {
            if k > 0 {
                let gap = read_varint(input)?;
                if gap == 0 {
                    return Err(CodecError::InvalidValue(
                        "zero gap in edge run (duplicate edge)".to_string(),
                    ));
                }
                v += gap as i64;
            }
            if v <= u || v as usize >= n {
                return Err(CodecError::InvalidValue(format!(
                    "edge {u}-{v} out of range or not canonical (n = {n})"
                )));
            }
            edges.push(Edge::of(u as usize, v as usize));
        }
    }
    Ok(edges)
}

fn encode_node_section(out: &mut Vec<u8>, nodes: &[NodeId], n: usize) -> Result<(), CodecError> {
    for w in nodes.windows(2) {
        if w[1] <= w[0] {
            return Err(CodecError::InvalidValue(
                "node list is not sorted/deduplicated".to_string(),
            ));
        }
    }
    write_varint(out, nodes.len() as u64);
    let mut prev: i64 = 0;
    for (i, v) in nodes.iter().enumerate() {
        check_node(*v, n, "listed")?;
        if i == 0 {
            write_zigzag(out, v.index() as i64);
        } else {
            write_varint(out, (v.index() as i64 - prev) as u64);
        }
        prev = v.index() as i64;
    }
    Ok(())
}

fn decode_node_section(input: &mut &[u8], n: usize) -> Result<Vec<NodeId>, CodecError> {
    let len = check_count(read_varint(input)?, input)?;
    let mut nodes = Vec::with_capacity(len);
    let mut prev: i64 = 0;
    for i in 0..len {
        let v = if i == 0 {
            read_zigzag(input)?
        } else {
            let gap = read_varint(input)?;
            if gap == 0 {
                return Err(CodecError::InvalidValue(
                    "zero gap in node list (duplicate node)".to_string(),
                ));
            }
            prev + gap as i64
        };
        if v < 0 || v as usize >= n {
            return Err(CodecError::InvalidValue(format!(
                "node {v} out of range (n = {n})"
            )));
        }
        prev = v;
        nodes.push(NodeId::new(v as usize));
    }
    Ok(nodes)
}

/// Encodes a *canonical* delta (sorted, deduplicated, ids `< n`) into its
/// compact payload. Non-canonical input — the only way to produce a payload
/// that would not round-trip — is rejected with
/// [`CodecError::InvalidValue`]; call [`GraphDelta::normalize`] first.
pub fn encode_delta(delta: &GraphDelta, n: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(
        2 * (delta.inserted.len() + delta.removed.len())
            + delta.woken.len()
            + delta.deactivated.len()
            + 8,
    );
    encode_edge_section(&mut out, &delta.inserted, n)?;
    encode_edge_section(&mut out, &delta.removed, n)?;
    encode_node_section(&mut out, &delta.woken, n)?;
    encode_node_section(&mut out, &delta.deactivated, n)?;
    Ok(out)
}

/// Decodes a payload produced by [`encode_delta`], consuming all of
/// `bytes`. The result is always canonical; any truncation, overflow,
/// out-of-range id, ordering violation, or leftover byte yields a typed
/// [`CodecError`].
pub fn decode_delta(bytes: &[u8], n: usize) -> Result<GraphDelta, CodecError> {
    let mut input = bytes;
    let delta = GraphDelta {
        inserted: decode_edge_section(&mut input, n)?,
        removed: decode_edge_section(&mut input, n)?,
        woken: decode_node_section(&mut input, n)?,
        deactivated: decode_node_section(&mut input, n)?,
    };
    if !input.is_empty() {
        return Err(CodecError::TrailingBytes(input.len()));
    }
    Ok(delta)
}

// ---------------------------------------------------------------------------
// Log framing
// ---------------------------------------------------------------------------

/// Appends the log header (`DNDL` magic, version, universe size) to `out`.
pub fn write_log_header(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&LOG_MAGIC);
    out.push(LOG_VERSION);
    write_varint(out, n as u64);
}

/// Frames an encoded payload as one log record:
/// `varint len · payload · FNV-1a-64 LE`.
pub fn write_record(out: &mut Vec<u8>, payload: &[u8]) {
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
}

/// Streams framed [`GraphDelta`] records to a delta log file through a
/// fixed-size buffer, so recording arbitrarily many rounds costs `O(1)`
/// memory in the number of rounds.
pub struct DeltaLogWriter {
    file: File,
    n: usize,
    buf: Vec<u8>,
    records: u64,
    bytes_written: u64,
    max_buffered: usize,
    fsyncs: u64,
}

/// Flush threshold of [`DeltaLogWriter`]'s in-memory buffer.
const LOG_FLUSH_BYTES: usize = 64 * 1024;

/// Write-side statistics of a finished [`DeltaLogWriter`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Number of records appended.
    pub records: u64,
    /// Total bytes written to the file (header + records).
    pub bytes_written: u64,
    /// High-water mark of the in-memory buffer — the recorder's
    /// bounded-memory guarantee is `max_buffered ≤` flush threshold `+`
    /// one record.
    pub max_buffered: usize,
    /// Number of fsync (`sync_data`) calls issued.
    pub fsyncs: u64,
}

impl DeltaLogWriter {
    /// Creates (truncating) the log file at `path` for a universe of `n`
    /// nodes and writes the header.
    pub fn create(path: &Path, n: usize) -> Result<DeltaLogWriter, CodecError> {
        let file = File::create(path)?;
        let mut buf = Vec::with_capacity(LOG_FLUSH_BYTES + 1024);
        write_log_header(&mut buf, n);
        let max_buffered = buf.len();
        Ok(DeltaLogWriter {
            file,
            n,
            buf,
            records: 0,
            bytes_written: 0,
            max_buffered,
            fsyncs: 0,
        })
    }

    /// The universe size recorded in the header.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Encodes and appends one delta record. The delta must be canonical
    /// (see [`encode_delta`]).
    pub fn append(&mut self, delta: &GraphDelta) -> Result<(), CodecError> {
        let payload = encode_delta(delta, self.n)?;
        write_record(&mut self.buf, &payload);
        self.records += 1;
        self.max_buffered = self.max_buffered.max(self.buf.len());
        if self.buf.len() >= LOG_FLUSH_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), CodecError> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.bytes_written += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes buffered records and fsyncs the file.
    pub fn sync(&mut self) -> Result<(), CodecError> {
        self.flush()?;
        self.file.sync_data()?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Current write-side statistics (records, bytes, buffer high-water
    /// mark, fsyncs). Bytes still buffered are not yet counted as written.
    pub fn stats(&self) -> LogStats {
        LogStats {
            records: self.records,
            bytes_written: self.bytes_written,
            max_buffered: self.max_buffered,
            fsyncs: self.fsyncs,
        }
    }

    /// Flushes, fsyncs, and closes the log, returning final statistics.
    pub fn finish(mut self) -> Result<LogStats, CodecError> {
        self.sync()?;
        Ok(self.stats())
    }
}

/// Iterates the framed [`GraphDelta`] records of a delta log file,
/// validating each record's checksum before decoding it.
pub struct DeltaLogReader {
    reader: BufReader<File>,
    n: usize,
    remaining: u64,
    failed: bool,
}

impl DeltaLogReader {
    /// Opens the log at `path` and parses its header.
    pub fn open(path: &Path) -> Result<DeltaLogReader, CodecError> {
        let file = File::open(path)?;
        let remaining = file.metadata()?.len();
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 5];
        reader
            .read_exact(&mut magic)
            .map_err(|_| CodecError::BadMagic)?;
        if magic[..4] != LOG_MAGIC {
            return Err(CodecError::BadMagic);
        }
        if magic[4] != LOG_VERSION {
            return Err(CodecError::BadVersion(magic[4]));
        }
        let mut remaining = remaining - 5;
        let n = read_varint_io(&mut reader, &mut remaining)?;
        Ok(DeltaLogReader {
            reader,
            n: n as usize,
            remaining,
            failed: false,
        })
    }

    /// The universe size recorded in the header.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    fn next_record(&mut self) -> Result<Option<GraphDelta>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let len = read_varint_io(&mut self.reader, &mut self.remaining)?;
        // A corrupt length cannot allocate past the bytes actually left in
        // the file (payload + 8 checksum bytes must still fit).
        if len + 8 > self.remaining {
            return Err(CodecError::UnexpectedEof);
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload)?;
        let mut stored = [0u8; 8];
        self.reader.read_exact(&mut stored)?;
        self.remaining -= len + 8;
        let stored = u64::from_le_bytes(stored);
        let computed = fnv1a64(&payload);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }
        decode_delta(&payload, self.n).map(Some)
    }
}

impl Iterator for DeltaLogReader {
    type Item = Result<GraphDelta, CodecError>;

    fn next(&mut self) -> Option<Result<GraphDelta, CodecError>> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(delta)) => Some(Ok(delta)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads one varint from an IO reader, charging the consumed bytes against
/// `remaining`.
fn read_varint_io<R: Read>(reader: &mut R, remaining: &mut u64) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if *remaining == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        *remaining -= 1;
        let bits = u64::from(byte[0] & 0x7f);
        if shift >= 64 || (shift == 63 && bits > 1) {
            return Err(CodecError::VarintOverflow);
        }
        value |= bits << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Replays a delta log from the all-asleep empty graph on its header's `n`
/// nodes — record 0 is the initial state, so the result is the final
/// recorded graph.
pub fn replay_log(path: &Path) -> Result<Graph, CodecError> {
    let reader = DeltaLogReader::open(path)?;
    let mut g = Graph::new_all_asleep(reader.num_nodes());
    for delta in reader {
        delta?.apply(&mut g);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(
        ins: &[(usize, usize)],
        rem: &[(usize, usize)],
        wok: &[usize],
        dea: &[usize],
    ) -> GraphDelta {
        GraphDelta::from_changes(
            ins.iter().map(|&(a, b)| Edge::of(a, b)).collect(),
            rem.iter().map(|&(a, b)| Edge::of(a, b)).collect(),
            wok.iter().map(|&v| NodeId::new(v)).collect(),
            dea.iter().map(|&v| NodeId::new(v)).collect(),
        )
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_overflow_rejected() {
        let mut s: &[u8] = &[0xff; 11];
        assert!(matches!(
            read_varint(&mut s),
            Err(CodecError::VarintOverflow)
        ));
    }

    #[test]
    fn delta_payload_roundtrip() {
        let d = delta(
            &[(0, 1), (0, 5), (2, 3), (2, 9), (7, 8)],
            &[(1, 4)],
            &[0, 3, 9],
            &[5],
        );
        let bytes = encode_delta(&d, 10).unwrap();
        assert_eq!(decode_delta(&bytes, 10).unwrap(), d);
    }

    #[test]
    fn empty_delta_roundtrip() {
        let d = GraphDelta::default();
        let bytes = encode_delta(&d, 4).unwrap();
        assert_eq!(decode_delta(&bytes, 4).unwrap(), d);
        assert_eq!(bytes.len(), 4); // four empty sections, one byte each
    }

    #[test]
    fn non_canonical_input_rejected() {
        let unsorted = GraphDelta {
            inserted: vec![Edge::of(2, 3), Edge::of(0, 1)],
            ..GraphDelta::default()
        };
        assert!(matches!(
            encode_delta(&unsorted, 4),
            Err(CodecError::InvalidValue(_))
        ));
        let out_of_range = delta(&[(0, 7)], &[], &[], &[]);
        assert!(matches!(
            encode_delta(&out_of_range, 4),
            Err(CodecError::InvalidValue(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let d = delta(&[(0, 1)], &[], &[], &[]);
        let mut bytes = encode_delta(&d, 4).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_delta(&bytes, 4),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn writer_reader_roundtrip_with_stats() {
        let dir = std::env::temp_dir().join(format!("dynnet-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.dlog");
        let deltas = [
            delta(&[(0, 1), (1, 2)], &[], &[0, 1, 2], &[]),
            delta(&[(0, 3)], &[(0, 1)], &[3], &[]),
            GraphDelta::default(),
            delta(&[], &[(1, 2)], &[], &[2]),
        ];
        let mut w = DeltaLogWriter::create(&path, 4).unwrap();
        for d in &deltas {
            w.append(d).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.records, 4);
        assert!(stats.bytes_written > 0);
        assert_eq!(stats.fsyncs, 1);

        let r = DeltaLogReader::open(&path).unwrap();
        assert_eq!(r.num_nodes(), 4);
        let read: Vec<GraphDelta> = r.map(|d| d.unwrap()).collect();
        assert_eq!(read, deltas);

        let final_graph = replay_log(&path).unwrap();
        let mut expected = Graph::new_all_asleep(4);
        for d in &deltas {
            d.apply(&mut expected);
        }
        assert_eq!(final_graph, expected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_only_log_replays_to_all_asleep() {
        let dir = std::env::temp_dir().join(format!("dynnet-codec-h-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.dlog");
        let w = DeltaLogWriter::create(&path, 6).unwrap();
        w.finish().unwrap();
        let g = replay_log(&path).unwrap();
        assert_eq!(g, Graph::new_all_asleep(6));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let dir = std::env::temp_dir().join(format!("dynnet-codec-m-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dlog");
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(matches!(
            DeltaLogReader::open(&path),
            Err(CodecError::BadMagic)
        ));
        std::fs::write(&path, [b'D', b'N', b'D', b'L', 9, 4]).unwrap();
        assert!(matches!(
            DeltaLogReader::open(&path),
            Err(CodecError::BadVersion(9))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
