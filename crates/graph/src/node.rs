//! Node identifiers and undirected edges.
//!
//! The paper models a dynamic network over a fixed universe of `n` potential
//! nodes `V` (Section 2). We therefore use dense integer identifiers
//! [`NodeId`] in the range `0..n`, which lets every per-node data structure be
//! a flat vector indexed by the id.

use std::fmt;

/// Identifier of a node in the potential node universe `V`.
///
/// Node ids are dense (`0..n`), which makes them usable as vector indices via
/// [`NodeId::index`]. The upper bound `n` is globally known to all nodes, as
/// assumed by the paper (Section 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(id: usize) -> Self {
        NodeId(id as u32)
    }

    /// Returns the id as a `usize` index suitable for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId::new(v)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An undirected edge `{u, v}` stored in canonical order (`min`, `max`).
///
/// Canonicalization makes `Edge` usable as a hash-map key without worrying
/// about the orientation in which the edge was created, and guarantees
/// `Edge::new(u, v) == Edge::new(v, u)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// The smaller endpoint.
    pub u: NodeId,
    /// The larger endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Creates a canonical undirected edge between `a` and `b`.
    ///
    /// # Panics
    /// Panics if `a == b`; the graphs in this crate are simple (no loops),
    /// matching Definition 2.2 of the paper.
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert!(a != b, "self-loops are not allowed in simple graphs");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Creates an edge from raw indices.
    #[inline]
    pub fn of(a: usize, b: usize) -> Self {
        Edge::new(NodeId::new(a), NodeId::new(b))
    }

    /// Returns both endpoints as a tuple `(min, max)`.
    #[inline]
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }

    /// Returns the endpoint opposite to `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            // INVARIANT: documented caller contract (`# Panics` above) —
            // `x` must be an endpoint; any other call is a logic bug.
            panic!("{x} is not an endpoint of {self:?}")
        }
    }

    /// Returns `true` if `x` is one of the two endpoints.
    #[inline]
    pub fn contains(self, x: NodeId) -> bool {
        x == self.u || x == self.v
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.u, self.v)
    }
}

impl From<(usize, usize)> for Edge {
    fn from((a, b): (usize, usize)) -> Self {
        Edge::of(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, NodeId::from(42usize));
        assert_eq!(v, NodeId::from(42u32));
        assert_eq!(format!("{v}"), "v42");
    }

    #[test]
    fn edge_is_canonical() {
        let e1 = Edge::of(3, 7);
        let e2 = Edge::of(7, 3);
        assert_eq!(e1, e2);
        assert_eq!(e1.u, NodeId::new(3));
        assert_eq!(e1.v, NodeId::new(7));
    }

    #[test]
    fn edge_other_and_contains() {
        let e = Edge::of(1, 2);
        assert_eq!(e.other(NodeId::new(1)), NodeId::new(2));
        assert_eq!(e.other(NodeId::new(2)), NodeId::new(1));
        assert!(e.contains(NodeId::new(1)));
        assert!(!e.contains(NodeId::new(5)));
    }

    #[test]
    #[should_panic]
    fn edge_rejects_self_loop() {
        let _ = Edge::of(4, 4);
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge::of(1, 2);
        let _ = e.other(NodeId::new(9));
    }

    #[test]
    fn edge_ordering_is_lexicographic() {
        let mut edges = vec![Edge::of(2, 3), Edge::of(0, 5), Edge::of(0, 1)];
        edges.sort();
        assert_eq!(edges, vec![Edge::of(0, 1), Edge::of(0, 5), Edge::of(2, 3)]);
    }
}
