//! Centralized graph algorithms used by the solution checkers, by baselines
//! and by tests: connected components, greedy coloring, greedy MIS/maximal
//! matching, and validity predicates for independent/dominating sets and
//! proper colorings.

use crate::graph::Graph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Connected components; returns for each node the id of its component
/// (smallest node id in the component) — inactive isolated nodes form their
/// own singleton components.
pub fn connected_components(g: &Graph) -> Vec<NodeId> {
    let n = g.num_nodes();
    // Every node starts as its own singleton root; BFS from the smallest
    // unvisited node then overwrites its whole component. No slot can be
    // left unassigned, so no `Option` (and no `expect`) is needed.
    let mut comp: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = NodeId::new(start);
        visited[start] = true;
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for w in g.neighbors(u) {
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    comp[w.index()] = root;
                    queue.push_back(w);
                }
            }
        }
    }
    comp
}

/// Number of connected components among *active* nodes.
pub fn num_components(g: &Graph) -> usize {
    let comp = connected_components(g);
    let mut roots: Vec<NodeId> = g.active_nodes().map(|v| comp[v.index()]).collect();
    roots.sort();
    roots.dedup();
    roots.len()
}

/// Sequential greedy (degree+1)-coloring in node-id order. Colors are
/// `1..=deg+1`; inactive nodes get color `0` meaning "no color needed".
/// Used as a centralized baseline and to construct extensions of partial
/// colorings in the checkers.
pub fn greedy_coloring(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut colors = vec![0usize; n];
    for i in 0..n {
        let v = NodeId::new(i);
        if !g.is_active(v) {
            continue;
        }
        let taken: Vec<usize> = g.neighbors(v).map(|w| colors[w.index()]).collect();
        let mut c = 1usize;
        while taken.contains(&c) {
            c += 1;
        }
        colors[i] = c;
    }
    colors
}

/// Extends a partial coloring greedily: nodes with `Some(c)` keep `c`,
/// uncolored active nodes receive the smallest color not used by any
/// (already-colored) neighbor. Returns `None` if the given partial coloring
/// is itself improper (two adjacent pre-colored nodes share a color).
pub fn greedy_extend_coloring(g: &Graph, partial: &[Option<usize>]) -> Option<Vec<usize>> {
    let n = g.num_nodes();
    assert_eq!(partial.len(), n);
    // Verify the pre-colored part is proper.
    for e in g.edges() {
        if let (Some(a), Some(b)) = (partial[e.u.index()], partial[e.v.index()]) {
            if a == b {
                return None;
            }
        }
    }
    let mut colors: Vec<usize> = partial.iter().map(|c| c.unwrap_or(0)).collect();
    for i in 0..n {
        let v = NodeId::new(i);
        if partial[i].is_some() || !g.is_active(v) {
            continue;
        }
        let taken: Vec<usize> = g
            .neighbors(v)
            .map(|w| colors[w.index()])
            .filter(|&c| c != 0)
            .collect();
        let mut c = 1usize;
        while taken.contains(&c) {
            c += 1;
        }
        colors[i] = c;
    }
    Some(colors)
}

/// Returns `true` if `colors` (0 = uncolored) is a proper coloring of the
/// colored nodes: no edge joins two nodes with the same non-zero color.
pub fn is_proper_coloring(g: &Graph, colors: &[usize]) -> bool {
    g.edges().all(|e| {
        let a = colors[e.u.index()];
        let b = colors[e.v.index()];
        a == 0 || b == 0 || a != b
    })
}

/// Returns the edges that violate properness (both endpoints colored equal).
pub fn coloring_conflicts(g: &Graph, colors: &[usize]) -> Vec<crate::node::Edge> {
    g.edges()
        .filter(|e| {
            let a = colors[e.u.index()];
            let b = colors[e.v.index()];
            a != 0 && a == b
        })
        .collect()
}

/// Sequential greedy maximal independent set in node-id order. Returns a
/// membership vector over the universe; inactive nodes are never members.
pub fn greedy_mis(g: &Graph) -> Vec<bool> {
    let n = g.num_nodes();
    let mut in_mis = vec![false; n];
    let mut blocked = vec![false; n];
    for i in 0..n {
        let v = NodeId::new(i);
        if !g.is_active(v) || blocked[i] {
            continue;
        }
        in_mis[i] = true;
        for w in g.neighbors(v) {
            blocked[w.index()] = true;
        }
    }
    in_mis
}

/// Returns `true` if `set` is an independent set of `g`.
pub fn is_independent_set(g: &Graph, set: &[bool]) -> bool {
    g.edges().all(|e| !(set[e.u.index()] && set[e.v.index()]))
}

/// Returns `true` if `set` dominates every active node of `g`: each active
/// node is in the set or has a neighbor in the set.
pub fn is_dominating_set(g: &Graph, set: &[bool]) -> bool {
    g.active_nodes()
        .all(|v| set[v.index()] || g.neighbors(v).any(|w| set[w.index()]))
}

/// Returns `true` if `set` is a *maximal* independent set of `g` (independent
/// and dominating over the active nodes).
pub fn is_maximal_independent_set(g: &Graph, set: &[bool]) -> bool {
    is_independent_set(g, set) && is_dominating_set(g, set)
}

/// Greedy maximal matching (in canonical edge order); returns matched edges.
pub fn greedy_maximal_matching(g: &Graph) -> Vec<crate::node::Edge> {
    let mut matched = vec![false; g.num_nodes()];
    let mut out = Vec::new();
    for e in g.edges() {
        if !matched[e.u.index()] && !matched[e.v.index()] {
            matched[e.u.index()] = true;
            matched[e.v.index()] = true;
            out.push(e);
        }
    }
    out
}

/// Number of distinct non-zero colors used by a coloring vector.
pub fn colors_used(colors: &[usize]) -> usize {
    let mut cs: Vec<usize> = colors.iter().copied().filter(|&c| c != 0).collect();
    cs.sort_unstable();
    cs.dedup();
    cs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Edge;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| Edge::of(i, (i + 1) % n)))
    }

    #[test]
    fn components_of_two_paths() {
        let g = Graph::from_edges(6, [Edge::of(0, 1), Edge::of(1, 2), Edge::of(4, 5)]);
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[4]);
        assert_eq!(num_components(&g), 3, "two paths plus the isolated node 3");
    }

    #[test]
    fn greedy_coloring_is_proper_and_degree_bounded() {
        let g = cycle(7);
        let colors = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        for v in g.active_nodes() {
            let c = colors[v.index()];
            assert!(c >= 1 && c <= g.degree(v) + 1);
        }
        assert!(colors_used(&colors) <= 3);
    }

    #[test]
    fn greedy_extend_respects_precoloring() {
        let g = cycle(5);
        let mut partial = vec![None; 5];
        partial[0] = Some(2);
        partial[2] = Some(1);
        let full = greedy_extend_coloring(&g, &partial).expect("extendable");
        assert_eq!(full[0], 2);
        assert_eq!(full[2], 1);
        assert!(is_proper_coloring(&g, &full));
        assert!(full.iter().all(|&c| c != 0));
    }

    #[test]
    fn greedy_extend_rejects_improper_precoloring() {
        let g = Graph::from_edges(2, [Edge::of(0, 1)]);
        let partial = vec![Some(1), Some(1)];
        assert!(greedy_extend_coloring(&g, &partial).is_none());
    }

    #[test]
    fn conflicts_detected() {
        let g = Graph::from_edges(3, [Edge::of(0, 1), Edge::of(1, 2)]);
        let colors = vec![1, 1, 2];
        assert!(!is_proper_coloring(&g, &colors));
        assert_eq!(coloring_conflicts(&g, &colors), vec![Edge::of(0, 1)]);
        let partial = vec![1, 0, 1];
        assert!(
            is_proper_coloring(&g, &partial),
            "uncolored node can't conflict"
        );
    }

    #[test]
    fn greedy_mis_is_maximal() {
        for n in [1usize, 2, 5, 8, 13] {
            let g = cycle(n.max(3));
            let mis = greedy_mis(&g);
            assert!(is_maximal_independent_set(&g, &mis));
        }
    }

    #[test]
    fn mis_checkers() {
        let g = Graph::from_edges(4, [Edge::of(0, 1), Edge::of(1, 2), Edge::of(2, 3)]);
        let good = vec![true, false, true, false];
        assert!(is_independent_set(&g, &good));
        assert!(is_dominating_set(&g, &good));
        assert!(is_maximal_independent_set(&g, &good));
        let not_ind = vec![true, true, false, false];
        assert!(!is_independent_set(&g, &not_ind));
        let not_dom = vec![true, false, false, false];
        assert!(!is_dominating_set(&g, &not_dom));
    }

    #[test]
    fn dominating_set_ignores_inactive_nodes() {
        let mut g = Graph::from_edges(3, [Edge::of(0, 1)]);
        g.deactivate(NodeId::new(2));
        let set = vec![true, false, false];
        assert!(is_dominating_set(&g, &set));
    }

    #[test]
    fn maximal_matching_is_maximal() {
        let g = cycle(6);
        let m = greedy_maximal_matching(&g);
        let mut matched = [false; 6];
        for e in &m {
            assert!(!matched[e.u.index()] && !matched[e.v.index()], "matching");
            matched[e.u.index()] = true;
            matched[e.v.index()] = true;
        }
        for e in g.edges() {
            assert!(
                matched[e.u.index()] || matched[e.v.index()],
                "maximality: edge {e:?} could be added"
            );
        }
    }

    #[test]
    fn colors_used_counts_distinct() {
        assert_eq!(colors_used(&[0, 1, 2, 1, 0, 3]), 3);
        assert_eq!(colors_used(&[0, 0]), 0);
    }
}
