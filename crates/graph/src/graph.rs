//! The mutable, hash-based undirected simple graph used as the per-round
//! communication graph `G_r` and as the working representation inside the
//! adversaries.
//!
//! The node universe is fixed at construction (`0..n`); nodes are "active"
//! or "inactive" (asleep). This mirrors the paper's model where
//! `∅ = V_0 ⊆ V_1 ⊆ …` grows over time and a node leaving the network is
//! modeled by removing all of its incident edges while keeping it in the
//! universe (Section 2).

use crate::node::{Edge, NodeId};
use std::collections::BTreeSet;

/// An undirected simple graph on a fixed universe of `n` potential nodes.
///
/// Adjacency is stored as a sorted set per node (`BTreeSet`), which gives
/// deterministic iteration order — important for reproducible simulations —
/// at `O(log deg)` insertion/removal cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<BTreeSet<NodeId>>,
    active: Vec<bool>,
    num_edges: usize,
}

impl Graph {
    /// Creates an empty graph over `n` potential nodes; all nodes are active.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![BTreeSet::new(); n],
            active: vec![true; n],
            num_edges: 0,
        }
    }

    /// Creates an empty graph over `n` potential nodes with every node
    /// initially inactive (asleep), as in the asynchronous wake-up model
    /// where `V_0 = ∅`.
    pub fn new_all_asleep(n: usize) -> Self {
        Graph {
            n,
            adj: vec![BTreeSet::new(); n],
            active: vec![false; n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list over `n` nodes. All nodes are active.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut g = Graph::new(n);
        for e in edges {
            g.insert_edge(e.u, e.v);
        }
        g
    }

    /// Number of potential nodes `n` (the universe size known to all nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of currently active (awake) nodes.
    pub fn num_active(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Returns `true` if node `v` is active (awake).
    #[inline]
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v.index()]
    }

    /// Marks node `v` active (awake). Waking a node never removes edges.
    #[inline]
    pub fn activate(&mut self, v: NodeId) {
        self.active[v.index()] = true;
    }

    /// Marks node `v` inactive and removes all of its incident edges —
    /// the paper's model of a node leaving the network.
    pub fn deactivate(&mut self, v: NodeId) {
        let neighbors: Vec<NodeId> = self.adj[v.index()].iter().copied().collect();
        for u in neighbors {
            self.remove_edge(v, u);
        }
        self.active[v.index()] = false;
    }

    /// Iterator over all node ids in the universe, active or not.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// Iterator over the ids of active nodes.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).filter(|&i| self.active[i]).map(NodeId::new)
    }

    /// Returns `true` if the edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].contains(&v)
    }

    /// Inserts the edge `{u, v}`. Returns `true` if the edge was newly added.
    /// Inserting an edge implicitly activates both endpoints.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u != v, "self-loops are not allowed");
        assert!(
            u.index() < self.n && v.index() < self.n,
            "node out of range"
        );
        let added = self.adj[u.index()].insert(v);
        if added {
            self.adj[v.index()].insert(u);
            self.num_edges += 1;
            self.active[u.index()] = true;
            self.active[v.index()] = true;
        }
        added
    }

    /// Removes the edge `{u, v}`. Returns `true` if the edge was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = self.adj[u.index()].remove(&v);
        if removed {
            self.adj[v.index()].remove(&u);
            self.num_edges -= 1;
        }
        removed
    }

    /// Toggles the edge `{u, v}`: removes it if present, inserts it otherwise.
    /// Returns `true` if the edge is present after the call.
    pub fn toggle_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.has_edge(u, v) {
            self.remove_edge(u, v);
            false
        } else {
            self.insert_edge(u, v);
            true
        }
    }

    /// Degree of `v` in this graph.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|i| self.adj[i].len()).max().unwrap_or(0)
    }

    /// Average degree over active nodes (0.0 if no active node).
    pub fn avg_degree(&self) -> f64 {
        let active = self.num_active();
        if active == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / active as f64
        }
    }

    /// Iterator over the neighbors of `v` in deterministic (ascending) order.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v.index()].iter().copied()
    }

    /// Collects the neighbors of `v` into a vector.
    pub fn neighbors_vec(&self, v: NodeId) -> Vec<NodeId> {
        self.adj[v.index()].iter().copied().collect()
    }

    /// Iterator over all edges in canonical order (each edge reported once).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n).flat_map(move |i| {
            let u = NodeId::new(i);
            self.adj[i]
                .iter()
                .copied()
                .filter(move |&w| w > u)
                .map(move |w| Edge::new(u, w))
        })
    }

    /// Collects all edges into a vector (canonical order).
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Removes all edges but keeps node activity flags.
    pub fn clear_edges(&mut self) {
        for s in &mut self.adj {
            s.clear();
        }
        self.num_edges = 0;
    }

    /// Returns the subgraph induced by the node set `keep` (nodes outside the
    /// set lose all incident edges and become inactive). The node universe
    /// size is preserved so ids remain valid.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> Graph {
        let mut in_set = vec![false; self.n];
        for &v in keep {
            in_set[v.index()] = true;
        }
        let mut g = Graph::new_all_asleep(self.n);
        for &v in keep {
            if self.active[v.index()] {
                g.active[v.index()] = true;
            }
        }
        for e in self.edges() {
            if in_set[e.u.index()] && in_set[e.v.index()] {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }

    /// Edge-set intersection with `other` (same node universe required).
    pub fn intersection(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n, "graphs must share the node universe");
        let mut g = Graph::new_all_asleep(self.n);
        for i in 0..self.n {
            if self.active[i] && other.active[i] {
                g.active[i] = true;
            }
        }
        for e in self.edges() {
            if other.has_edge(e.u, e.v) {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }

    /// Edge-set union with `other` (same node universe required).
    ///
    /// Following Definition 2.1 the node set of the union graph is the
    /// *intersection* `V^∩T` of the node sets (nodes awake throughout), while
    /// the edge set is the union.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.n, other.n, "graphs must share the node universe");
        let mut g = Graph::new_all_asleep(self.n);
        for i in 0..self.n {
            if self.active[i] && other.active[i] {
                g.active[i] = true;
            }
        }
        for e in self.edges().chain(other.edges()) {
            g.insert_edge(e.u, e.v);
        }
        g
    }

    /// Symmetric difference of the edge sets: edges present in exactly one of
    /// the two graphs. Useful for measuring how much an adversary changed.
    pub fn edge_symmetric_difference(&self, other: &Graph) -> Vec<Edge> {
        let mut out = Vec::new();
        for e in self.edges() {
            if !other.has_edge(e.u, e.v) {
                out.push(e);
            }
        }
        for e in other.edges() {
            if !self.has_edge(e.u, e.v) {
                out.push(e);
            }
        }
        out
    }

    /// Returns `true` if both graphs have exactly the same edge set
    /// restricted to the given nodes (used for "locally static" checks).
    pub fn same_edges_on(&self, other: &Graph, nodes: &[NodeId]) -> bool {
        for &v in nodes {
            if self.adj[v.index()] != other.adj[v.index()] {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, [Edge::of(0, 1), Edge::of(1, 2)])
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_active(), 5);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edge_vec(), vec![]);
    }

    #[test]
    fn insert_and_remove_edges() {
        let mut g = Graph::new(4);
        assert!(g.insert_edge(NodeId::new(0), NodeId::new(1)));
        assert!(
            !g.insert_edge(NodeId::new(1), NodeId::new(0)),
            "duplicate insert is a no-op"
        );
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(g.remove_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.remove_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn toggle_edge_flips_presence() {
        let mut g = Graph::new(3);
        assert!(g.toggle_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.toggle_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path3();
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(
            g.neighbors_vec(NodeId::new(1)),
            vec![NodeId::new(0), NodeId::new(2)]
        );
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edges_are_reported_once_in_canonical_order() {
        let g = path3();
        assert_eq!(g.edge_vec(), vec![Edge::of(0, 1), Edge::of(1, 2)]);
    }

    #[test]
    fn deactivate_removes_incident_edges() {
        let mut g = path3();
        g.deactivate(NodeId::new(1));
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_active(NodeId::new(1)));
        assert_eq!(g.num_active(), 2);
    }

    #[test]
    fn inserting_edge_activates_endpoints() {
        let mut g = Graph::new_all_asleep(3);
        assert_eq!(g.num_active(), 0);
        g.insert_edge(NodeId::new(0), NodeId::new(2));
        assert!(g.is_active(NodeId::new(0)));
        assert!(g.is_active(NodeId::new(2)));
        assert!(!g.is_active(NodeId::new(1)));
    }

    #[test]
    fn intersection_and_union() {
        let g1 = Graph::from_edges(4, [Edge::of(0, 1), Edge::of(1, 2)]);
        let g2 = Graph::from_edges(4, [Edge::of(1, 2), Edge::of(2, 3)]);
        let gi = g1.intersection(&g2);
        let gu = g1.union(&g2);
        assert_eq!(gi.edge_vec(), vec![Edge::of(1, 2)]);
        assert_eq!(
            gu.edge_vec(),
            vec![Edge::of(0, 1), Edge::of(1, 2), Edge::of(2, 3)]
        );
    }

    #[test]
    fn symmetric_difference() {
        let g1 = Graph::from_edges(4, [Edge::of(0, 1), Edge::of(1, 2)]);
        let g2 = Graph::from_edges(4, [Edge::of(1, 2), Edge::of(2, 3)]);
        let mut d = g1.edge_symmetric_difference(&g2);
        d.sort();
        assert_eq!(d, vec![Edge::of(0, 1), Edge::of(2, 3)]);
    }

    #[test]
    fn induced_subgraph_keeps_universe_size() {
        let g = Graph::from_edges(5, [Edge::of(0, 1), Edge::of(1, 2), Edge::of(3, 4)]);
        let sub = g.induced_subgraph(&[NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(sub.num_nodes(), 5);
        assert_eq!(sub.edge_vec(), vec![Edge::of(0, 1), Edge::of(1, 2)]);
        assert!(!sub.is_active(NodeId::new(3)));
    }

    #[test]
    fn same_edges_on_detects_local_changes() {
        let g1 = Graph::from_edges(4, [Edge::of(0, 1), Edge::of(2, 3)]);
        let mut g2 = g1.clone();
        assert!(g1.same_edges_on(&g2, &[NodeId::new(0), NodeId::new(1)]));
        g2.insert_edge(NodeId::new(1), NodeId::new(2));
        assert!(!g1.same_edges_on(&g2, &[NodeId::new(1)]));
        assert!(g1.same_edges_on(&g2, &[NodeId::new(0)]));
    }

    #[test]
    fn clear_edges() {
        let mut g = path3();
        g.clear_edges();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_active(), 3);
    }
}
