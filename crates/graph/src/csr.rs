//! Compressed sparse row (CSR) snapshots of a [`Graph`], with incremental
//! in-place delta patching.
//!
//! The simulator hands read-only references to a CSR snapshot of the
//! communication graph to all nodes each round, which makes the per-round
//! send/receive phases embarrassingly parallel (no locks, pure reads) and
//! cache friendly. This is the hot data structure of the whole system.
//!
//! Historically a fresh snapshot was rebuilt from the adjacency-set [`Graph`]
//! every round — `O(n + m)` work even when the adversary flipped three
//! edges. The structure is now *incremental*: neighbor rows live in one
//! arena with per-row slack capacity, and [`CsrGraph::apply_delta`] patches
//! the affected rows in place in `O(|δ| · log deg + shift)` when the delta is
//! sparse, falling back to a full rebuild only past a density threshold.

use crate::dynamic::GraphDelta;
use crate::graph::Graph;
use crate::node::{Edge, NodeId};

/// How [`CsrGraph::apply_delta`] executed a delta — used by callers (the
/// simulator's perf counters, benchmarks) to assert that the steady-state
/// churn path never degenerates into full rebuilds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrApplyOutcome {
    /// The delta was sparse; only the affected neighbor rows were patched.
    Patched,
    /// The delta was patched in place, and afterwards the arena was
    /// compacted to reclaim dead slots left by row relocations — amortized
    /// maintenance, not a rebuild of the snapshot.
    Compacted,
    /// The delta was dense; the snapshot was rebuilt from scratch.
    Rebuilt,
}

/// A CSR (compressed sparse row) snapshot of an undirected graph, patchable
/// in place via [`CsrGraph::apply_delta`].
///
/// Neighbor rows are stored in one contiguous arena; row `v` occupies
/// `starts[v] .. starts[v] + caps[v]`, of which the first `lens[v]` slots are
/// live neighbors, sorted ascending. Rows that outgrow their capacity are
/// relocated to the end of the arena with doubled capacity (amortized `O(1)`
/// relocations per row); the dead slots left behind are reclaimed by an
/// occasional compaction once they dominate the arena.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    n: usize,
    starts: Vec<u32>,
    lens: Vec<u32>,
    caps: Vec<u32>,
    arena: Vec<NodeId>,
    active: Vec<bool>,
    num_edges: usize,
    /// Arena slots abandoned by row relocations (reclaimed on compaction).
    dead_slots: usize,
}

impl CsrGraph {
    /// Arena entry count below which full builds and compactions stay
    /// sequential: smaller arenas fit in cache anyway and the pool dispatch
    /// would dominate.
    const PARALLEL_ARENA_MIN: usize = 1 << 15;

    /// Builds a CSR snapshot from a mutable [`Graph`].
    ///
    /// Degrees are known up front (`Graph::degree` is `O(1)`), so the row
    /// layout is a prefix sum and large builds fill the arena *shard-local
    /// in parallel*: the rows are cut into contiguous row-aligned regions
    /// and each region is written by one worker, never sharing a region (or
    /// its cache lines) with another. Output is identical to the sequential
    /// fill — regions are ascending and rows are written in node order.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut starts = Vec::with_capacity(n);
        let mut lens = Vec::with_capacity(n);
        let mut total: usize = 0;
        for i in 0..n {
            starts.push(total as u32);
            let d = g.degree(NodeId::new(i));
            lens.push(d as u32);
            total += d;
        }
        if total < Self::PARALLEL_ARENA_MIN || rayon::effective_width() <= 1 {
            return Self::build(n, |v| g.is_active(v), |v, row| row.extend(g.neighbors(v)));
        }
        let mut arena = vec![NodeId(u32::MAX); total];
        let (arena_bounds, node_bounds) = region_cuts(lens.iter().map(|&l| l as usize), total);
        rayon::par_regions(&mut arena, &arena_bounds, |ri, _offset, region| {
            let mut pos = 0;
            for i in node_bounds[ri]..node_bounds[ri + 1] {
                for u in g.neighbors(NodeId::new(i)) {
                    region[pos] = u;
                    pos += 1;
                }
            }
        });
        CsrGraph {
            n,
            starts,
            caps: lens.clone(),
            lens,
            arena,
            active: (0..n).map(|i| g.is_active(NodeId::new(i))).collect(),
            num_edges: total / 2,
            dead_slots: 0,
        }
    }

    /// Builds a CSR snapshot of the subgraph of `g` induced by the nodes for
    /// which `keep` returns `true`: kept nodes retain their activity flag and
    /// their edges to other kept nodes; dropped nodes become inactive and
    /// isolated. This is the sleeper-pruning primitive of the simulator — it
    /// replaces the old "clone the whole `Graph`, deactivate the sleepers,
    /// snapshot the clone" dance with a single direct construction.
    pub fn from_graph_filtered(g: &Graph, keep: impl Fn(NodeId) -> bool) -> Self {
        Self::build(
            g.num_nodes(),
            |v| g.is_active(v) && keep(v),
            |v, row| {
                if keep(v) {
                    row.extend(g.neighbors(v).filter(|&u| keep(u)));
                }
            },
        )
    }

    fn build(
        n: usize,
        active: impl Fn(NodeId) -> bool,
        fill_row: impl Fn(NodeId, &mut Vec<NodeId>),
    ) -> Self {
        let mut starts = Vec::with_capacity(n);
        let mut lens = Vec::with_capacity(n);
        let mut arena: Vec<NodeId> = Vec::new();
        for i in 0..n {
            let v = NodeId::new(i);
            starts.push(arena.len() as u32);
            fill_row(v, &mut arena);
            lens.push(arena.len() as u32 - starts[i]);
        }
        let num_edges = arena.len() / 2;
        CsrGraph {
            n,
            starts,
            caps: lens.clone(),
            lens,
            arena,
            active: (0..n).map(|i| active(NodeId::new(i))).collect(),
            num_edges,
            dead_slots: 0,
        }
    }

    /// Builds an empty snapshot over `n` inactive nodes.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            n,
            starts: vec![0; n],
            lens: vec![0; n],
            caps: vec![0; n],
            arena: Vec::new(),
            active: vec![false; n],
            num_edges: 0,
            dead_slots: 0,
        }
    }

    /// Number of potential nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if node `v` is active in this snapshot.
    #[inline]
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.lens[v.index()] as usize
    }

    /// Neighbors of `v` as a sorted slice.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        let s = self.starts[i] as usize;
        &self.arena[s..s + self.lens[i] as usize]
    }

    /// Returns `true` if the edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// Iterator over active node ids.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).filter(|&i| self.active[i]).map(NodeId::new)
    }

    /// Iterator over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&w| w > u)
                .map(move |w| Edge::new(u, w))
        })
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).max().unwrap_or(0)
    }

    /// Converts the snapshot back into a mutable [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new_all_asleep(self.n);
        for i in 0..self.n {
            if self.active[i] {
                g.activate(NodeId::new(i));
            }
        }
        for e in self.edges() {
            g.insert_edge(e.u, e.v);
        }
        g
    }

    /// Applies a round's [`GraphDelta`] in place, mirroring
    /// [`GraphDelta::apply`] on [`Graph`]: woken nodes are activated, edges
    /// are inserted (activating their endpoints), then removed, then
    /// deactivated nodes lose their remaining incident edges. Changes that
    /// are already in effect (inserting a present edge, removing an absent
    /// one) are no-ops, so loosely-specified deltas are safe.
    ///
    /// Sparse deltas patch only the affected rows; a delta whose edge-change
    /// count exceeds [`CsrGraph::REBUILD_THRESHOLD_FRACTION`] of the live
    /// entries triggers a full rebuild instead (at that density a rebuild is
    /// cheaper than per-edge patching). The returned [`CsrApplyOutcome`]
    /// says which path ran.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> CsrApplyOutcome {
        let live = 2 * self.num_edges + self.n;
        if delta.num_edge_changes() * Self::REBUILD_THRESHOLD_FRACTION > live {
            let mut g = self.to_graph();
            delta.apply(&mut g);
            *self = CsrGraph::from_graph(&g);
            return CsrApplyOutcome::Rebuilt;
        }
        for &v in &delta.woken {
            self.active[v.index()] = true;
        }
        for e in &delta.inserted {
            self.insert_edge(e.u, e.v);
        }
        for e in &delta.removed {
            self.remove_edge(e.u, e.v);
        }
        for &v in &delta.deactivated {
            self.deactivate(v);
        }
        if self.dead_slots > self.arena.len() / 2 && self.arena.len() > 4096 {
            self.compact();
            return CsrApplyOutcome::Compacted;
        }
        CsrApplyOutcome::Patched
    }

    /// A delta denser than `live_entries / REBUILD_THRESHOLD_FRACTION` edge
    /// changes is applied by full rebuild rather than per-row patching.
    pub const REBUILD_THRESHOLD_FRACTION: usize = 4;

    /// Inserts the edge `{u, v}`, activating both endpoints. Returns `true`
    /// if the edge was newly added.
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        debug_assert!(u != v, "self-loops are not allowed");
        if self.has_edge(u, v) {
            return false;
        }
        self.insert_into_row(u, v);
        self.insert_into_row(v, u);
        self.active[u.index()] = true;
        self.active[v.index()] = true;
        self.num_edges += 1;
        true
    }

    /// Removes the edge `{u, v}`. Returns `true` if the edge was present.
    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.remove_from_row(u, v) {
            return false;
        }
        self.remove_from_row(v, u);
        self.num_edges -= 1;
        true
    }

    /// Marks `v` inactive and removes all of its incident edges.
    fn deactivate(&mut self, v: NodeId) {
        let neighbors: Vec<NodeId> = self.neighbors(v).to_vec();
        for u in neighbors {
            self.remove_from_row(u, v);
            self.num_edges -= 1;
        }
        self.lens[v.index()] = 0;
        self.active[v.index()] = false;
    }

    fn insert_into_row(&mut self, row: NodeId, w: NodeId) {
        let i = row.index();
        let (len, cap) = (self.lens[i] as usize, self.caps[i] as usize);
        if len == cap {
            // Row is full: relocate it to the end of the arena with doubled
            // capacity, abandoning the old slots.
            let new_cap = (cap * 2).max(4);
            let old_start = self.starts[i] as usize;
            let new_start = self.arena.len();
            self.arena.extend_from_within(old_start..old_start + len);
            self.arena.resize(new_start + new_cap, NodeId(u32::MAX));
            self.starts[i] = new_start as u32;
            self.caps[i] = new_cap as u32;
            self.dead_slots += cap;
        }
        let start = self.starts[i] as usize;
        let len = self.lens[i] as usize;
        let pos = match self.arena[start..start + len].binary_search(&w) {
            Ok(_) => return, // already present (guarded by the caller)
            Err(p) => p,
        };
        self.arena
            .copy_within(start + pos..start + len, start + pos + 1);
        self.arena[start + pos] = w;
        self.lens[i] += 1;
    }

    fn remove_from_row(&mut self, row: NodeId, w: NodeId) -> bool {
        let i = row.index();
        let start = self.starts[i] as usize;
        let len = self.lens[i] as usize;
        let Ok(pos) = self.arena[start..start + len].binary_search(&w) else {
            return false;
        };
        self.arena
            .copy_within(start + pos + 1..start + len, start + pos);
        self.lens[i] -= 1;
        true
    }

    /// Rewrites the arena without the dead slots left behind by row
    /// relocations. Row capacities (the slack high-water marks) are kept so
    /// steady-state churn does not immediately re-trigger relocations.
    ///
    /// Large arenas compact *shard-local*: the new layout is cut into
    /// contiguous row-aligned regions and each region copies its own rows
    /// from the old arena — no two workers write the same region, and the
    /// resulting arena is identical to the sequential rewrite.
    fn compact(&mut self) {
        let total: usize = self.caps.iter().map(|&c| c as usize).sum();
        if total < Self::PARALLEL_ARENA_MIN || rayon::effective_width() <= 1 {
            let mut arena = Vec::with_capacity(total);
            for i in 0..self.n {
                let start = self.starts[i] as usize;
                let len = self.lens[i] as usize;
                let new_start = arena.len();
                arena.extend_from_slice(&self.arena[start..start + len]);
                arena.resize(new_start + self.caps[i] as usize, NodeId(u32::MAX));
                self.starts[i] = new_start as u32;
            }
            self.arena = arena;
            self.dead_slots = 0;
            return;
        }
        let mut new_starts = Vec::with_capacity(self.n);
        let mut acc: usize = 0;
        for &c in &self.caps {
            new_starts.push(acc as u32);
            acc += c as usize;
        }
        let mut arena = vec![NodeId(u32::MAX); total];
        let (arena_bounds, node_bounds) = region_cuts(self.caps.iter().map(|&c| c as usize), total);
        let (old_arena, old_starts) = (&self.arena, &self.starts);
        let (lens, caps) = (&self.lens, &self.caps);
        rayon::par_regions(&mut arena, &arena_bounds, |ri, _offset, region| {
            let mut pos = 0;
            for i in node_bounds[ri]..node_bounds[ri + 1] {
                let (s, l) = (old_starts[i] as usize, lens[i] as usize);
                region[pos..pos + l].copy_from_slice(&old_arena[s..s + l]);
                // Slack stays the u32::MAX fill from initialization.
                pos += caps[i] as usize;
            }
        });
        self.starts = new_starts;
        self.arena = arena;
        self.dead_slots = 0;
    }
}

/// Cuts `n` rows (given by their arena span sizes, summing to `total`) into
/// contiguous row-aligned regions of roughly
/// `total / (effective_width × chunk_factor)` arena entries each. Returns
/// `(arena_bounds, node_bounds)`: region `i` covers arena range
/// `arena_bounds[i]..arena_bounds[i + 1]` holding rows
/// `node_bounds[i]..node_bounds[i + 1]` — the shapes [`rayon::par_regions`]
/// expects. Rows larger than the target get a region of their own.
fn region_cuts(spans: impl Iterator<Item = usize>, total: usize) -> (Vec<usize>, Vec<usize>) {
    let regions = rayon::effective_width() * rayon::chunk_factor();
    let target = total.div_ceil(regions.max(1)).max(1);
    let mut arena_bounds = vec![0];
    let mut node_bounds = vec![0];
    let (mut offset, mut acc, mut n) = (0usize, 0usize, 0usize);
    for span in spans {
        if acc >= target {
            arena_bounds.push(offset);
            node_bounds.push(n);
            acc = 0;
        }
        offset += span;
        acc += span;
        n += 1;
    }
    arena_bounds.push(offset);
    node_bounds.push(n);
    (arena_bounds, node_bounds)
}

/// Semantic equality: same universe, same activity flags, same neighbor
/// rows — independent of arena layout (slack, relocation history).
impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.num_edges == other.num_edges
            && self.active == other.active
            && (0..self.n).all(|i| {
                let v = NodeId::new(i);
                self.neighbors(v) == other.neighbors(v)
            })
    }
}

impl Eq for CsrGraph {}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(
            5,
            [
                Edge::of(0, 1),
                Edge::of(0, 2),
                Edge::of(2, 3),
                Edge::of(3, 4),
            ],
        )
    }

    #[test]
    fn csr_matches_source_graph() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.num_edges(), 4);
        for v in g.nodes() {
            assert_eq!(c.degree(v), g.degree(v));
            assert_eq!(c.neighbors(v), g.neighbors_vec(v).as_slice());
        }
        assert_eq!(c.edges().collect::<Vec<_>>(), g.edge_vec());
    }

    #[test]
    fn csr_has_edge() {
        let c = CsrGraph::from_graph(&sample());
        assert!(c.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(c.has_edge(NodeId::new(2), NodeId::new(0)));
        assert!(!c.has_edge(NodeId::new(1), NodeId::new(4)));
    }

    #[test]
    fn csr_roundtrip_to_graph() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.to_graph(), g);
    }

    #[test]
    fn csr_empty() {
        let c = CsrGraph::empty(3);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.degree(NodeId::new(1)), 0);
        assert!(!c.is_active(NodeId::new(0)));
    }

    #[test]
    fn csr_preserves_activity() {
        let mut g = sample();
        g.deactivate(NodeId::new(4));
        let c = CsrGraph::from_graph(&g);
        assert!(!c.is_active(NodeId::new(4)));
        assert!(c.is_active(NodeId::new(0)));
        assert_eq!(c.active_nodes().count(), 4);
    }

    #[test]
    fn csr_max_degree() {
        let c = CsrGraph::from_graph(&sample());
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn csr_filtered_prunes_nodes() {
        let g = sample();
        let keep = |v: NodeId| v.index() != 2;
        let c = CsrGraph::from_graph_filtered(&g, keep);
        let mut pruned = g.clone();
        pruned.deactivate(NodeId::new(2));
        assert_eq!(c, CsrGraph::from_graph(&pruned));
        assert!(!c.is_active(NodeId::new(2)));
        assert_eq!(c.num_edges(), 2);
    }

    #[test]
    fn apply_delta_patches_edges() {
        let g = sample();
        let mut c = CsrGraph::from_graph(&g);
        let mut delta = GraphDelta::new();
        delta.insert(NodeId::new(1), NodeId::new(4));
        delta.remove(NodeId::new(0), NodeId::new(2));
        assert_eq!(c.apply_delta(&delta), CsrApplyOutcome::Patched);
        let expected = delta.materialize(&g);
        assert_eq!(c, CsrGraph::from_graph(&expected));
        assert_eq!(c.num_edges(), 4);
    }

    #[test]
    fn apply_delta_handles_activity() {
        let mut g = Graph::new_all_asleep(4);
        g.insert_edge(NodeId::new(0), NodeId::new(1));
        let mut c = CsrGraph::from_graph(&g);
        let mut delta = GraphDelta::new();
        delta.wake(NodeId::new(2));
        delta.deactivate(NodeId::new(0));
        c.apply_delta(&delta);
        let expected = delta.materialize(&g);
        assert_eq!(c, CsrGraph::from_graph(&expected));
        assert!(c.is_active(NodeId::new(2)));
        assert!(!c.is_active(NodeId::new(0)));
        assert_eq!(c.num_edges(), 0);
    }

    #[test]
    fn apply_delta_is_idempotent_for_noop_changes() {
        let g = sample();
        let mut c = CsrGraph::from_graph(&g);
        let mut delta = GraphDelta::new();
        delta.insert(NodeId::new(0), NodeId::new(1)); // already present
        delta.remove(NodeId::new(1), NodeId::new(4)); // already absent
        c.apply_delta(&delta);
        assert_eq!(c, CsrGraph::from_graph(&g));
    }

    #[test]
    fn dense_delta_triggers_rebuild() {
        let g = Graph::from_edges(4, [Edge::of(0, 1)]);
        let mut c = CsrGraph::from_graph(&g);
        let mut delta = GraphDelta::new();
        for (a, b) in [(0usize, 2usize), (0, 3), (1, 2), (1, 3), (2, 3)] {
            delta.insert(NodeId::new(a), NodeId::new(b));
        }
        assert_eq!(c.apply_delta(&delta), CsrApplyOutcome::Rebuilt);
        assert_eq!(c, CsrGraph::from_graph(&delta.materialize(&g)));
    }

    #[test]
    fn region_cuts_align_and_cover() {
        let spans = [5usize, 1, 0, 40, 3, 3, 3, 3, 9];
        let total: usize = spans.iter().sum();
        let (ab, nb) = region_cuts(spans.iter().copied(), total);
        assert_eq!(ab.first(), Some(&0));
        assert_eq!(ab.last(), Some(&total));
        assert_eq!(nb.first(), Some(&0));
        assert_eq!(nb.last(), Some(&spans.len()));
        assert_eq!(ab.len(), nb.len());
        assert!(ab.windows(2).all(|w| w[0] <= w[1]));
        // Every arena bound sits exactly on its node bound's row start.
        for (k, &row) in nb.iter().enumerate() {
            let row_start: usize = spans[..row].iter().sum();
            assert_eq!(ab[k], row_start, "cut {k} is row-aligned");
        }
    }

    #[test]
    fn large_build_matches_sequential_reference() {
        use rand::SeedableRng;
        // Big enough to cross PARALLEL_ARENA_MIN, so a multi-thread budget
        // takes the region-parallel fill; the filtered builder below always
        // uses the sequential path and serves as the reference.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let g = crate::generators::erdos_renyi_avg_degree(6_000, 12.0, &mut rng);
        let par = CsrGraph::from_graph(&g);
        let seq = CsrGraph::from_graph_filtered(&g, |_| true);
        assert!(par.arena.len() >= CsrGraph::PARALLEL_ARENA_MIN);
        assert_eq!(par, seq);
        assert_eq!(
            par.arena, seq.arena,
            "identical arena layout, not just semantics"
        );
        assert_eq!(par.starts, seq.starts);
    }

    #[test]
    fn large_compaction_preserves_rows() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(78);
        let n = 3_000;
        let mut g = crate::generators::erdos_renyi_avg_degree(n, 12.0, &mut rng);
        let mut c = CsrGraph::from_graph(&g);
        // Force many row relocations, then compact explicitly: the rewritten
        // arena must preserve every row regardless of the region layout.
        let mut delta = GraphDelta::new();
        for _ in 0..n {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !g.has_edge(NodeId::new(a), NodeId::new(b)) {
                delta.insert(NodeId::new(a), NodeId::new(b));
            }
        }
        delta.apply(&mut g);
        for e in &delta.inserted {
            c.insert_edge(e.u, e.v);
        }
        c.compact();
        assert_eq!(c.dead_slots, 0);
        assert_eq!(c, CsrGraph::from_graph(&g));
        // Capacities (slack high-water marks) survive compaction.
        assert!(c.caps.iter().zip(&c.lens).all(|(cap, len)| cap >= len));
    }

    #[test]
    fn repeated_patching_matches_from_scratch() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let n = 40;
        let mut g = Graph::new(n);
        let mut c = CsrGraph::from_graph(&g);
        for _ in 0..200 {
            let mut delta = GraphDelta::new();
            for _ in 0..rng.gen_range(1..6) {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a == b {
                    continue;
                }
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                if g.has_edge(a, b) {
                    delta.remove(a, b);
                } else {
                    delta.insert(a, b);
                }
            }
            delta.apply(&mut g);
            c.apply_delta(&delta);
            assert_eq!(c, CsrGraph::from_graph(&g));
            assert_eq!(c.num_edges(), g.num_edges());
        }
    }
}
