//! Compressed sparse row (CSR) snapshots of a [`Graph`].
//!
//! The simulator takes a CSR snapshot of the communication graph once per
//! round and hands read-only references to all nodes, which makes the
//! per-round send/receive phases embarrassingly parallel (no locks, pure
//! reads) and cache friendly. This is the hot data structure of the whole
//! system.

use crate::graph::Graph;
use crate::node::{Edge, NodeId};

/// An immutable CSR (compressed sparse row) snapshot of an undirected graph.
///
/// Neighbor lists are stored in one contiguous vector; `offsets[v]..offsets[v+1]`
/// delimits the neighbors of node `v`, sorted ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
    active: Vec<bool>,
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a CSR snapshot from a mutable [`Graph`].
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0u32);
        for i in 0..n {
            let v = NodeId::new(i);
            neighbors.extend(g.neighbors(v));
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph {
            n,
            offsets,
            neighbors,
            active: (0..n).map(|i| g.is_active(NodeId::new(i))).collect(),
            num_edges: g.num_edges(),
        }
    }

    /// Builds an empty snapshot over `n` inactive nodes.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            n,
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            active: vec![false; n],
            num_edges: 0,
        }
    }

    /// Number of potential nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if node `v` was active when the snapshot was taken.
    #[inline]
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Neighbors of `v` as a sorted slice.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Returns `true` if the edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// Iterator over active node ids.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).filter(|&i| self.active[i]).map(NodeId::new)
    }

    /// Iterator over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&w| w > u)
                .map(move |w| Edge::new(u, w))
        })
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|i| self.degree(NodeId::new(i)))
            .max()
            .unwrap_or(0)
    }

    /// Converts the snapshot back into a mutable [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new_all_asleep(self.n);
        for i in 0..self.n {
            if self.active[i] {
                g.activate(NodeId::new(i));
            }
        }
        for e in self.edges() {
            g.insert_edge(e.u, e.v);
        }
        g
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(
            5,
            [
                Edge::of(0, 1),
                Edge::of(0, 2),
                Edge::of(2, 3),
                Edge::of(3, 4),
            ],
        )
    }

    #[test]
    fn csr_matches_source_graph() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.num_edges(), 4);
        for v in g.nodes() {
            assert_eq!(c.degree(v), g.degree(v));
            assert_eq!(c.neighbors(v), g.neighbors_vec(v).as_slice());
        }
        assert_eq!(c.edges().collect::<Vec<_>>(), g.edge_vec());
    }

    #[test]
    fn csr_has_edge() {
        let c = CsrGraph::from_graph(&sample());
        assert!(c.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(c.has_edge(NodeId::new(2), NodeId::new(0)));
        assert!(!c.has_edge(NodeId::new(1), NodeId::new(4)));
    }

    #[test]
    fn csr_roundtrip_to_graph() {
        let g = sample();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.to_graph(), g);
    }

    #[test]
    fn csr_empty() {
        let c = CsrGraph::empty(3);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.degree(NodeId::new(1)), 0);
        assert!(!c.is_active(NodeId::new(0)));
    }

    #[test]
    fn csr_preserves_activity() {
        let mut g = sample();
        g.deactivate(NodeId::new(4));
        let c = CsrGraph::from_graph(&g);
        assert!(!c.is_active(NodeId::new(4)));
        assert!(c.is_active(NodeId::new(0)));
        assert_eq!(c.active_nodes().count(), 4);
    }

    #[test]
    fn csr_max_degree() {
        let c = CsrGraph::from_graph(&sample());
        assert_eq!(c.max_degree(), 2);
    }
}
