//! # dynnet-graph
//!
//! Graph substrate for the `dynnet` reproduction of *"Local Distributed
//! Algorithms in Highly Dynamic Networks"* (Bamberger, Kuhn, Maus).
//!
//! The crate provides:
//!
//! * [`NodeId`] / [`Edge`] — dense node identifiers over a fixed universe of
//!   `n` potential nodes, canonical undirected edges (Section 2 of the paper).
//! * [`Graph`] — the mutable per-round communication graph `G_r`, with node
//!   activity flags modelling asynchronous wake-up.
//! * [`CsrGraph`] — compressed-sparse-row snapshots used by the simulator's
//!   parallel round execution, patchable in place from a [`GraphDelta`]
//!   (`O(|δ|)` per round on the sparse-churn path).
//! * [`GraphWindow`] — delta-native sliding window exposing the
//!   `T`-intersection graph `G^∩T_r` and `T`-union graph `G^∪T_r`
//!   (Definition 2.1), plus "locally static" neighborhood checks. Every push
//!   returns a [`WindowUpdate`] — the round's window-membership events
//!   (tight delta, edges aging out of the union, runs maturing into the
//!   intersection) that incremental consumers such as the `O(|δ| + churn)`
//!   T-dynamic verifier in `dynnet-core` patch their state from.
//! * [`GraphDelta`] / [`DynamicGraphTrace`] — the per-round change records
//!   that are the native currency of the round pipeline, and recorded
//!   dynamic graph sequences for replaying identical adversarial schedules
//!   across algorithms.
//! * [`codec`] — the compact varint wire format for deltas and the
//!   append-only delta log files behind the durable trace store.
//! * [`generators`] — deterministic and random graph families.
//! * [`algo`] — centralized algorithms and validity predicates used by the
//!   solution checkers and baselines.
//! * [`neighborhood`] — `N^α(v)` balls and local-view comparisons.
//! * [`export`] — DOT / edge-list / JSON output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod codec;
pub mod csr;
pub mod dynamic;
pub mod export;
pub mod generators;
pub mod graph;
pub mod neighborhood;
pub mod node;
pub mod window;

pub use codec::{CodecError, DeltaLogReader, DeltaLogWriter, LogStats};
pub use csr::{CsrApplyOutcome, CsrGraph};
pub use dynamic::{DynamicGraphTrace, GraphDelta};
pub use graph::Graph;
pub use node::{Edge, NodeId};
pub use window::{GraphWindow, QueueDepths, WindowUpdate};

#[cfg(test)]
mod randomized_tests {
    //! Seeded randomized property checks (previously proptest-based; rewritten
    //! over the workspace RNG so they run in the offline build environment).

    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    const CASES: usize = 64;

    /// A small random graph over 2..max_n nodes with up to 2n random edges.
    fn random_graph(max_n: usize, rng: &mut ChaCha8Rng) -> Graph {
        let n = rng.gen_range(2..max_n);
        let mut g = Graph::new(n);
        for _ in 0..rng.gen_range(0..2 * n) {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                g.insert_edge(NodeId::new(a), NodeId::new(b));
            }
        }
        g
    }

    #[test]
    fn edge_count_consistent_with_iteration() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..CASES {
            let g = random_graph(20, &mut rng);
            assert_eq!(g.edges().count(), g.num_edges());
            let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
            assert_eq!(degree_sum, 2 * g.num_edges());
        }
    }

    #[test]
    fn csr_snapshot_equivalent() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..CASES {
            let g = random_graph(20, &mut rng);
            let c = CsrGraph::from_graph(&g);
            assert_eq!(c.num_edges(), g.num_edges());
            for v in g.nodes() {
                assert_eq!(c.degree(v), g.degree(v));
            }
            assert_eq!(c.to_graph(), g);
        }
    }

    #[test]
    fn greedy_coloring_proper_and_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..CASES {
            let g = random_graph(20, &mut rng);
            let colors = algo::greedy_coloring(&g);
            assert!(algo::is_proper_coloring(&g, &colors));
            for v in g.active_nodes() {
                assert!(colors[v.index()] >= 1);
                assert!(colors[v.index()] <= g.degree(v) + 1);
            }
        }
    }

    #[test]
    fn greedy_mis_maximal() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..CASES {
            let g = random_graph(20, &mut rng);
            let mis = algo::greedy_mis(&g);
            assert!(algo::is_maximal_independent_set(&g, &mis));
        }
    }

    #[test]
    fn window_incremental_matches_bruteforce() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..CASES {
            let num_graphs = rng.gen_range(1..8);
            let window = rng.gen_range(1..5usize);
            let graphs: Vec<Graph> = (0..num_graphs)
                .map(|_| random_graph(10, &mut rng))
                .collect();
            // All graphs must share a universe; re-map them onto the max n.
            let n = graphs.iter().map(|g| g.num_nodes()).max().unwrap();
            let mut w = GraphWindow::new(n, window);
            for g in &graphs {
                let mut resized = Graph::new(n);
                for e in g.edges() {
                    resized.insert_edge(e.u, e.v);
                }
                w.push(&resized);
                assert_eq!(
                    w.intersection_graph().edge_vec(),
                    w.intersection_graph_bruteforce().edge_vec()
                );
                assert_eq!(
                    w.union_graph().edge_vec(),
                    w.union_graph_bruteforce().edge_vec()
                );
            }
        }
    }

    #[test]
    fn union_contains_intersection() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..CASES {
            let num_graphs = rng.gen_range(1..6);
            let graphs: Vec<Graph> = (0..num_graphs)
                .map(|_| random_graph(10, &mut rng))
                .collect();
            let n = graphs.iter().map(|g| g.num_nodes()).max().unwrap();
            let mut w = GraphWindow::new(n, 4);
            for g in &graphs {
                let mut resized = Graph::new(n);
                for e in g.edges() {
                    resized.insert_edge(e.u, e.v);
                }
                w.push(&resized);
            }
            let inter = w.intersection_graph();
            let uni = w.union_graph();
            for e in inter.edges() {
                assert!(uni.has_edge(e.u, e.v), "G^∩T ⊆ G^∪T must hold");
            }
            // Current graph lies between them edge-wise.
            let cur = w.current().unwrap();
            for e in inter.edges() {
                assert!(cur.has_edge(e.u, e.v), "G^∩T ⊆ G_r");
            }
            for e in cur.edges() {
                assert!(uni.has_edge(e.u, e.v), "G_r ⊆ G^∪T");
            }
        }
    }

    #[test]
    fn delta_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..CASES {
            let g1 = random_graph(15, &mut rng);
            let g2 = random_graph(15, &mut rng);
            let n = g1.num_nodes().max(g2.num_nodes());
            let mut a = Graph::new(n);
            for e in g1.edges() {
                a.insert_edge(e.u, e.v);
            }
            let mut b = Graph::new(n);
            for e in g2.edges() {
                b.insert_edge(e.u, e.v);
            }
            let d = GraphDelta::between(&a, &b);
            let mut x = a.clone();
            d.apply(&mut x);
            assert_eq!(x.edge_vec(), b.edge_vec());
        }
    }

    #[test]
    fn greedy_extension_of_valid_partial_is_proper() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..CASES {
            let g = random_graph(15, &mut rng);
            // Build a partial coloring from the greedy coloring restricted by
            // a random mask.
            let full = algo::greedy_coloring(&g);
            let partial: Vec<Option<usize>> = (0..g.num_nodes())
                .map(|i| {
                    if rng.gen_bool(0.5) {
                        Some(full[i]).filter(|&c| c != 0)
                    } else {
                        None
                    }
                })
                .collect();
            let ext = algo::greedy_extend_coloring(&g, &partial)
                .expect("restriction of a proper coloring is extendable");
            assert!(algo::is_proper_coloring(&g, &ext));
        }
    }
}
