//! # dynnet-graph
//!
//! Graph substrate for the `dynnet` reproduction of *"Local Distributed
//! Algorithms in Highly Dynamic Networks"* (Bamberger, Kuhn, Maus).
//!
//! The crate provides:
//!
//! * [`NodeId`] / [`Edge`] — dense node identifiers over a fixed universe of
//!   `n` potential nodes, canonical undirected edges (Section 2 of the paper).
//! * [`Graph`] — the mutable per-round communication graph `G_r`, with node
//!   activity flags modelling asynchronous wake-up.
//! * [`CsrGraph`] — immutable compressed-sparse-row snapshots used by the
//!   simulator's parallel round execution.
//! * [`GraphWindow`] — incrementally maintained sliding window exposing the
//!   `T`-intersection graph `G^∩T_r` and `T`-union graph `G^∪T_r`
//!   (Definition 2.1), plus "locally static" neighborhood checks.
//! * [`DynamicGraphTrace`] — recorded dynamic graph sequences for replaying
//!   identical adversarial schedules across algorithms.
//! * [`generators`] — deterministic and random graph families.
//! * [`algo`] — centralized algorithms and validity predicates used by the
//!   solution checkers and baselines.
//! * [`neighborhood`] — `N^α(v)` balls and local-view comparisons.
//! * [`export`] — DOT / edge-list / JSON output.

#![warn(missing_docs)]

pub mod algo;
pub mod csr;
pub mod dynamic;
pub mod export;
pub mod generators;
pub mod graph;
pub mod neighborhood;
pub mod node;
pub mod window;

pub use csr::CsrGraph;
pub use dynamic::{DynamicGraphTrace, GraphDelta};
pub use graph::Graph;
pub use node::{Edge, NodeId};
pub use window::GraphWindow;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy producing a small random graph as (n, edge list).
    fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
        (2usize..max_n).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n), 0..(2 * n)).prop_map(move |pairs| {
                let mut g = Graph::new(n);
                for (a, b) in pairs {
                    if a != b {
                        g.insert_edge(NodeId::new(a), NodeId::new(b));
                    }
                }
                g
            })
        })
    }

    proptest! {
        #[test]
        fn edge_count_consistent_with_iteration(g in arb_graph(20)) {
            prop_assert_eq!(g.edges().count(), g.num_edges());
            let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.num_edges());
        }

        #[test]
        fn csr_snapshot_equivalent(g in arb_graph(20)) {
            let c = CsrGraph::from_graph(&g);
            prop_assert_eq!(c.num_edges(), g.num_edges());
            for v in g.nodes() {
                prop_assert_eq!(c.degree(v), g.degree(v));
            }
            prop_assert_eq!(c.to_graph(), g);
        }

        #[test]
        fn greedy_coloring_proper_and_bounded(g in arb_graph(20)) {
            let colors = algo::greedy_coloring(&g);
            prop_assert!(algo::is_proper_coloring(&g, &colors));
            for v in g.active_nodes() {
                prop_assert!(colors[v.index()] >= 1);
                prop_assert!(colors[v.index()] <= g.degree(v) + 1);
            }
        }

        #[test]
        fn greedy_mis_maximal(g in arb_graph(20)) {
            let mis = algo::greedy_mis(&g);
            prop_assert!(algo::is_maximal_independent_set(&g, &mis));
        }

        #[test]
        fn window_incremental_matches_bruteforce(
            graphs in proptest::collection::vec(arb_graph(10), 1..8),
            window in 1usize..5,
        ) {
            // All graphs must share a universe; re-map them onto the max n.
            let n = graphs.iter().map(|g| g.num_nodes()).max().unwrap();
            let mut w = GraphWindow::new(n, window);
            for g in &graphs {
                let mut resized = Graph::new(n);
                for e in g.edges() {
                    resized.insert_edge(e.u, e.v);
                }
                w.push(&resized);
                prop_assert_eq!(
                    w.intersection_graph().edge_vec(),
                    w.intersection_graph_bruteforce().edge_vec()
                );
                prop_assert_eq!(
                    w.union_graph().edge_vec(),
                    w.union_graph_bruteforce().edge_vec()
                );
            }
        }

        #[test]
        fn union_contains_intersection(
            graphs in proptest::collection::vec(arb_graph(10), 1..6),
        ) {
            let n = graphs.iter().map(|g| g.num_nodes()).max().unwrap();
            let mut w = GraphWindow::new(n, 4);
            for g in &graphs {
                let mut resized = Graph::new(n);
                for e in g.edges() {
                    resized.insert_edge(e.u, e.v);
                }
                w.push(&resized);
            }
            let inter = w.intersection_graph();
            let uni = w.union_graph();
            for e in inter.edges() {
                prop_assert!(uni.has_edge(e.u, e.v), "G^∩T ⊆ G^∪T must hold");
            }
            // Current graph lies between them edge-wise.
            let cur = w.current().unwrap();
            for e in inter.edges() {
                prop_assert!(cur.has_edge(e.u, e.v), "G^∩T ⊆ G_r");
            }
            for e in cur.edges() {
                prop_assert!(uni.has_edge(e.u, e.v), "G_r ⊆ G^∪T");
            }
        }

        #[test]
        fn delta_roundtrip(g1 in arb_graph(15), g2 in arb_graph(15)) {
            let n = g1.num_nodes().max(g2.num_nodes());
            let mut a = Graph::new(n);
            for e in g1.edges() { a.insert_edge(e.u, e.v); }
            let mut b = Graph::new(n);
            for e in g2.edges() { b.insert_edge(e.u, e.v); }
            let d = GraphDelta::between(&a, &b);
            let mut x = a.clone();
            d.apply(&mut x);
            prop_assert_eq!(x.edge_vec(), b.edge_vec());
        }

        #[test]
        fn greedy_extension_of_valid_partial_is_proper(
            g in arb_graph(15),
            mask in proptest::collection::vec(any::<bool>(), 15),
        ) {
            // Build a partial coloring from the greedy coloring restricted by the mask.
            let full = algo::greedy_coloring(&g);
            let partial: Vec<Option<usize>> = (0..g.num_nodes())
                .map(|i| if *mask.get(i).unwrap_or(&false) { Some(full[i]).filter(|&c| c != 0) } else { None })
                .collect();
            let ext = algo::greedy_extend_coloring(&g, &partial)
                .expect("restriction of a proper coloring is extendable");
            prop_assert!(algo::is_proper_coloring(&g, &ext));
        }
    }
}
