//! Export helpers: DOT (Graphviz), plain edge lists, and JSON, for inspecting
//! simulation snapshots and for feeding external plotting tools.

use crate::graph::Graph;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT format. Nodes may carry an optional
/// label (e.g. a color or MIS state) supplied by `label`.
pub fn to_dot<F>(g: &Graph, name: &str, mut label: F) -> String
where
    F: FnMut(crate::node::NodeId) -> Option<String>,
{
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in g.active_nodes() {
        match label(v) {
            Some(l) => {
                let _ = writeln!(out, "  {} [label=\"{}: {}\"];", v.index(), v, l);
            }
            None => {
                let _ = writeln!(out, "  {};", v.index());
            }
        }
    }
    for e in g.edges() {
        let _ = writeln!(out, "  {} -- {};", e.u.index(), e.v.index());
    }
    out.push_str("}\n");
    out
}

/// Renders the graph as a whitespace-separated edge list (one edge per line),
/// preceded by a header line `n m`.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", g.num_nodes(), g.num_edges());
    for e in g.edges() {
        let _ = writeln!(out, "{} {}", e.u.index(), e.v.index());
    }
    out
}

/// Parses a graph from the edge-list format produced by [`to_edge_list`].
pub fn from_edge_list(s: &str) -> Result<Graph, String> {
    let mut lines = s.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("missing header line")?;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .ok_or("missing node count")?
        .parse()
        .map_err(|e| format!("bad node count: {e}"))?;
    let mut g = Graph::new(n);
    for line in lines {
        let mut parts = line.split_whitespace();
        let a: usize = parts
            .next()
            .ok_or_else(|| format!("bad edge line: {line}"))?
            .parse()
            .map_err(|e| format!("bad endpoint: {e}"))?;
        let b: usize = parts
            .next()
            .ok_or_else(|| format!("bad edge line: {line}"))?
            .parse()
            .map_err(|e| format!("bad endpoint: {e}"))?;
        if a >= n || b >= n {
            return Err(format!("endpoint out of range in line: {line}"));
        }
        g.insert_edge(crate::node::NodeId::new(a), crate::node::NodeId::new(b));
    }
    Ok(g)
}

/// Serializes the graph to a JSON document (`{"n": .., "edges": [[u, v], ..]}`).
pub fn to_json(g: &Graph) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"n\":{},\"edges\":[", g.num_nodes());
    for (i, e) in g.edges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", e.u.0, e.v.0);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Edge;

    fn sample() -> Graph {
        Graph::from_edges(4, [Edge::of(0, 1), Edge::of(1, 2), Edge::of(2, 3)])
    }

    #[test]
    fn dot_contains_all_edges() {
        let dot = to_dot(&sample(), "g", |_| None);
        assert!(dot.starts_with("graph g {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("2 -- 3;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_labels() {
        let dot = to_dot(&sample(), "g", |v| Some(format!("c{}", v.index())));
        assert!(dot.contains("label=\"v0: c0\""));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let s = to_edge_list(&g);
        let back = from_edge_list(&s).unwrap();
        assert_eq!(back.edge_vec(), g.edge_vec());
        assert_eq!(back.num_nodes(), g.num_nodes());
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(from_edge_list("").is_err());
        assert!(from_edge_list("3 1\n0 9").is_err());
        assert!(from_edge_list("3 1\nx y").is_err());
    }

    #[test]
    fn json_shape() {
        let j = to_json(&sample());
        assert_eq!(j, "{\"n\":4,\"edges\":[[0,1],[1,2],[2,3]]}");
        assert_eq!(to_json(&Graph::new(2)), "{\"n\":2,\"edges\":[]}");
    }
}
